"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.address import RemoteAddressMappingTable
from repro.fabric.crc import crc16, packet_crc
from repro.fabric.phy import LinkConfig
from repro.fabric.topology import build_mesh3d
from repro.mem.cache import Cache, CacheConfig
from repro.mem.memory_map import PhysicalMemoryMap
from repro.mem.swap import SwapConfig, SwapManager
from repro.sim.engine import Simulator
from repro.sim.resources import CreditPool
from repro.sim.rng import DeterministicRNG

MB = 1024 * 1024


# ----------------------------------------------------------------------
# Simulator ordering
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_simulator_executes_events_in_nondecreasing_time_order(delays):
    sim = Simulator()
    execution_times = []
    for delay in delays:
        sim.schedule(delay, lambda: execution_times.append(sim.now))
    sim.run_until_idle()
    assert execution_times == sorted(execution_times)
    assert len(execution_times) == len(delays)


# ----------------------------------------------------------------------
# CRC: deterministic, sensitive to corruption
# ----------------------------------------------------------------------
@given(st.binary(min_size=0, max_size=256))
def test_crc_is_deterministic_and_bounded(data):
    value = crc16(data)
    assert value == crc16(data)
    assert 0 <= value <= 0xFFFF


@given(st.binary(min_size=1, max_size=128), st.integers(min_value=0, max_value=1023))
def test_crc_detects_any_single_bit_flip(data, bit_index):
    flipped = bytearray(data)
    bit_index %= len(data) * 8
    flipped[bit_index // 8] ^= 1 << (bit_index % 8)
    assert crc16(bytes(flipped)) != crc16(data)


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=0, max_value=4096))
def test_packet_crc_stable(src, dst, sequence, payload_bytes):
    assert packet_crc(src, dst, sequence, payload_bytes) == \
        packet_crc(src, dst, sequence, payload_bytes)


# ----------------------------------------------------------------------
# Link latency model
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=1 << 20),
       st.integers(min_value=1, max_value=1 << 20))
def test_link_latency_is_monotonic_in_size(size_a, size_b):
    config = LinkConfig()
    small, large = sorted((size_a, size_b))
    assert config.packet_latency_ns(small) <= config.packet_latency_ns(large)


# ----------------------------------------------------------------------
# Cache invariants
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_bounded_and_rereads_hit(addresses):
    cache = Cache(CacheConfig(size_bytes=4096, line_bytes=32, associativity=4))
    max_lines = 4096 // 32
    for address in addresses:
        cache.access(address)
        assert cache.occupancy <= max_lines
    # Re-reading the most recent address always hits.
    assert cache.access(addresses[-1]).hit


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 16),
                          st.booleans()), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_hits_plus_misses_equals_accesses(operations):
    cache = Cache(CacheConfig(size_bytes=2048, line_bytes=32, associativity=2))
    for address, is_write in operations:
        cache.access(address, is_write=is_write)
    hits = cache.stats.counter("hits").value
    misses = cache.stats.counter("misses").value
    assert hits + misses == len(operations)


# ----------------------------------------------------------------------
# Swap residency invariants
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_swap_resident_set_never_exceeds_frames(pages, frames, readahead):
    swap = SwapManager(SwapConfig(resident_frames=frames, readahead_pages=readahead))
    for page in pages:
        latency = swap.access(page * 4096)
        assert latency >= 0
        assert swap.resident_count <= frames
    # Touching the most recent page again is always resident.
    assert swap.access(pages[-1] * 4096) == 0


# ----------------------------------------------------------------------
# Credit pool conservation
# ----------------------------------------------------------------------
@given(st.lists(st.booleans(), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=16))
def test_credit_pool_conservation(operations, initial):
    sim = Simulator()
    pool = CreditPool(sim, initial=initial)
    taken = 0
    for take in operations:
        if take:
            if pool.try_take():
                taken += 1
        else:
            if taken > 0:
                pool.replenish()
                taken -= 1
    assert 0 <= pool.available <= initial
    assert pool.available == initial - taken


# ----------------------------------------------------------------------
# Memory map: hot-remove / hot-plug conservation
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_donor_capacity_is_conserved_across_sharing(sizes_mb):
    donor = PhysicalMemoryMap(1024 * MB, node_id=0)
    recipient = PhysicalMemoryMap(1024 * MB, node_id=1)
    donated = []
    for size_mb in sizes_mb:
        size = size_mb * MB
        if donor.local_capacity() >= size:
            region = donor.hot_remove(size, recipient_node=1)
            recipient.hot_plug_remote(size, donor_node=0, donor_base=region.start)
            donated.append(region)
        # Invariant: local + donated always equals the original capacity.
        assert donor.local_capacity() + donor.donated_capacity() == 1024 * MB
        assert recipient.remote_capacity() == sum(region.size for region in donated)
    for region in donated:
        donor.hot_add_back(region)
    assert donor.local_capacity() == 1024 * MB


# ----------------------------------------------------------------------
# RAMT translation round trip
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=(64 * MB) - 1))
def test_ramt_translation_preserves_offset(offset):
    ramt = RemoteAddressMappingTable()
    ramt.install(local_base=1024 * MB, size=64 * MB, remote_node=5,
                 remote_base=256 * MB)
    node, remote_address = ramt.translate(1024 * MB + offset)
    assert node == 5
    assert remote_address - 256 * MB == offset


# ----------------------------------------------------------------------
# Topology invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_mesh_hop_count_equals_manhattan_distance(x_dim, y_dim, z_dim):
    topo = build_mesh3d((x_dim, y_dim, z_dim))
    assert topo.is_connected()
    coords = topo.coordinates
    for src in topo.nodes:
        for dst in topo.nodes:
            manhattan = sum(abs(a - b) for a, b in zip(coords[src], coords[dst]))
            assert topo.hop_count(src, dst) == manhattan


# ----------------------------------------------------------------------
# RNG determinism
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**30), st.integers(min_value=1, max_value=1000))
def test_rng_streams_reproducible(seed, population):
    first = DeterministicRNG(seed)
    second = DeterministicRNG(seed)
    assert [first.uniform_int(0, population) for _ in range(10)] == \
        [second.uniform_int(0, population) for _ in range(10)]
