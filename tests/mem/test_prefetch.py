"""Unit tests for the stream prefetcher."""

import pytest

from repro.mem.prefetch import PrefetcherConfig, StreamPrefetcher


def test_isolated_misses_get_no_benefit():
    prefetcher = StreamPrefetcher()
    assert prefetcher.observe_miss(100) == 1
    assert prefetcher.observe_miss(500) == 1
    assert prefetcher.observe_miss(900) == 1


def test_sequential_stream_trains_then_covers():
    prefetcher = StreamPrefetcher(PrefetcherConfig(training_threshold=2, degree=4))
    factors = [prefetcher.observe_miss(line) for line in range(10)]
    # The first few misses train the stream; later ones are covered.
    assert factors[0] == 1
    assert factors[-1] == 4
    assert prefetcher.stats.counter("stream_hits").value > 0


def test_training_threshold_respected():
    prefetcher = StreamPrefetcher(PrefetcherConfig(training_threshold=3, degree=8))
    factors = [prefetcher.observe_miss(line) for line in range(6)]
    # Benefits only appear after at least `training_threshold` sequential hits.
    assert factors[:3] == [1, 1, 1]
    assert factors[-1] == 8


def test_two_line_records_never_reach_coverage():
    """Random 64-byte records (two sequential lines) should not be covered."""
    prefetcher = StreamPrefetcher(PrefetcherConfig(num_streams=4,
                                                   training_threshold=2, degree=4))
    import random
    rng = random.Random(1)
    factors = []
    for _ in range(200):
        base = rng.randrange(0, 1_000_000) * 2
        factors.append(prefetcher.observe_miss(base))
        factors.append(prefetcher.observe_miss(base + 1))
    covered = sum(1 for factor in factors if factor > 1)
    assert covered / len(factors) < 0.05


def test_stream_table_capacity_is_bounded():
    prefetcher = StreamPrefetcher(PrefetcherConfig(num_streams=2))
    for line in [0, 1000, 2000, 3000, 4000]:
        prefetcher.observe_miss(line)
    assert prefetcher.active_streams <= 2


def test_multiple_interleaved_streams_tracked():
    prefetcher = StreamPrefetcher(PrefetcherConfig(num_streams=4,
                                                   training_threshold=2, degree=4))
    factors_a, factors_b = [], []
    for offset in range(12):
        factors_a.append(prefetcher.observe_miss(1000 + offset))
        factors_b.append(prefetcher.observe_miss(9000 + offset))
    assert factors_a[-1] == 4
    assert factors_b[-1] == 4


def test_reset_clears_streams():
    prefetcher = StreamPrefetcher()
    for line in range(5):
        prefetcher.observe_miss(line)
    prefetcher.reset()
    assert prefetcher.active_streams == 0
    assert prefetcher.observe_miss(5) == 1


def test_invalid_config_and_address():
    with pytest.raises(ValueError):
        PrefetcherConfig(degree=0)
    with pytest.raises(ValueError):
        StreamPrefetcher().observe_miss(-1)
