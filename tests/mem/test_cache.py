"""Unit tests for the set-associative cache model."""

import pytest

from repro.mem.cache import Cache, CacheConfig


def small_cache(size=1024, line=32, ways=2):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, associativity=ways,
                             hit_latency_ns=5, miss_penalty_ns=3))


def test_first_access_misses_then_hits():
    cache = small_cache()
    first = cache.access(0x100)
    second = cache.access(0x100)
    assert not first.hit and second.hit
    assert second.latency_ns == 5
    assert first.latency_ns == 8


def test_accesses_within_a_line_hit():
    cache = small_cache(line=32)
    cache.access(0)
    assert cache.access(31).hit
    assert not cache.access(32).hit


def test_lru_eviction_order():
    # 1 KB, 32 B lines, 2-way: 16 sets.  Three lines mapping to set 0.
    cache = small_cache()
    stride = 16 * 32
    cache.access(0 * stride)
    cache.access(1 * stride)
    cache.access(0 * stride)          # make line 0 most recently used
    cache.access(2 * stride)          # evicts line 1 (LRU)
    assert cache.access(0 * stride).hit
    assert not cache.access(1 * stride).hit


def test_dirty_eviction_reports_writeback_address():
    cache = small_cache()
    stride = 16 * 32
    cache.access(0 * stride, is_write=True)
    cache.access(1 * stride)
    result = cache.access(2 * stride)
    assert result.writeback_address == 0 * stride
    assert cache.stats.counter("writebacks").value == 1


def test_clean_eviction_has_no_writeback():
    cache = small_cache()
    stride = 16 * 32
    cache.access(0 * stride)
    cache.access(1 * stride)
    result = cache.access(2 * stride)
    assert result.writeback_address is None


def test_write_hit_marks_line_dirty():
    cache = small_cache()
    stride = 16 * 32
    cache.access(0 * stride)                 # clean fill
    cache.access(0 * stride, is_write=True)  # now dirty
    cache.access(1 * stride)
    result = cache.access(2 * stride)
    assert result.writeback_address == 0


def test_miss_rate_accounting():
    cache = small_cache()
    cache.access(0)
    cache.access(0)
    cache.access(0)
    cache.access(4096)
    assert cache.miss_rate == pytest.approx(0.5)


def test_invalidate_range():
    cache = small_cache()
    for address in range(0, 256, 32):
        cache.access(address)
    invalidated = cache.invalidate_range(0, 128)
    assert invalidated == 4
    assert not cache.access(0).hit
    assert cache.access(128).hit


def test_invalidate_empty_range_is_zero():
    cache = small_cache()
    assert cache.invalidate_range(0, 0) == 0


def test_occupancy_never_exceeds_capacity():
    cache = small_cache(size=1024, line=32, ways=2)
    for address in range(0, 64 * 1024, 32):
        cache.access(address)
    assert cache.occupancy <= 1024 // 32


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        small_cache().access(-4)


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=32, associativity=3)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)


def test_default_config_matches_prototype_line_size():
    assert CacheConfig().line_bytes == 32
