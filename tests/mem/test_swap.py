"""Unit tests for the swap subsystem (residency, LRU, readahead)."""

import pytest

from repro.mem.swap import (
    LocalDiskSwapDevice,
    SwapConfig,
    SwapDevice,
    SwapManager,
)


class InstrumentedDevice(SwapDevice):
    """Fixed-latency device that records request sizes."""

    def __init__(self, read_ns=1000, write_ns=2000):
        self.read_ns = read_ns
        self.write_ns = write_ns
        self.read_requests = []
        self.write_requests = []

    def read_page_latency_ns(self, page_bytes):
        self.read_requests.append(page_bytes)
        return self.read_ns

    def write_page_latency_ns(self, page_bytes):
        self.write_requests.append(page_bytes)
        return self.write_ns


def manager(frames=4, readahead=1, device=None):
    return SwapManager(SwapConfig(page_bytes=4096, resident_frames=frames,
                                  fault_overhead_ns=100, readahead_pages=readahead),
                       device=device or InstrumentedDevice())


def test_first_touch_faults_then_hits():
    swap = manager()
    assert swap.access(0) > 0
    assert swap.access(0) == 0
    assert swap.access(4095) == 0
    assert swap.fault_count == 1


def test_fault_latency_includes_overhead_and_read():
    device = InstrumentedDevice(read_ns=5000)
    swap = manager(device=device)
    assert swap.access(0) == 100 + 5000


def test_lru_eviction_of_clean_page_has_no_writeback():
    device = InstrumentedDevice()
    swap = manager(frames=2, device=device)
    swap.access(0 * 4096)
    swap.access(1 * 4096)
    swap.access(2 * 4096)          # evicts page 0 (clean)
    assert device.write_requests == []
    assert swap.access(0) > 0      # page 0 faults again


def test_dirty_page_eviction_writes_back():
    device = InstrumentedDevice()
    swap = manager(frames=2, device=device)
    swap.access(0, is_write=True)
    swap.access(1 * 4096)
    swap.access(2 * 4096)          # evicts dirty page 0
    assert len(device.write_requests) == 1
    assert swap.stats.counter("writebacks").value == 1


def test_resident_count_never_exceeds_frames():
    swap = manager(frames=3)
    for page in range(20):
        swap.access(page * 4096)
    assert swap.resident_count <= 3


def test_fault_rate_metric():
    swap = manager(frames=8)
    for page in range(4):
        swap.access(page * 4096)
    for page in range(4):
        swap.access(page * 4096)
    assert swap.fault_rate == pytest.approx(0.5)


def test_sequential_faults_trigger_readahead():
    device = InstrumentedDevice()
    swap = manager(frames=32, readahead=8, device=device)
    # Touch pages sequentially: after the stream is detected, whole
    # clusters come in with a single device read.
    faults = 0
    for page in range(32):
        if swap.access(page * 4096) > 0:
            faults += 1
    assert faults < 32
    assert swap.stats.counter("readahead_clusters").value > 0
    assert any(size > 4096 for size in device.read_requests)


def test_random_faults_do_not_trigger_readahead():
    device = InstrumentedDevice()
    swap = manager(frames=8, readahead=8, device=device)
    for page in [50, 3, 97, 21, 64, 8, 33]:
        swap.access(page * 4096)
    assert swap.stats.counter("readahead_clusters").value == 0
    assert all(size == 4096 for size in device.read_requests)


def test_prefault_marks_pages_resident():
    swap = manager(frames=8)
    swap.prefault(4)
    assert swap.access(0) == 0
    assert swap.access(3 * 4096) == 0
    assert swap.fault_count == 0


def test_flush_writes_back_only_dirty_pages():
    device = InstrumentedDevice()
    swap = manager(frames=8, device=device)
    swap.access(0, is_write=True)
    swap.access(4096)
    total = swap.flush()
    assert total == device.write_ns
    # Flushing twice writes nothing new.
    assert swap.flush() == 0


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        manager().access(-1)


def test_config_validation():
    with pytest.raises(ValueError):
        SwapConfig(resident_frames=0)
    with pytest.raises(ValueError):
        SwapConfig(readahead_pages=0)


def test_local_disk_device_latencies():
    device = LocalDiskSwapDevice(read_latency_us=100, write_latency_us=200,
                                 bandwidth_mbps=1000)
    assert device.read_page_latency_ns(4096) > 100_000
    assert device.write_page_latency_ns(4096) > device.read_page_latency_ns(4096) - 150_000
    with pytest.raises(ValueError):
        LocalDiskSwapDevice(read_latency_us=0)


def test_cluster_read_amortises_fixed_cost():
    device = LocalDiskSwapDevice()
    single = device.read_page_latency_ns(4096)
    cluster = device.read_cluster_latency_ns(4096, 8)
    assert cluster < 8 * single
