"""Unit tests for the DRAM model and the hot-plug memory map."""

import pytest

from repro.mem.dram import Dram, DramConfig
from repro.mem.memory_map import (
    MemoryMapError,
    MemoryRegion,
    PhysicalMemoryMap,
    RegionKind,
)

MB = 1024 * 1024
GB = 1024 * MB


# ----------------------------------------------------------------------
# DRAM
# ----------------------------------------------------------------------
def test_dram_access_latency_has_fixed_and_transfer_parts():
    dram = Dram(DramConfig(access_latency_ns=60, bandwidth_gbps=25.6))
    small = dram.access_latency_ns(32)
    large = dram.access_latency_ns(4096)
    assert small >= 60
    assert large > small


def test_dram_dma_includes_setup():
    config = DramConfig(dma_setup_ns=500)
    dram = Dram(config)
    assert dram.dma_latency_ns(4096) >= 500 + config.access_latency_ns


def test_dram_rejects_nonpositive_sizes():
    dram = Dram()
    with pytest.raises(ValueError):
        dram.access_latency_ns(0)
    with pytest.raises(ValueError):
        dram.dma_latency_ns(-1)


def test_dram_config_validation():
    with pytest.raises(ValueError):
        DramConfig(capacity_bytes=0)
    with pytest.raises(ValueError):
        DramConfig(bandwidth_gbps=-1)


def test_dram_default_capacity_matches_table1():
    assert DramConfig().capacity_bytes == 1 * GB


# ----------------------------------------------------------------------
# MemoryRegion
# ----------------------------------------------------------------------
def test_region_contains_and_overlaps():
    region = MemoryRegion(start=100, size=50, kind=RegionKind.LOCAL)
    assert region.contains(100) and region.contains(149)
    assert not region.contains(150)
    other = MemoryRegion(start=140, size=20, kind=RegionKind.LOCAL)
    disjoint = MemoryRegion(start=150, size=20, kind=RegionKind.LOCAL)
    assert region.overlaps(other)
    assert not region.overlaps(disjoint)


def test_region_validation():
    with pytest.raises(ValueError):
        MemoryRegion(start=0, size=0, kind=RegionKind.LOCAL)
    with pytest.raises(ValueError):
        MemoryRegion(start=-1, size=10, kind=RegionKind.LOCAL)


# ----------------------------------------------------------------------
# PhysicalMemoryMap: the Figure 10 flow
# ----------------------------------------------------------------------
def test_initial_map_is_all_local():
    memory_map = PhysicalMemoryMap(4 * GB, node_id=0)
    assert memory_map.local_capacity() == 4 * GB
    assert memory_map.visible_capacity() == 4 * GB
    assert memory_map.lookup(0).kind == RegionKind.LOCAL


def test_figure10_hot_remove_and_hot_plug_flow():
    donor = PhysicalMemoryMap(4 * GB, node_id=0)       # Node A
    recipient = PhysicalMemoryMap(4 * GB, node_id=1)   # Node B

    donated = donor.hot_remove(1 * GB, recipient_node=1)
    assert donated.start == 3 * GB                      # top of Node A memory
    assert donor.local_capacity() == 3 * GB
    assert donor.donated_capacity() == 1 * GB

    borrowed = recipient.hot_plug_remote(1 * GB, donor_node=0,
                                         donor_base=donated.start)
    assert borrowed.start == 4 * GB                     # 0x1_0000_0000
    assert recipient.visible_capacity() == 5 * GB
    assert recipient.is_remote(4 * GB + 123)

    donor_node, donor_address = recipient.translate_to_donor(4 * GB + 123)
    assert donor_node == 0
    assert donor_address == donated.start + 123


def test_hot_removed_region_is_invisible_to_donor():
    donor = PhysicalMemoryMap(4 * GB, node_id=0)
    donor.hot_remove(1 * GB, recipient_node=1)
    with pytest.raises(MemoryMapError):
        donor.lookup(3 * GB + 100)


def test_hot_remove_more_than_available_fails():
    memory_map = PhysicalMemoryMap(1 * GB)
    with pytest.raises(MemoryMapError):
        memory_map.hot_remove(2 * GB, recipient_node=1)


def test_hot_add_back_restores_local_capacity():
    donor = PhysicalMemoryMap(2 * GB, node_id=0)
    region = donor.hot_remove(1 * GB, recipient_node=1)
    donor.hot_add_back(region)
    assert donor.local_capacity() == 2 * GB
    assert donor.donated_capacity() == 0
    # Now the address is visible again.
    assert donor.lookup(2 * GB - 1).kind == RegionKind.LOCAL


def test_hot_unplug_removes_borrowed_region():
    recipient = PhysicalMemoryMap(1 * GB, node_id=1)
    region = recipient.hot_plug_remote(512 * MB, donor_node=0, donor_base=0)
    recipient.hot_unplug(region)
    assert recipient.remote_capacity() == 0
    assert not recipient.is_remote(1 * GB + 10)


def test_translate_local_address_fails():
    memory_map = PhysicalMemoryMap(1 * GB)
    with pytest.raises(MemoryMapError):
        memory_map.translate_to_donor(100)


def test_multiple_hot_plugs_stack_upwards():
    recipient = PhysicalMemoryMap(1 * GB, node_id=1)
    first = recipient.hot_plug_remote(256 * MB, donor_node=2, donor_base=0)
    second = recipient.hot_plug_remote(256 * MB, donor_node=3, donor_base=0)
    assert second.start == first.end
    assert recipient.remote_capacity() == 512 * MB
    assert recipient.translate_to_donor(second.start + 5)[0] == 3


def test_invalid_hot_operations_raise():
    memory_map = PhysicalMemoryMap(1 * GB)
    with pytest.raises(MemoryMapError):
        memory_map.hot_remove(0, recipient_node=1)
    with pytest.raises(MemoryMapError):
        memory_map.hot_plug_remote(-5, donor_node=1, donor_base=0)
    foreign = MemoryRegion(start=0, size=10, kind=RegionKind.REMOTE_MAPPED)
    with pytest.raises(MemoryMapError):
        memory_map.hot_unplug(foreign)
