"""Unit tests for accelerator devices and the mailbox protocol."""

import pytest

from repro.accel.device import (
    Accelerator,
    AcceleratorConfig,
    CryptoAccelerator,
    FftAccelerator,
)
from repro.accel.mailbox import Mailbox, MailboxError, MailboxState, MailboxTask


# ----------------------------------------------------------------------
# Devices
# ----------------------------------------------------------------------
def test_accelerator_task_time_components():
    accel = Accelerator(AcceleratorConfig(launch_overhead_ns=1000,
                                          io_bandwidth_gbps=8.0,
                                          elements_per_us=1000.0))
    total = accel.task_time_ns(input_bytes=1024, output_bytes=1024, elements=2000)
    assert total >= 1000 + accel.io_time_ns(1024) * 2 + accel.compute_time_ns(2000)
    assert accel.stats.counter("tasks").value == 1


def test_fft_compute_scales_superlinearly():
    fft = FftAccelerator()
    small = fft.compute_time_ns(1024)
    large = fft.compute_time_ns(2048)
    # n log n: doubling n more than doubles the work.
    assert large > 2 * small
    assert fft.compute_time_ns(1) == 0


def test_crypto_compute_scales_linearly():
    crypto = CryptoAccelerator()
    assert crypto.compute_time_ns(2000) == pytest.approx(
        2 * crypto.compute_time_ns(1000), rel=0.01)


def test_io_time_scales_with_bytes():
    accel = Accelerator()
    assert accel.io_time_ns(2048) == pytest.approx(2 * accel.io_time_ns(1024), rel=0.01)
    assert accel.io_time_ns(0) == 0


def test_invalid_inputs_rejected():
    accel = Accelerator()
    with pytest.raises(ValueError):
        accel.io_time_ns(-1)
    with pytest.raises(ValueError):
        accel.compute_time_ns(-1)
    with pytest.raises(ValueError):
        AcceleratorConfig(elements_per_us=0)


# ----------------------------------------------------------------------
# Mailbox
# ----------------------------------------------------------------------
def make_task(input_bytes=1024, output_bytes=1024):
    return MailboxTask(kernel="fft", input_bytes=input_bytes,
                       output_bytes=output_bytes, elements=64)


def test_mailbox_full_lifecycle():
    mailbox = Mailbox(owner_node=1)
    task = make_task()
    assert mailbox.is_idle
    mailbox.post(task, now_ns=100)
    assert mailbox.state is MailboxState.REQUEST_POSTED
    launched = mailbox.launch()
    assert launched is task
    assert mailbox.state is MailboxState.RUNNING
    mailbox.complete(now_ns=500)
    assert mailbox.state is MailboxState.COMPLETE
    collected = mailbox.collect()
    assert collected.completed_at_ns == 500
    assert mailbox.is_idle
    assert mailbox.tasks_completed == 1


def test_mailbox_rejects_post_while_running():
    mailbox = Mailbox(owner_node=0)
    mailbox.post(make_task())
    mailbox.launch()
    with pytest.raises(MailboxError):
        mailbox.post(make_task())


def test_mailbox_post_after_complete_allowed():
    mailbox = Mailbox(owner_node=0)
    mailbox.post(make_task())
    mailbox.launch()
    mailbox.complete()
    # A new request may overwrite the completed slot before collection.
    mailbox.post(make_task())
    assert mailbox.state is MailboxState.REQUEST_POSTED


def test_mailbox_rejects_oversized_input():
    mailbox = Mailbox(owner_node=0, data_buffer_bytes=512)
    with pytest.raises(MailboxError):
        mailbox.post(make_task(input_bytes=1024))


def test_mailbox_protocol_violations():
    mailbox = Mailbox(owner_node=0)
    with pytest.raises(MailboxError):
        mailbox.launch()
    with pytest.raises(MailboxError):
        mailbox.complete()
    with pytest.raises(MailboxError):
        mailbox.collect()


def test_task_ids_unique_and_sizes_validated():
    first, second = make_task(), make_task()
    assert first.task_id != second.task_id
    with pytest.raises(ValueError):
        MailboxTask(kernel="fft", input_bytes=-1, output_bytes=0, elements=0)


def test_mailbox_buffer_size_validation():
    with pytest.raises(ValueError):
        Mailbox(owner_node=0, request_buffer_bytes=0)
