"""Unit tests for the Table 1 configuration (the paper's platform table)."""

import pytest

from repro.core.config import (
    ChannelPlacement,
    CrmaConfig,
    FabricConfig,
    QPairConfig,
    RdmaConfig,
    VeniceConfig,
)
from repro.fabric.packet import HEADER_BYTES


def test_table1_defaults_match_paper():
    """Table 1: 8 nodes, 3D mesh, 667 MHz Cortex-A9-class cores, 1 GB
    memory, 5 Gbps x 6 lanes, ~1.4 us point-to-point latency."""
    config = VeniceConfig.table1()
    assert config.num_nodes == 8
    assert config.topology == "mesh3d"
    assert config.mesh_dims == (2, 2, 2)
    assert config.node.cpu.clock_mhz == pytest.approx(667.0)
    assert config.node.dram.capacity_bytes == 1024 ** 3
    assert config.fabric.link.bandwidth_gbps == pytest.approx(5.0)
    assert config.fabric.lanes_per_node == 6
    p2p = config.fabric.link.packet_latency_ns(64 + HEADER_BYTES) \
        + config.fabric.switch.forwarding_latency_ns
    assert 1200 <= p2p <= 1600


def test_point_to_point_latency_property():
    fabric = FabricConfig()
    assert fabric.point_to_point_latency_ns > 1000


def test_pair_configuration():
    config = VeniceConfig.pair()
    assert config.num_nodes == 2
    assert config.topology == "direct_pair"


def test_mesh_dims_must_match_node_count():
    with pytest.raises(ValueError):
        VeniceConfig(num_nodes=6, mesh_dims=(2, 2, 2))


def test_direct_pair_requires_two_nodes():
    with pytest.raises(ValueError):
        VeniceConfig(num_nodes=3, topology="direct_pair")


def test_unknown_topology_rejected():
    with pytest.raises(ValueError):
        VeniceConfig(topology="ring")


def test_channel_placements():
    assert CrmaConfig().placement is ChannelPlacement.ON_CHIP
    assert RdmaConfig().placement is ChannelPlacement.ON_CHIP
    assert QPairConfig().placement is ChannelPlacement.ON_CHIP


def test_qpair_supports_hundreds_of_queue_pairs():
    """Section 4.2.1: a typical QPair implementation supports hundreds of
    queue pairs -- which is what drives its SRAM cost over CRMA."""
    assert QPairConfig().num_queue_pairs >= 100


def test_fabric_validation():
    with pytest.raises(ValueError):
        FabricConfig(lanes_per_node=0)
    with pytest.raises(ValueError):
        VeniceConfig(num_nodes=0)
