"""Unit tests for the FabricPath and the three transport channels."""

import pytest

from repro.core.channels.crma import CrmaChannel, CrmaRemoteBackend
from repro.core.channels.path import FabricPath
from repro.core.channels.qpair import QPairChannel, QPairRemoteMemoryBackend
from repro.core.channels.rdma import RdmaChannel, RdmaSwapDevice
from repro.core.config import ChannelPlacement, QPairConfig, RdmaConfig
from repro.fabric.router import RouterConfig

MB = 1024 * 1024
LINE = 32
PAGE = 4096


# ----------------------------------------------------------------------
# FabricPath
# ----------------------------------------------------------------------
def test_path_one_way_latency_close_to_table1():
    path = FabricPath()
    assert 1200 <= path.one_way_latency_ns(64) <= 1700


def test_off_chip_placement_adds_adapter_crossings():
    on_chip = FabricPath(placement=ChannelPlacement.ON_CHIP)
    off_chip = FabricPath(placement=ChannelPlacement.OFF_CHIP)
    difference = off_chip.one_way_latency_ns(64) - on_chip.one_way_latency_ns(64)
    assert difference == 2 * off_chip.fabric.off_chip_adapter_ns


def test_external_router_adds_latency():
    direct = FabricPath()
    routed = direct.with_router(RouterConfig())
    assert routed.one_way_latency_ns(64) > direct.one_way_latency_ns(64)


def test_multi_hop_paths_scale_latency():
    one_hop = FabricPath(hops=1)
    three_hops = FabricPath(hops=3)
    assert three_hops.one_way_latency_ns(64) > 2 * one_hop.one_way_latency_ns(64)
    with pytest.raises(ValueError):
        FabricPath(hops=0)


def test_round_trip_is_sum_of_one_ways():
    path = FabricPath()
    assert path.round_trip_latency_ns(8, 32) == \
        path.one_way_latency_ns(8) + path.one_way_latency_ns(32)


def test_streaming_bandwidth_bounded_by_link_rate():
    path = FabricPath()
    bandwidth = path.streaming_bandwidth_gbps(4096)
    assert 0 < bandwidth <= path.link_bandwidth_gbps


def test_with_variants_do_not_mutate_original():
    path = FabricPath()
    off_chip = path.with_placement(ChannelPlacement.OFF_CHIP)
    more_hops = path.with_hops(2)
    assert path.placement is ChannelPlacement.ON_CHIP
    assert path.hops == 1
    assert off_chip.placement is ChannelPlacement.OFF_CHIP
    assert more_hops.hops == 2


# ----------------------------------------------------------------------
# CRMA channel
# ----------------------------------------------------------------------
def test_crma_read_is_a_round_trip_plus_dram():
    crma = CrmaChannel()
    read = crma.read_latency_ns(LINE)
    assert read > 2 * crma.path.one_way_latency_ns(8)
    assert 2000 <= read <= 5000


def test_crma_posted_write_is_much_cheaper_than_read():
    crma = CrmaChannel()
    assert crma.write_latency_ns(LINE) < crma.read_latency_ns(LINE) / 5


def test_crma_mapping_and_translation():
    crma = CrmaChannel()
    entry = crma.map_region(local_base=1024 * MB, size=256 * MB,
                            remote_node=1, remote_base=768 * MB)
    node, address = crma.translate(1024 * MB + 12345)
    assert node == 1
    assert address == 768 * MB + 12345
    # Second translation of the same page is a TLB hit.
    crma.translate(1024 * MB + 12345)
    assert crma.tlb.hits >= 1
    crma.unmap_region(entry)
    from repro.core.address import AddressMappingError
    with pytest.raises(AddressMappingError):
        crma.translate(1024 * MB + 12345)


def test_crma_backend_adapts_channel():
    backend = CrmaRemoteBackend(CrmaChannel())
    assert backend.remote_read_latency_ns(LINE) > 0
    assert backend.remote_write_latency_ns(LINE) > 0


def test_crma_invalid_sizes():
    crma = CrmaChannel()
    with pytest.raises(ValueError):
        crma.read_latency_ns(0)
    with pytest.raises(ValueError):
        crma.write_latency_ns(-1)


# ----------------------------------------------------------------------
# RDMA channel
# ----------------------------------------------------------------------
def test_rdma_chunk_count():
    rdma = RdmaChannel(RdmaConfig(max_chunk_bytes=4096))
    assert rdma.chunk_count(4096) == 1
    assert rdma.chunk_count(4097) == 2
    assert rdma.chunk_count(1) == 1
    with pytest.raises(ValueError):
        rdma.chunk_count(0)


def test_rdma_large_transfers_amortise_setup():
    rdma = RdmaChannel()
    one_page = rdma.transfer_latency_ns(PAGE)
    many_pages = rdma.transfer_latency_ns(16 * PAGE)
    assert many_pages < 16 * one_page


def test_rdma_page_transfer_beats_per_line_crma_for_bulk():
    """Bulk data: one page over RDMA is cheaper than 128 CRMA line reads."""
    rdma = RdmaChannel()
    crma = CrmaChannel()
    lines_per_page = PAGE // LINE
    assert rdma.transfer_latency_ns(PAGE) < lines_per_page * crma.read_latency_ns(LINE)


def test_rdma_double_buffering_helps():
    pipelined = RdmaChannel(RdmaConfig(double_buffering=True))
    serialised = RdmaChannel(RdmaConfig(double_buffering=False))
    assert pipelined.transfer_latency_ns(64 * PAGE) < \
        serialised.transfer_latency_ns(64 * PAGE)


def test_rdma_lane_striping_raises_bandwidth():
    single = RdmaChannel(RdmaConfig(stripe_lanes=1))
    striped = RdmaChannel(RdmaConfig(stripe_lanes=4))
    assert striped.transfer_latency_ns(256 * 1024) < single.transfer_latency_ns(256 * 1024)
    assert striped.streaming_bandwidth_gbps() > single.streaming_bandwidth_gbps()


def test_rdma_swap_device_round_trip_and_overlap():
    device = RdmaSwapDevice(RdmaChannel())
    assert device.read_page_latency_ns(PAGE) > 0
    assert device.write_page_latency_ns(PAGE) > 0
    assert device.supports_write_overlap() is True
    no_overlap = RdmaSwapDevice(RdmaChannel(RdmaConfig(double_buffering=False)))
    assert no_overlap.supports_write_overlap() is False
    with pytest.raises(ValueError):
        RdmaSwapDevice(RdmaChannel(), driver_overhead_ns=-1)


# ----------------------------------------------------------------------
# QPair channel
# ----------------------------------------------------------------------
def test_qpair_message_latency_includes_software_ends():
    qpair = QPairChannel()
    latency = qpair.message_latency_ns(64)
    assert latency > qpair.path.one_way_latency_ns(64)
    assert latency >= qpair.send_overhead_ns() + qpair.receive_overhead_ns()


def test_qpair_round_trip_with_handler():
    qpair = QPairChannel()
    base = qpair.round_trip_latency_ns(16, 64)
    with_handler = qpair.round_trip_latency_ns(16, 64, remote_handler_ns=5000)
    assert with_handler == base + 5000


def test_qpair_streaming_bandwidth_higher_for_bigger_messages():
    qpair = QPairChannel()
    assert qpair.streaming_bandwidth_gbps(4096) > qpair.streaming_bandwidth_gbps(64)


def test_qpair_credit_limited_bandwidth_below_streaming():
    qpair = QPairChannel(QPairConfig(queue_depth=4))
    credit_limited = qpair.credit_limited_bandwidth_gbps(256, credit_return_latency_ns=5000)
    assert credit_limited <= qpair.streaming_bandwidth_gbps(256)
    with pytest.raises(ValueError):
        qpair.credit_limited_bandwidth_gbps(256, 1000, credits=0)


def test_qpair_memory_backend_far_slower_than_crma():
    """The Figure 5 gap: explicit messaging pays software on both ends."""
    qpair_backend = QPairRemoteMemoryBackend(QPairChannel())
    crma = CrmaChannel()
    assert qpair_backend.remote_read_latency_ns(LINE) > 3 * crma.read_latency_ns(LINE)
    assert qpair_backend.remote_write_latency_ns(LINE) < \
        qpair_backend.remote_read_latency_ns(LINE)


def test_qpair_backend_validation():
    with pytest.raises(ValueError):
        QPairRemoteMemoryBackend(QPairChannel(), remote_handler_ns=-1)
    with pytest.raises(ValueError):
        QPairChannel().message_latency_ns(0)
