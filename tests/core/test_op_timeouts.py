"""Per-op deadlines, typed timeouts and retry on the event transport.

The zero-hang contract: every submitted op either delivers or fails
with a typed error.  A deadline arms a simulator timer, so even an
otherwise-idle fabric resolves the timeout (``run_until_idle`` cannot
hang on a lost packet); firing cancels exactly the op's own expected
handlers so the lifecycle books still balance, and
``submit_with_retry`` resubmits failed attempts with exponential
backoff.
"""

import os

import pytest

from repro.core.channels.backend import (
    OpTimeoutError,
    RetryPolicy,
    TransportError,
)
from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem

LINE = 64


def _pair_system(sanitize=None):
    return VeniceSystem.build(
        VeniceConfig.pair(), transport_backend="event",
        scheduler=os.environ.get("SIM_SCHEDULER", "auto"),
        sanitize=sanitize)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_generous_deadline_does_not_fire():
    system = _pair_system()
    transport = system.event_transport()
    op = system.crma_channel(0, 1).submit_read(LINE, deadline_ns=10_000_000)
    transport.drive_all([op])
    assert op.done and not op.failed
    assert transport.ops_timed_out == 0
    assert op.latency_ns > 0


def test_missed_deadline_fails_typed():
    system = _pair_system()
    transport = system.event_transport()
    # A one-cacheline CRMA read takes ~2 us; 100 ns cannot be met.
    op = system.crma_channel(0, 1).submit_read(LINE, deadline_ns=100)
    transport.drive_all([op])
    assert op.failed and not op.done
    assert isinstance(op.error, OpTimeoutError)
    assert transport.ops_timed_out == 1
    with pytest.raises(OpTimeoutError):
        op.latency_ns


def test_timeout_resolves_on_idle_fabric():
    # The deadline timer keeps the queue non-empty: nothing else is
    # scheduled, yet run_until_idle terminates with the op failed
    # instead of hanging forever on a packet that will never arrive.
    system = _pair_system()
    transport = system.event_transport()
    transport.fabric.links[(0, 1)].set_admin_down()
    op = system.crma_channel(0, 1).submit_read(LINE, deadline_ns=50_000)
    transport.sim.run_until_idle()
    assert op.failed
    assert isinstance(op.error, OpTimeoutError)


def test_timeout_cancels_expected_handlers_and_books_balance():
    # Sanitized lifecycle audit across a timeout: the fired deadline
    # cancels the op's handlers (counted in packets_timed_out); the
    # late delivery lands in `unmatched` and the ledger still balances
    # at idle.
    system = _pair_system(sanitize=True)
    transport = system.event_transport()
    op = system.crma_channel(0, 1).submit_read(LINE, deadline_ns=100)
    transport.drive_all([op])
    transport.sim.run_until_idle()
    assert transport.packets_timed_out >= 1
    assert transport.unmatched >= 1
    transport.check_packet_lifecycle()


def test_drive_until_raises_on_timed_out_op():
    system = _pair_system()
    transport = system.event_transport()
    op = system.crma_channel(0, 1).submit_read(LINE, deadline_ns=100)
    with pytest.raises(OpTimeoutError):
        transport.drive_until(op)


def test_deadline_must_be_positive():
    system = _pair_system()
    with pytest.raises(ValueError):
        system.crma_channel(0, 1).submit_read(LINE, deadline_ns=0)


def test_deadlines_apply_to_every_channel_kind():
    system = _pair_system()
    transport = system.event_transport()
    ops = [
        system.crma_channel(0, 1).submit_read(LINE, deadline_ns=100),
        system.qpair_channel(0, 1).submit_message(LINE, deadline_ns=100),
        system.qpair_channel(0, 1).submit_round_trip(16, LINE,
                                                     deadline_ns=100),
        system.rdma_channel(0, 1).submit_transfer(4096, deadline_ns=100),
    ]
    transport.drive_all(ops)
    assert all(op.failed for op in ops)
    assert all(isinstance(op.error, OpTimeoutError) for op in ops)
    assert transport.ops_timed_out == len(ops)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_retry_policy_backoff_is_exponential():
    retry = RetryPolicy(max_attempts=4, backoff_ns=1_000, multiplier=3)
    assert [retry.backoff_for(attempt) for attempt in (1, 2, 3)] == \
        [1_000, 3_000, 9_000]


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_ns=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0)


def test_retry_succeeds_after_the_link_heals():
    # First attempt launches into a downed link and times out; the link
    # heals during the backoff window, so a resubmitted attempt lands.
    # The outer op is charged from the first submit -- surviving a flap
    # costs the flap.
    system = _pair_system(sanitize=True)
    transport = system.event_transport()
    sim = transport.sim
    link = transport.fabric.links[(0, 1)]
    link.set_admin_down()
    sim.schedule_at(120_000, link.set_admin_up)
    retry = RetryPolicy(max_attempts=5, backoff_ns=60_000, multiplier=2)
    op = transport.submit_with_retry(
        lambda: system.crma_channel(0, 1).submit_read(LINE,
                                                      deadline_ns=40_000),
        retry, label="flap-survivor")
    transport.drive_all([op])
    assert op.done
    assert op.attempts >= 1
    assert op.latency_ns > 120_000
    sim.run_until_idle()
    transport.check_packet_lifecycle()


def test_retry_gives_up_typed_after_max_attempts():
    system = _pair_system()
    transport = system.event_transport()
    transport.fabric.links[(0, 1)].set_admin_down()
    retry = RetryPolicy(max_attempts=3, backoff_ns=10_000)
    op = transport.submit_with_retry(
        lambda: system.crma_channel(0, 1).submit_read(LINE,
                                                      deadline_ns=20_000),
        retry, label="doomed")
    transport.drive_all([op])
    assert op.failed
    assert isinstance(op.error, OpTimeoutError)
    assert op.attempts == retry.max_attempts
    # Inner deadline firings were counted once each; the outer give-up
    # does not double-count.
    assert transport.ops_timed_out == retry.max_attempts


def test_ops_without_deadline_are_unchanged():
    system = _pair_system()
    transport = system.event_transport()
    op = system.crma_channel(0, 1).submit_read(LINE)
    transport.drive_all([op])
    assert op.done
    assert op.deadline_ns is None
    assert transport.ops_timed_out == 0
