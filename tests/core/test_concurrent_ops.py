"""Overlap semantics of the submit/drive transport split.

Submitted ops from concurrent requesters must genuinely share sim time
(completion span materially below the sum of serialized spans on
disjoint routes), contend for real on shared routes, stay byte-identical
across simulator scheduler backends, and never leak expected-packet
handlers across cross-traffic driver lifecycles.
"""

import json

import pytest

from repro.core.channels.backend import PendingOp, TransportError
from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem
from repro.experiments.common import ExperimentPlatform

LINE = 64


def _event_system(num_nodes=8, topology="fat_tree", scheduler="auto"):
    return VeniceSystem.build(
        VeniceConfig(num_nodes=num_nodes, topology=topology),
        transport_backend="event", scheduler=scheduler)


# ----------------------------------------------------------------------
# Overlap on disjoint routes
# ----------------------------------------------------------------------
def test_two_round_trips_on_disjoint_routes_overlap():
    # Same-leaf pairs of different fat-tree leaves: no shared links.
    serial = _event_system()
    first = serial.qpair_channel(0, 1).round_trip_latency_ns(16, LINE)
    second = serial.qpair_channel(4, 5).round_trip_latency_ns(16, LINE)

    concurrent = _event_system()
    transport = concurrent.event_transport()
    op_a = concurrent.qpair_channel(0, 1).submit_round_trip(16, LINE)
    op_b = concurrent.qpair_channel(4, 5).submit_round_trip(16, LINE)
    transport.drive_all([op_a, op_b])

    # Disjoint routes: neither op sees the other, so per-op latencies
    # match the serialized measurements exactly...
    assert op_a.latency_ns == first
    assert op_b.latency_ns == second
    # ...but they shared sim time: the completion span is materially
    # below the sum of the serialized spans.
    assert transport.sim.now < 0.6 * (first + second)


def test_four_concurrent_borrowers_disjoint_routes_materially_faster():
    # The acceptance bar: N >= 4 concurrent requesters on disjoint
    # routes (one same-leaf pair per 16-node fat-tree leaf) complete in
    # materially less sim time than the same ops serialized.
    pairs = [(0, 1), (4, 5), (8, 9), (12, 13)]

    serial = _event_system(16)
    for src, dst in pairs:
        serial.crma_channel(src, dst).read_latency_ns(LINE)
    serialized_span = serial.event_transport().sim.now

    concurrent = _event_system(16)
    transport = concurrent.event_transport()
    ops = [concurrent.crma_channel(src, dst).submit_read(LINE)
           for src, dst in pairs]
    transport.drive_all(ops)

    assert all(op.done for op in ops)
    assert transport.sim.now < 0.5 * serialized_span


# ----------------------------------------------------------------------
# Contention on shared routes
# ----------------------------------------------------------------------
def test_concurrent_ops_on_shared_route_queue_behind_each_other():
    # Star: every read response towards a requester leaves donor 0
    # through the same donor->hub link, so concurrent reads must see
    # queueing the serialized driver cannot produce.
    serial = _event_system(topology="star")
    baseline = serial.crma_channel(1, 0).read_latency_ns(LINE)

    concurrent = _event_system(topology="star")
    transport = concurrent.event_transport()
    ops = [concurrent.crma_channel(requester, 0).submit_read(LINE)
           for requester in (1, 2, 3)]
    transport.drive_all(ops)

    latencies = [op.latency_ns for op in ops]
    assert min(latencies) >= baseline
    assert max(latencies) > baseline


# ----------------------------------------------------------------------
# Determinism across scheduler backends
# ----------------------------------------------------------------------
def _concurrent_batch_fingerprint(scheduler):
    system = _event_system(num_nodes=8, topology="star",
                           scheduler=scheduler)
    transport = system.event_transport()
    ops = []
    for index in range(6):
        src = system.node_ids[index]
        dst = system.node_ids[(index + 1) % len(system.node_ids)]
        ops.append(system.crma_channel(src, dst).submit_read(LINE))
        ops.append(system.qpair_channel(src, dst).submit_round_trip(16, LINE))
    transport.drive_all(ops)
    fabric = transport.fabric
    return json.dumps({
        "results": [op.result_ns for op in ops],
        "now": transport.sim.now,
        "events": transport.sim.events_processed,
        "links": {link.name: link.stats.snapshot()
                  for link in fabric.links.values()},
        "switches": {switch.name: switch.stats.snapshot()
                     for switch in fabric.switches.values()},
    }, sort_keys=True)


def test_concurrent_dispatch_identical_across_schedulers():
    baseline = _concurrent_batch_fingerprint("heap")
    assert _concurrent_batch_fingerprint("calendar") == baseline


# ----------------------------------------------------------------------
# PendingOp handle semantics
# ----------------------------------------------------------------------
def test_pending_op_latency_requires_completion():
    platform = ExperimentPlatform(backend="event")
    op = platform.crma_channel().submit_read(LINE)
    assert isinstance(op, PendingOp) and not op.done
    with pytest.raises(TransportError):
        _ = op.latency_ns
    platform.event_transport().drive_until(op)
    assert op.done
    assert op.latency_ns == op.result_ns + op.overhead_ns


def test_submitted_latency_matches_blocking_api():
    blocking = ExperimentPlatform(backend="event")
    values = (blocking.crma_channel().read_latency_ns(LINE),
              blocking.qpair_channel().round_trip_latency_ns(16, LINE),
              blocking.qpair_channel().message_latency_ns(LINE),
              blocking.rdma_channel().transfer_latency_ns(4096))

    submitted = ExperimentPlatform(backend="event")
    transport = submitted.event_transport()
    submits = (lambda: submitted.crma_channel().submit_read(LINE),
               lambda: submitted.qpair_channel().submit_round_trip(16, LINE),
               lambda: submitted.qpair_channel().submit_message(LINE),
               lambda: submitted.rdma_channel().submit_transfer(4096))
    # Submitted then driven one at a time (nothing else in flight), a
    # submitted op measures exactly what the blocking op does.
    measured = []
    for submit in submits:
        op = submit()
        transport.drive_until(op)
        measured.append(op.latency_ns)
    assert tuple(measured) == values


def test_channel_submit_requires_event_backend():
    platform = ExperimentPlatform()  # closed-form
    with pytest.raises(TransportError):
        platform.crma_channel().submit_read(LINE)
    with pytest.raises(TransportError):
        platform.qpair_channel().submit_round_trip(16, LINE)
    with pytest.raises(TransportError):
        platform.qpair_channel().submit_message(LINE)
    with pytest.raises(TransportError):
        platform.rdma_channel().submit_transfer(4096)


def test_drive_all_detects_lost_packets():
    system = _event_system(topology="star")
    transport = system.event_transport()
    op = system.crma_channel(1, 0).submit_read(LINE)
    for switch in transport.fabric.switches.values():
        switch.attach_local_sink(lambda packet: None)
    with pytest.raises(TransportError):
        transport.drive_all([op])


# ----------------------------------------------------------------------
# Expected-packet handler hygiene
# ----------------------------------------------------------------------
def test_cross_traffic_stop_prunes_expected_handlers():
    platform = ExperimentPlatform(backend="event")
    driver = platform.start_cross_traffic(window=4)
    transport = platform.event_transport()
    platform.crma_channel().read_latency_ns(LINE)
    # Noise packets are still circulating with registered handlers...
    assert transport.expected_packets > 0
    unmatched_before = transport.unmatched
    driver.stop()
    # ...which stop() prunes in full: the abandoned packets drain as
    # unmatched deliveries and the map is empty after a quiet drain.
    assert transport.expected_packets == 0
    transport.drain_quiet()
    assert transport.expected_packets == 0
    assert transport.unmatched >= unmatched_before


def test_driver_cycling_does_not_grow_the_handler_map():
    # The long-sweep pattern: many drivers over one transport.  Without
    # stop() pruning, every cycle would leave its in-flight window of
    # handlers behind.
    platform = ExperimentPlatform(backend="event")
    transport = platform.event_transport()
    for cycle in range(5):
        driver = platform.start_cross_traffic(window=3)
        platform.crma_channel().read_latency_ns(LINE)
        driver.stop()
        assert transport.expected_packets == 0, f"leak after cycle {cycle}"
    transport.drain_quiet()


def test_drain_quiet_rejects_background_and_detects_leaks():
    from repro.fabric.packet import Packet, PacketKind

    platform = ExperimentPlatform(backend="event")
    transport = platform.event_transport()
    driver = platform.start_cross_traffic(window=1)
    with pytest.raises(TransportError):
        transport.drain_quiet()
    driver.stop()
    # A handler registered for a packet that is never injected is
    # exactly the stale-handler leak the drain must flag.
    stale = Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                   payload_bytes=LINE)
    transport.expect(stale, lambda packet: None)
    with pytest.raises(TransportError):
        transport.drain_quiet()
    assert transport.cancel_expected(stale.packet_id)
    transport.drain_quiet()
