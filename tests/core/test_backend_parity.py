"""Backend parity: event-measured channel ops versus the closed forms.

On an uncontended direct pair, every per-operation latency the event
backend measures must agree with the closed-form answer within
``TOLERANCE`` -- the closed forms intentionally omit the datalink
processing and credit machinery, so the event fabric reads slightly
*higher*, never lower, and never by more than the stated bound.

The event path must also be deterministic: identical op sequences give
identical measurements run-to-run and across simulator scheduler
backends (heap versus calendar queue).
"""

import pytest

from repro.core.channels.backend import (
    ClosedFormBackend,
    CrossTrafficDriver,
    EventBackend,
    TransportError,
)
from repro.experiments.common import ExperimentPlatform

#: Stated parity bound: uncontended event measurements may exceed the
#: closed forms by at most this relative margin (the datalink/receive
#: processing and switch-ejection costs the formulas omit).
TOLERANCE = 0.15

LINE = 64
PAGE = 4096


def _event_platform(scheduler="auto"):
    return ExperimentPlatform(backend="event", scheduler=scheduler)


def _op_table(platform):
    """(name, measured ns) for one op of every channel primitive."""
    crma = platform.crma_channel()
    rdma = platform.rdma_channel()
    qpair = platform.qpair_channel()
    return [
        ("crma_read", crma.read_latency_ns(LINE)),
        ("crma_small_write", crma.small_write_latency_ns(8)),
        ("rdma_page", rdma.transfer_latency_ns(PAGE)),
        ("rdma_bulk", rdma.transfer_latency_ns(16 * PAGE)),
        ("qpair_message", qpair.message_latency_ns(LINE)),
        ("qpair_round_trip", qpair.round_trip_latency_ns(16, LINE,
                                                         remote_handler_ns=5000)),
        ("qpair_occupancy", qpair.occupancy_ns(256)),
        # Last: the posted write's packet stays in flight (fire and
        # forget), which would contend with any op measured after it.
        ("crma_write", crma.write_latency_ns(LINE)),
    ]


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------
def test_uncontended_event_ops_match_closed_forms_within_tolerance():
    closed = dict(_op_table(ExperimentPlatform()))
    event = dict(_op_table(_event_platform()))
    for name, closed_ns in closed.items():
        measured = event[name]
        assert measured >= closed_ns * 0.999, (
            f"{name}: event fabric measured {measured} ns, below the "
            f"closed form {closed_ns} ns -- the formulas are a lower bound")
        assert measured <= closed_ns * (1 + TOLERANCE), (
            f"{name}: event fabric measured {measured} ns, more than "
            f"{TOLERANCE:.0%} above the closed form {closed_ns} ns")


def test_channel_default_backend_is_closed_form():
    platform = ExperimentPlatform()
    for channel in (platform.crma_channel(), platform.rdma_channel(),
                    platform.qpair_channel()):
        assert isinstance(channel.backend, ClosedFormBackend)
        assert channel.backend.kind == "closed_form"


def test_event_platform_channels_share_one_transport():
    platform = _event_platform()
    crma = platform.crma_channel()
    qpair = platform.qpair_channel()
    assert isinstance(crma.backend, EventBackend)
    assert crma.backend.transport is qpair.backend.transport
    sim = platform.event_transport().sim
    before = sim.events_processed
    crma.read_latency_ns(LINE)
    assert sim.events_processed > before
    qpair.message_latency_ns(LINE)
    assert platform.event_transport().ops_completed == 2


def test_system_event_backend_shares_one_transport():
    from repro.core.config import VeniceConfig
    from repro.core.system import VeniceSystem

    system = VeniceSystem.build(VeniceConfig(num_nodes=8, topology="star"),
                                transport_backend="event")
    crma = system.crma_channel(0, 1)
    rdma = system.rdma_channel(2, 5)
    assert crma.backend.transport is rdma.backend.transport
    assert crma.read_latency_ns(LINE) > 0
    assert rdma.transfer_latency_ns(PAGE) > 0
    # Routes through the star hub pay more than the closed-form pair.
    assert crma.read_latency_ns(LINE) > 0


def test_unknown_backend_rejected():
    from repro.core.config import VeniceConfig
    from repro.core.system import VeniceSystem

    with pytest.raises(ValueError):
        VeniceSystem.build(VeniceConfig.pair(), transport_backend="quantum")
    with pytest.raises(ValueError):
        ExperimentPlatform(backend="quantum")


def test_event_platform_rejects_closed_form_only_knobs():
    from repro.core.config import ChannelPlacement

    platform = _event_platform()
    with pytest.raises(ValueError):
        platform.crma_channel(through_router=True)
    with pytest.raises(ValueError):
        platform.qpair_channel(placement=ChannelPlacement.OFF_CHIP)


def test_event_backend_rejects_closed_form_only_stream_knobs():
    from dataclasses import replace

    platform = _event_platform()
    striped = platform.rdma_channel()
    striped.config = replace(striped.config, stripe_lanes=4)
    with pytest.raises(ValueError):
        striped.transfer_latency_ns(PAGE)
    serialised = platform.rdma_channel()
    serialised.config = replace(serialised.config, double_buffering=False)
    with pytest.raises(ValueError):
        serialised.transfer_latency_ns(PAGE)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_event_measurements_identical_across_runs_and_schedulers():
    baseline = _op_table(_event_platform("heap"))
    for scheduler in ("heap", "calendar"):
        assert _op_table(_event_platform(scheduler)) == baseline


def test_contended_measurements_deterministic():
    def contended_run():
        platform = _event_platform()
        platform.start_cross_traffic(payload_bytes=512, window=4)
        crma = platform.crma_channel()
        return [crma.read_latency_ns(LINE) for _ in range(8)]

    first = contended_run()
    assert contended_run() == first
    # Contention strictly inflates the uncontended measurement.
    quiet = _event_platform().crma_channel().read_latency_ns(LINE)
    assert max(first) > quiet


# ----------------------------------------------------------------------
# Event-transport mechanics
# ----------------------------------------------------------------------
def test_posted_writes_load_the_fabric_without_blocking():
    platform = _event_platform()
    crma = platform.crma_channel()
    transport = platform.event_transport()
    posted = crma.write_latency_ns(LINE)
    # The posted packet is still queued (nothing drove the sim)...
    assert len(transport.sim) > 0
    # ...and is drained -- unmatched, it has no handler -- by the next op.
    crma.read_latency_ns(LINE)
    assert transport.unmatched == 1
    assert posted == ExperimentPlatform().crma_channel().write_latency_ns(LINE)


def test_cross_traffic_driver_start_stop():
    platform = _event_platform()
    driver = platform.start_cross_traffic(window=2)
    assert platform.event_transport().contended
    before = driver.packets_sent
    platform.crma_channel().read_latency_ns(LINE)
    assert driver.packets_sent > before
    driver.stop()
    assert not platform.event_transport().contended
    # Ops still complete once the noise drains.
    assert platform.crma_channel().read_latency_ns(LINE) > 0
    # Restarting tops flows back up to the window, never beyond it.
    driver.start()
    assert all(count <= driver.window
               for count in driver._in_flight.values())
    driver.stop()
    with pytest.raises(TransportError):
        platform.event_transport().remove_background_source()


def test_restarting_cross_traffic_replaces_the_previous_driver():
    platform = _event_platform()
    first = platform.start_cross_traffic(window=2)
    second = platform.start_cross_traffic(window=4, payload_bytes=512)
    assert not first.active and second.active
    # Exactly one background source is registered.
    platform.event_transport().remove_background_source()
    assert not platform.event_transport().contended


def test_far_future_timers_are_not_mistaken_for_a_stall():
    # Regression: slices that dispatch nothing are legitimate when every
    # pending event (long server turnaround, slow noise relaunch) sits
    # beyond the slice horizon -- the clock must keep advancing to them
    # instead of declaring the fabric dead.
    platform = _event_platform()
    platform.start_cross_traffic(window=1, turnaround_ns=40_000)
    latency = platform.qpair_channel().round_trip_latency_ns(
        16, 64, remote_handler_ns=100_000)
    assert latency > 100_000


def test_stalled_fabric_raises_transport_error():
    platform = _event_platform()
    transport = platform.event_transport()
    # A background source that never actually injects anything: the
    # slice loop must detect the dead fabric instead of spinning.
    transport.add_background_source()
    crma = platform.crma_channel()
    # Detach every sink so the op's packet vanishes at the destination.
    for switch in transport.fabric.switches.values():
        switch.attach_local_sink(lambda packet: None)
    with pytest.raises(TransportError):
        crma.read_latency_ns(LINE)
