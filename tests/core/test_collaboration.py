"""Unit tests for inter-channel collaboration (Section 5.1.3)."""

import pytest

from repro.core.channels.collaboration import (
    AccessDemand,
    AdaptiveChannelSelector,
    ChannelChoice,
    CreditFlowControlModel,
)
from repro.core.channels.crma import CrmaChannel
from repro.core.channels.qpair import QPairChannel


# ----------------------------------------------------------------------
# Adaptive channel selection
# ----------------------------------------------------------------------
def test_random_fine_grain_access_selects_crma():
    selector = AdaptiveChannelSelector()
    demand = AccessDemand(granularity_bytes=64, random_access=True)
    assert selector.select(demand) is ChannelChoice.CRMA


def test_small_granularity_selects_crma_even_if_not_random():
    selector = AdaptiveChannelSelector()
    assert selector.select(AccessDemand(granularity_bytes=32)) is ChannelChoice.CRMA


def test_bulk_contiguous_transfer_selects_rdma():
    selector = AdaptiveChannelSelector()
    demand = AccessDemand(granularity_bytes=1 << 20, random_access=False)
    assert selector.select(demand) is ChannelChoice.RDMA
    by_volume = AccessDemand(granularity_bytes=4096, total_bytes=16 << 20)
    assert selector.select(by_volume) is ChannelChoice.RDMA


def test_message_passing_selects_qpair():
    selector = AdaptiveChannelSelector()
    demand = AccessDemand(granularity_bytes=256, message_passing=True)
    assert selector.select(demand) is ChannelChoice.QPAIR


def test_mid_sized_contiguous_selects_qpair():
    selector = AdaptiveChannelSelector()
    demand = AccessDemand(granularity_bytes=8192)
    assert selector.select(demand) is ChannelChoice.QPAIR


def test_selector_and_demand_validation():
    with pytest.raises(ValueError):
        AdaptiveChannelSelector(fine_grain_threshold_bytes=0)
    with pytest.raises(ValueError):
        AdaptiveChannelSelector(fine_grain_threshold_bytes=1024, bulk_threshold_bytes=512)
    with pytest.raises(ValueError):
        AccessDemand(granularity_bytes=0)


# ----------------------------------------------------------------------
# Credit flow control over CRMA (Figure 9 / Figure 18)
# ----------------------------------------------------------------------
def build_model(credits=4):
    return CreditFlowControlModel(qpair=QPairChannel(), crma=CrmaChannel(),
                                  credits=credits)


def test_crma_credit_return_is_faster_than_qpair():
    model = build_model()
    assert model.crma_credit_return_latency_ns() < model.qpair_credit_return_latency_ns()


def test_crma_credits_improve_bandwidth_for_all_sizes():
    model = build_model()
    for size in (4, 8, 16, 32, 64, 128):
        assert model.improvement_percent(size) > 0
        assert model.crma_credit_bandwidth_gbps(size) > \
            model.qpair_credit_bandwidth_gbps(size)


def test_improvement_is_larger_for_smaller_packets():
    model = build_model()
    assert model.improvement_percent(4) >= model.improvement_percent(128)


def test_improvement_in_papers_reported_range():
    """The paper reports 28-51% effective-bandwidth improvement."""
    model = build_model()
    improvements = list(model.sweep((4, 8, 16, 32, 64, 128)).values())
    assert all(20.0 <= value <= 60.0 for value in improvements)


def test_sweep_returns_all_sizes():
    model = build_model()
    sweep = model.sweep((4, 64))
    assert set(sweep) == {4, 64}


def test_model_validation():
    with pytest.raises(ValueError):
        build_model(credits=0)
    with pytest.raises(ValueError):
        CreditFlowControlModel(QPairChannel(), CrmaChannel(), credit_generation_ns=-1)
