"""Unit tests for the resource-joining mechanisms (Section 5.2)."""

import pytest

from repro.accel.device import FftAccelerator
from repro.accel.mailbox import Mailbox
from repro.core.channels.crma import CrmaChannel
from repro.core.channels.qpair import QPairChannel
from repro.core.channels.rdma import RdmaChannel
from repro.core.sharing.remote_accelerator import (
    AcceleratorPool,
    LocalAcceleratorTarget,
    RemoteAcceleratorTarget,
)
from repro.core.sharing.remote_memory import (
    MemorySharingError,
    share_memory,
    stop_sharing,
    swap_device_for_grant,
)
from repro.core.sharing.remote_nic import RemoteNicSharing, VirtualNic
from repro.mem.dram import Dram
from repro.mem.memory_map import PhysicalMemoryMap, RegionKind
from repro.nic.nic import Nic

MB = 1024 * 1024
GB = 1024 * MB


# ----------------------------------------------------------------------
# Remote memory sharing (Figure 2 / Figure 10 flow)
# ----------------------------------------------------------------------
def test_share_memory_full_flow():
    donor = PhysicalMemoryMap(1 * GB, node_id=1)
    recipient = PhysicalMemoryMap(1 * GB, node_id=0)
    channel = CrmaChannel()
    grant = share_memory(donor, recipient, 256 * MB, channel)

    assert grant.active
    assert donor.donated_capacity() == 256 * MB
    assert recipient.remote_capacity() == 256 * MB
    assert grant.recipient_region.kind is RegionKind.REMOTE_MAPPED
    # The RAMT window translates recipient addresses to donor addresses.
    node, address = channel.translate(grant.recipient_base + 100)
    assert node == 1
    assert address == grant.donor_base + 100


def test_stop_sharing_restores_both_sides():
    donor = PhysicalMemoryMap(1 * GB, node_id=1)
    recipient = PhysicalMemoryMap(1 * GB, node_id=0)
    channel = CrmaChannel()
    grant = share_memory(donor, recipient, 128 * MB, channel)
    stop_sharing(grant, donor, recipient)
    assert not grant.active
    assert donor.donated_capacity() == 0
    assert donor.local_capacity() == 1 * GB
    assert recipient.remote_capacity() == 0
    with pytest.raises(MemorySharingError):
        stop_sharing(grant, donor, recipient)


def test_share_memory_rejects_bad_requests():
    donor = PhysicalMemoryMap(256 * MB, node_id=1)
    recipient = PhysicalMemoryMap(256 * MB, node_id=0)
    with pytest.raises(MemorySharingError):
        share_memory(donor, recipient, 0, CrmaChannel())
    with pytest.raises(MemorySharingError):
        share_memory(donor, recipient, 1 * GB, CrmaChannel())
    with pytest.raises(MemorySharingError):
        share_memory(donor, donor, 64 * MB, CrmaChannel())


def test_swap_device_for_grant_uses_rdma():
    device = swap_device_for_grant(RdmaChannel())
    assert device.read_page_latency_ns(4096) > 0
    assert device.supports_write_overlap()


# ----------------------------------------------------------------------
# Remote accelerators (Figure 11)
# ----------------------------------------------------------------------
def local_target():
    return LocalAcceleratorTarget(FftAccelerator(), dram=Dram())


def remote_target(exclusive=True):
    return RemoteAcceleratorTarget(
        accelerator=FftAccelerator(node_id=1),
        mailbox=Mailbox(owner_node=1),
        rdma=RdmaChannel(),
        crma=CrmaChannel(),
        qpair=QPairChannel(),
        exclusive_mapping=exclusive,
    )


def test_remote_accelerator_task_pays_transfer_overhead():
    task_args = dict(input_bytes=256 * 1024, output_bytes=256 * 1024, elements=16_384)
    local_latency = local_target().task_latency_ns(**task_args)
    remote_latency = remote_target().task_latency_ns(**task_args)
    assert remote_latency > local_latency
    # But the overhead stays well below the compute itself for this size
    # (otherwise Figure 16a could not scale near-linearly).
    assert remote_latency < 2 * local_latency


def test_remote_accelerator_mailbox_cycles_cleanly():
    target = remote_target()
    for _ in range(3):
        target.task_latency_ns(input_bytes=4096, output_bytes=4096, elements=256)
    assert target.mailbox.tasks_completed == 3
    assert target.mailbox.is_idle


def test_exclusive_mapping_faster_than_kernel_thread_path():
    exclusive = remote_target(exclusive=True)
    mediated = remote_target(exclusive=False)
    task_args = dict(input_bytes=4096, output_bytes=4096, elements=256)
    assert exclusive.task_latency_ns(**task_args) < mediated.task_latency_ns(**task_args)


def test_remote_target_requires_a_control_channel():
    target = RemoteAcceleratorTarget(
        accelerator=FftAccelerator(), mailbox=Mailbox(owner_node=1),
        rdma=RdmaChannel(), crma=None, qpair=None)
    with pytest.raises(ValueError):
        target.task_latency_ns(input_bytes=4096, output_bytes=4096, elements=64)


def test_accelerator_pool_counts_targets():
    pool = AcceleratorPool([local_target(), remote_target(), remote_target()])
    assert len(pool) == 3
    assert pool.local_count == 1
    assert pool.remote_count == 2
    assert pool[0].is_remote is False
    with pytest.raises(ValueError):
        AcceleratorPool([])


# ----------------------------------------------------------------------
# Remote NICs (Figure 12)
# ----------------------------------------------------------------------
def test_virtual_nic_slower_than_real_nic():
    vnic = VirtualNic(real_nic=Nic(), qpair=QPairChannel())
    real = Nic()
    for payload in (4, 64, 256):
        assert vnic.throughput_gbps(payload) < real.throughput_gbps(payload)
        assert 0 < vnic.line_rate_utilization(payload) <= 1.0


def test_virtual_nic_small_packets_hurt_most():
    vnic = VirtualNic(real_nic=Nic(), qpair=QPairChannel())
    assert vnic.line_rate_utilization(4) < vnic.line_rate_utilization(256)


def test_remote_nic_sharing_bond_grows_with_members():
    sharing = RemoteNicSharing(local_nic=Nic())
    sharing.attach_remote_nic(Nic(), qpair=QPairChannel())
    sharing.attach_remote_nic(Nic(), qpair=QPairChannel())
    one = sharing.bonded_interface(num_remote=1).throughput_gbps(256)
    two = sharing.bonded_interface(num_remote=2).throughput_gbps(256)
    assert two > one
    assert sharing.bonded_interface().member_count == 3


def test_remote_nic_detach():
    sharing = RemoteNicSharing(local_nic=Nic())
    vnic = sharing.attach_remote_nic(Nic(), qpair=QPairChannel())
    sharing.detach_remote_nic(vnic)
    assert sharing.bonded_interface().member_count == 1
    with pytest.raises(ValueError):
        sharing.bonded_interface(num_remote=5)
