"""Unit tests for the RAMT and transport-layer TLB (Figure 8)."""

import pytest

from repro.core.address import (
    AddressMappingError,
    RamtEntry,
    RemoteAddressMappingTable,
    TransportTlb,
)

MB = 1024 * 1024


def test_entry_contains_and_translates():
    entry = RamtEntry(local_base=0x1_0000_0000, size=64 * MB,
                      remote_node=3, remote_base=0xC000_0000)
    assert entry.contains(0x1_0000_0000)
    assert entry.contains(0x1_0000_0000 + 64 * MB - 1)
    assert not entry.contains(0x1_0000_0000 + 64 * MB)
    node, address = entry.translate(0x1_0000_0000 + 0x123)
    assert node == 3
    assert address == 0xC000_0000 + 0x123


def test_entry_translate_outside_window_raises():
    entry = RamtEntry(local_base=0, size=4096, remote_node=1, remote_base=0)
    with pytest.raises(AddressMappingError):
        entry.translate(8192)


def test_entry_validation():
    with pytest.raises(ValueError):
        RamtEntry(local_base=0, size=0, remote_node=1, remote_base=0)
    with pytest.raises(ValueError):
        RamtEntry(local_base=-1, size=10, remote_node=1, remote_base=0)


def test_ramt_install_lookup_invalidate():
    ramt = RemoteAddressMappingTable(capacity=4)
    entry = ramt.install(local_base=4 * MB, size=MB, remote_node=1, remote_base=0)
    assert len(ramt) == 1
    assert ramt.lookup(4 * MB + 10) is entry
    assert ramt.lookup(100) is None
    ramt.invalidate(entry)
    assert len(ramt) == 0
    assert ramt.lookup(4 * MB + 10) is None


def test_ramt_rejects_overlapping_windows():
    ramt = RemoteAddressMappingTable()
    ramt.install(local_base=0, size=MB, remote_node=1, remote_base=0)
    with pytest.raises(AddressMappingError):
        ramt.install(local_base=MB // 2, size=MB, remote_node=2, remote_base=0)


def test_ramt_capacity_limit():
    ramt = RemoteAddressMappingTable(capacity=2)
    ramt.install(local_base=0, size=MB, remote_node=1, remote_base=0)
    ramt.install(local_base=2 * MB, size=MB, remote_node=1, remote_base=0)
    with pytest.raises(AddressMappingError):
        ramt.install(local_base=4 * MB, size=MB, remote_node=1, remote_base=0)
    # Invalidation frees a slot.
    ramt.invalidate(ramt.entries[0])
    ramt.install(local_base=4 * MB, size=MB, remote_node=1, remote_base=0)


def test_ramt_translate_unmapped_raises():
    ramt = RemoteAddressMappingTable()
    with pytest.raises(AddressMappingError):
        ramt.translate(123)


def test_ramt_invalidate_foreign_entry_raises():
    ramt = RemoteAddressMappingTable()
    foreign = RamtEntry(local_base=0, size=10, remote_node=1, remote_base=0)
    with pytest.raises(AddressMappingError):
        ramt.invalidate(foreign)


def test_tlb_hit_after_fill():
    tlb = TransportTlb(capacity=4)
    entry = RamtEntry(local_base=0, size=16 * MB, remote_node=1, remote_base=0)
    assert tlb.lookup(100) is None
    tlb.fill(100, entry)
    assert tlb.lookup(100) is entry
    assert tlb.hits == 1 and tlb.misses == 1
    assert tlb.hit_rate == pytest.approx(0.5)


def test_tlb_same_page_shares_translation():
    tlb = TransportTlb(capacity=4, page_bits=12)
    entry = RamtEntry(local_base=0, size=16 * MB, remote_node=1, remote_base=0)
    tlb.fill(0, entry)
    assert tlb.lookup(4095) is entry     # same 4 KB page
    assert tlb.lookup(4096) is None      # next page misses


def test_tlb_lru_eviction():
    tlb = TransportTlb(capacity=2, page_bits=12)
    entry = RamtEntry(local_base=0, size=64 * MB, remote_node=1, remote_base=0)
    tlb.fill(0 * 4096, entry)
    tlb.fill(1 * 4096, entry)
    tlb.lookup(0)                        # refresh page 0
    tlb.fill(2 * 4096, entry)            # evicts page 1
    assert tlb.lookup(0) is entry
    assert tlb.lookup(1 * 4096) is None


def test_tlb_flush_and_invalid_entries():
    tlb = TransportTlb(capacity=4)
    entry = RamtEntry(local_base=0, size=MB, remote_node=1, remote_base=0)
    tlb.fill(0, entry)
    entry.valid = False
    assert tlb.lookup(0) is None         # invalid entries never hit
    tlb.flush()
    assert tlb.lookup(0) is None


def test_capacity_validation():
    with pytest.raises(ValueError):
        RemoteAddressMappingTable(capacity=0)
    with pytest.raises(ValueError):
        TransportTlb(capacity=0)
