"""EventTransport over a partitioned fabric (``event_transport(parallel=N)``).

The transport API is unchanged: channels submit ops, ``drive_all``
advances the fabric.  With ``parallel > 1`` the fabric is split per
leaf and driven through the conservative-lookahead barrier -- measured
latencies, final clocks and event counts must match the monolithic
single-simulator transport exactly.
"""

import pytest

from repro.core.channels.backend import CrossTrafficDriver
from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem

LINE = 64
PAIRS = [(0, 5), (4, 9), (8, 13), (12, 1)]  # cross-leaf routes


def _system(num_nodes=16):
    return VeniceSystem.build(
        VeniceConfig(num_nodes=num_nodes, topology="fat_tree"),
        transport_backend="event")


def _drive_reads(system, parallel):
    transport = system.event_transport(parallel=parallel)
    ops = [system.crma_channel(src, dst).submit_read(LINE)
           for src, dst in PAIRS]
    transport.drive_all(ops)
    assert all(op.done for op in ops)
    return transport, [op.latency_ns for op in ops]


@pytest.mark.parametrize("parallel", [2, 4])
def test_concurrent_reads_match_monolithic_transport(parallel):
    mono_transport, mono_latencies = _drive_reads(_system(), 1)
    par_transport, par_latencies = _drive_reads(_system(), parallel)
    assert par_latencies == mono_latencies
    assert par_transport.sim.now == mono_transport.sim.now
    assert (par_transport.sim.events_processed
            == mono_transport.sim.events_processed)


def test_round_trip_and_one_way_match_monolithic():
    mono = _system()
    mono_transport = mono.event_transport()
    mono_rt = mono.qpair_channel(0, 9).submit_round_trip(16, LINE)
    mono_ow = mono.qpair_channel(4, 13).submit_message(8)
    mono_transport.drive_all([mono_rt, mono_ow])

    par = _system()
    par_transport = par.event_transport(parallel=4)
    par_rt = par.qpair_channel(0, 9).submit_round_trip(16, LINE)
    par_ow = par.qpair_channel(4, 13).submit_message(8)
    par_transport.drive_all([par_rt, par_ow])

    assert (par_rt.latency_ns, par_ow.latency_ns) == \
        (mono_rt.latency_ns, mono_ow.latency_ns)


def test_cross_traffic_over_partitions_matches_monolithic():
    # Cross-traffic relaunches inject from whichever partition's window
    # is live -- the deferred-record path under real transport load.
    def measure(parallel):
        system = _system()
        transport = system.event_transport(parallel=parallel)
        driver = CrossTrafficDriver(transport, flows=[(0, 9), (8, 1)],
                                    payload_bytes=128, turnaround_ns=2000)
        driver.start()
        op = system.crma_channel(12, 5).submit_read(LINE)
        transport.drive_all([op])
        driver.stop()
        return op.latency_ns, transport.sim.now

    assert measure(4) == measure(1)


def test_partition_shape_is_fixed_at_first_use():
    system = _system()
    system.event_transport()  # built monolithic
    with pytest.raises(ValueError):
        system.event_transport(parallel=2)
    # The default accepts an existing partitioned fabric (channels call
    # event_transport() internally with parallel=1).
    partitioned = _system()
    transport = partitioned.event_transport(parallel=2)
    assert partitioned.event_transport() is transport
    with pytest.raises(ValueError):
        partitioned.event_transport(parallel=0)


def test_cluster_event_transport_passes_parallel_through():
    from repro.cluster.cluster import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(
        num_nodes=16, topology="fat_tree", transport_backend="event"))
    transport = cluster.event_transport(parallel=2)
    op = cluster.system.crma_channel(0, 9).submit_read(LINE)
    transport.drive_all([op])
    assert op.done

    mono = Cluster(ClusterConfig(
        num_nodes=16, topology="fat_tree", transport_backend="event"))
    mono_op = mono.system.crma_channel(0, 9).submit_read(LINE)
    mono.event_transport().drive_all([mono_op])
    assert op.latency_ns == mono_op.latency_ns
