"""Unit tests for node composition and whole-system wiring."""

import pytest

from repro.core.config import ChannelPlacement, NodeConfig, VeniceConfig
from repro.core.node import VeniceNode
from repro.core.system import VeniceSystem

MB = 1024 * 1024
GB = 1024 * MB


# ----------------------------------------------------------------------
# VeniceNode
# ----------------------------------------------------------------------
def test_node_default_resources():
    node = VeniceNode(0)
    assert node.local_memory_bytes == 1 * GB
    assert len(node.accelerators) == 1
    assert len(node.nics) == 1
    assert node.agent.node_id == 0


def test_node_builds_working_core():
    node = VeniceNode(3)
    core = node.build_core()
    latency = core.read(0x1000)
    assert latency > 0


def test_node_resource_accessors():
    node = VeniceNode(1, NodeConfig(num_accelerators=2, num_nics=3))
    assert node.primary_accelerator() is node.accelerators[0]
    assert node.primary_nic() is node.nics[0]
    assert len(node.mailboxes) == 2
    empty = VeniceNode(2, NodeConfig(num_accelerators=0, num_nics=0))
    with pytest.raises(ValueError):
        empty.primary_accelerator()
    with pytest.raises(ValueError):
        empty.primary_nic()


# ----------------------------------------------------------------------
# VeniceSystem
# ----------------------------------------------------------------------
def test_build_table1_system(mesh_config):
    system = VeniceSystem.build(mesh_config)
    assert system.node_ids == list(range(8))
    assert system.topology.diameter() == 3
    assert system.monitor.registered_nodes == list(range(8))


def test_build_pair_and_star_systems():
    pair = VeniceSystem.build(VeniceConfig.pair())
    assert pair.node_ids == [0, 1]
    star = VeniceSystem.build(VeniceConfig(num_nodes=4, topology="star"))
    assert len(star.node_ids) == 4
    assert star.topology.hop_count(0, 1) == 2


def test_path_between_charges_topology_routers():
    # Star and fat-tree routes cross router nodes; the path must charge
    # them as external-router crossings, consistent with the Figure 6
    # model (and with the cluster layer's cached paths).
    star = VeniceSystem.build(VeniceConfig(num_nodes=4, topology="star"))
    routed = star.path_between(0, 1)
    assert routed.hops == 1
    assert routed.external_router is not None
    assert routed.external_router_count == 1
    fat_tree = VeniceSystem.build(VeniceConfig(num_nodes=16, topology="fat_tree"))
    same_leaf = fat_tree.path_between(0, 1)
    cross_leaf = fat_tree.path_between(0, 15)
    assert same_leaf.external_router_count == 1
    assert cross_leaf.external_router_count == 3
    assert cross_leaf.one_way_latency_ns(64) > same_leaf.one_way_latency_ns(64)


def test_event_fabric_builds_over_routed_topologies():
    # Regression: switches used to be built only for compute nodes, so
    # wiring the router links of star/fat-tree topologies crashed.
    for config in (VeniceConfig(num_nodes=4, topology="star"),
                   VeniceConfig(num_nodes=8, topology="fat_tree")):
        system = VeniceSystem.build(config)
        fabric = system.build_event_fabric()
        assert set(fabric.switches) == set(system.topology.nodes)
        # Every compute node is reachable from every switch.
        for node_id, switch in fabric.switches.items():
            for destination in system.topology.compute_nodes:
                if destination != node_id:
                    assert switch.routing_table.lookup(destination) is not None


def test_path_between_reflects_topology_distance(mesh_config):
    system = VeniceSystem.build(mesh_config)
    near = system.path_between(0, 1)
    far = system.path_between(0, 7)
    assert near.hops == 1
    assert far.hops == 3
    assert far.one_way_latency_ns(64) > near.one_way_latency_ns(64)
    with pytest.raises(ValueError):
        system.path_between(0, 0)


def test_channels_are_built_between_nodes(mesh_config):
    system = VeniceSystem.build(mesh_config)
    crma = system.crma_channel(0, 1)
    rdma = system.rdma_channel(0, 1)
    qpair = system.qpair_channel(0, 1, placement=ChannelPlacement.OFF_CHIP)
    assert crma.read_latency_ns(32) > 0
    assert rdma.transfer_latency_ns(4096) > 0
    assert qpair.message_latency_ns(64) > 0
    routed = system.crma_channel(0, 1, through_router=True)
    assert routed.read_latency_ns(32) > crma.read_latency_ns(32)


def test_request_and_release_remote_memory(mesh_config):
    system = VeniceSystem.build(mesh_config)
    allocation, grant = system.request_remote_memory(requester=0, size_bytes=256 * MB)
    assert allocation.donor == grant.donor_node != 0
    assert system.node(0).borrowed_memory_bytes == 256 * MB
    assert system.node(grant.donor_node).donated_memory_bytes == 256 * MB
    assert grant in system.grants

    backend = system.remote_backend_for(grant)
    hierarchy = system.node(0).build_hierarchy(remote_backend=backend)
    outcome = hierarchy.access(grant.recipient_base + 4096)
    assert outcome.served_by == "remote"

    system.release_remote_memory(allocation, grant)
    assert system.node(0).borrowed_memory_bytes == 0
    assert system.node(grant.donor_node).donated_memory_bytes == 0
    assert grant not in system.grants


def test_nearest_donor_is_preferred(mesh_config):
    system = VeniceSystem.build(mesh_config)
    allocation, _grant = system.request_remote_memory(requester=0, size_bytes=64 * MB)
    assert allocation.hops == 1


def test_swap_device_between_nodes(mesh_config):
    system = VeniceSystem.build(mesh_config)
    device = system.swap_device_between(0, 7)
    assert device.read_page_latency_ns(4096) > 0


def test_unknown_node_raises(mesh_config):
    system = VeniceSystem.build(mesh_config)
    with pytest.raises(KeyError):
        system.node(42)


def test_event_fabric_wiring(mesh_config):
    system = VeniceSystem.build(mesh_config)
    fabric = system.build_event_fabric()
    assert len(fabric.switches) == 8
    # 12 undirected mesh links -> 24 directed links/datalinks.
    assert len(fabric.links) == 24
    assert len(fabric.datalinks) == 24
    # Every switch can route to every other node.
    for src, switch in fabric.switches.items():
        for dst in system.node_ids:
            if dst != src:
                assert switch.routing_table.has_route(dst)
