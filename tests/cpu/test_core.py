"""Unit tests for the in-order timing core."""

import pytest

from repro.cpu.core import CpuConfig, TimingCore
from repro.cpu.hierarchy import MemoryHierarchy, RemoteMemoryBackend
from repro.mem.cache import Cache, CacheConfig
from repro.mem.memory_map import PhysicalMemoryMap

MB = 1024 * 1024


class SlowRemote(RemoteMemoryBackend):
    def __init__(self, latency=5000):
        self.latency = latency

    def remote_read_latency_ns(self, size_bytes):
        return self.latency

    def remote_write_latency_ns(self, size_bytes):
        return self.latency


def local_core(max_outstanding=4):
    hierarchy = MemoryHierarchy(PhysicalMemoryMap(64 * MB),
                                cache=Cache(CacheConfig(size_bytes=4096,
                                                        line_bytes=32,
                                                        associativity=2)),
                                enable_prefetch=False)
    return TimingCore(hierarchy, CpuConfig(max_outstanding=max_outstanding))


def remote_core(max_outstanding=4, latency=5000):
    memory_map = PhysicalMemoryMap(4096)
    memory_map.hot_plug_remote(64 * MB, donor_node=1, donor_base=0)
    hierarchy = MemoryHierarchy(memory_map,
                                cache=Cache(CacheConfig(size_bytes=4096,
                                                        line_bytes=32,
                                                        associativity=2)),
                                remote_backend=SlowRemote(latency),
                                enable_prefetch=False)
    return TimingCore(hierarchy, CpuConfig(max_outstanding=max_outstanding))


def test_cycle_time_from_clock():
    config = CpuConfig(clock_mhz=667.0)
    assert config.cycle_ns == pytest.approx(1.499, abs=0.01)
    assert config.cycles_to_ns(1000) == pytest.approx(1499.25, abs=1)


def test_compute_advances_clock():
    core = local_core()
    core.compute(667)
    assert core.now_ns == pytest.approx(1000, abs=2)


def test_blocking_read_adds_memory_latency():
    core = local_core()
    latency = core.read(0x2000)
    assert latency > 0
    assert core.now_ns == latency


def test_stall_accumulates_separately():
    core = local_core()
    core.stall(500)
    result = core.result()
    assert result.stall_time_ns == 500
    assert result.total_time_ns == 500


def test_result_counts_accesses_and_hits():
    core = local_core()
    core.read(0)
    core.read(0)
    core.write(0)
    result = core.result()
    assert result.accesses == 3
    assert result.cache_hits == 2


def test_async_reads_overlap_remote_latency():
    sync_core = remote_core(latency=10_000)
    async_core = remote_core(max_outstanding=8, latency=10_000)
    stride = 4096  # distinct lines and pages, all remote
    for index in range(8):
        sync_core.read(1 * MB + index * stride)
    for index in range(8):
        async_core.read_async(1 * MB + index * stride)
    async_core.drain()
    assert async_core.now_ns < sync_core.now_ns


def test_async_window_limits_overlap():
    narrow = remote_core(max_outstanding=1, latency=10_000)
    wide = remote_core(max_outstanding=8, latency=10_000)
    for index in range(8):
        narrow.read_async(1 * MB + index * 4096)
    narrow.drain()
    for index in range(8):
        wide.read_async(1 * MB + index * 4096)
    wide.drain()
    assert wide.now_ns < narrow.now_ns


def test_drain_waits_for_outstanding_ops():
    core = remote_core(max_outstanding=8, latency=7000)
    core.read_async(1 * MB)
    before = core.now_ns
    core.drain()
    assert core.now_ns >= before + 7000 - 1


def test_result_drains_automatically():
    core = remote_core(max_outstanding=8, latency=7000)
    core.read_async(1 * MB)
    result = core.result()
    assert result.total_time_ns >= 7000 - 1
    assert result.remote_accesses == 1


def test_reset_clears_clock_but_keeps_hierarchy():
    core = local_core()
    core.read(0)
    core.reset()
    assert core.now_ns == 0
    # The cache still holds the line, so this is now a hit.
    core.read(0)
    assert core.result().cache_hits >= 1


def test_memory_fraction_metric():
    core = local_core()
    core.compute(10000)
    core.read(0)
    result = core.result()
    assert 0.0 < result.memory_fraction < 1.0
    assert result.total_time_s == pytest.approx(result.total_time_ns / 1e9)


def test_invalid_arguments_rejected():
    core = local_core()
    with pytest.raises(ValueError):
        core.compute(-1)
    with pytest.raises(ValueError):
        core.stall(-1)
    with pytest.raises(ValueError):
        CpuConfig(clock_mhz=0)
    with pytest.raises(ValueError):
        CpuConfig(max_outstanding=0)
