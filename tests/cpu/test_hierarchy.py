"""Unit tests for the memory hierarchy (cache -> DRAM | remote | swap)."""

import pytest

from repro.cpu.hierarchy import LocalOnlyBackend, MemoryHierarchy, RemoteMemoryBackend
from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import Dram, DramConfig
from repro.mem.memory_map import PhysicalMemoryMap
from repro.mem.swap import SwapConfig, SwapManager

MB = 1024 * 1024


class FixedRemoteBackend(RemoteMemoryBackend):
    def __init__(self, read_ns=3000, write_ns=150):
        self.read_ns = read_ns
        self.write_ns = write_ns
        self.reads = 0
        self.writes = 0

    def remote_read_latency_ns(self, size_bytes):
        self.reads += 1
        return self.read_ns

    def remote_write_latency_ns(self, size_bytes):
        self.writes += 1
        return self.write_ns


def small_cache():
    return Cache(CacheConfig(size_bytes=4096, line_bytes=32, associativity=2))


def local_hierarchy(capacity=64 * MB, prefetch=False):
    return MemoryHierarchy(PhysicalMemoryMap(capacity), cache=small_cache(),
                           dram=Dram(DramConfig()), enable_prefetch=prefetch)


def test_local_miss_served_by_dram():
    hierarchy = local_hierarchy()
    outcome = hierarchy.access(0x1000)
    assert not outcome.cache_hit
    assert outcome.served_by == "dram"
    assert outcome.latency_ns > 0


def test_second_access_hits_in_cache():
    hierarchy = local_hierarchy()
    hierarchy.access(0x1000)
    outcome = hierarchy.access(0x1000)
    assert outcome.cache_hit
    assert outcome.served_by == "cache"


def test_remote_region_uses_backend():
    memory_map = PhysicalMemoryMap(1 * MB)
    memory_map.hot_plug_remote(8 * MB, donor_node=1, donor_base=0)
    backend = FixedRemoteBackend()
    hierarchy = MemoryHierarchy(memory_map, cache=small_cache(),
                                remote_backend=backend, enable_prefetch=False)
    outcome = hierarchy.access(2 * MB)
    assert outcome.served_by == "remote"
    assert outcome.latency_ns >= backend.read_ns
    assert backend.reads == 1


def test_remote_write_uses_backend_write_path():
    memory_map = PhysicalMemoryMap(1 * MB)
    memory_map.hot_plug_remote(8 * MB, donor_node=1, donor_base=0)
    backend = FixedRemoteBackend()
    hierarchy = MemoryHierarchy(memory_map, cache=small_cache(),
                                remote_backend=backend, enable_prefetch=False)
    outcome = hierarchy.access(2 * MB, is_write=True)
    assert outcome.served_by == "remote"
    assert backend.writes == 1


def test_remote_region_without_backend_raises():
    memory_map = PhysicalMemoryMap(1 * MB)
    memory_map.hot_plug_remote(8 * MB, donor_node=1, donor_base=0)
    hierarchy = MemoryHierarchy(memory_map, cache=small_cache())
    with pytest.raises(RuntimeError):
        hierarchy.access(2 * MB)


def test_local_only_backend_refuses():
    backend = LocalOnlyBackend()
    with pytest.raises(RuntimeError):
        backend.remote_read_latency_ns(32)
    with pytest.raises(RuntimeError):
        backend.remote_write_latency_ns(32)


def test_address_beyond_visible_memory_uses_swap():
    swap = SwapManager(SwapConfig(resident_frames=16, fault_overhead_ns=1000))
    hierarchy = MemoryHierarchy(PhysicalMemoryMap(1 * MB), cache=small_cache(),
                                swap=swap, enable_prefetch=False)
    outcome = hierarchy.access(32 * MB)
    assert outcome.served_by == "swap"
    assert swap.fault_count == 1


def test_address_beyond_visible_memory_without_swap_raises():
    hierarchy = local_hierarchy(capacity=1 * MB)
    with pytest.raises(RuntimeError):
        hierarchy.access(32 * MB)


def test_dirty_writeback_to_remote_counted():
    memory_map = PhysicalMemoryMap(1 * MB)
    memory_map.hot_plug_remote(64 * MB, donor_node=1, donor_base=0)
    backend = FixedRemoteBackend()
    hierarchy = MemoryHierarchy(memory_map, cache=small_cache(),
                                remote_backend=backend, enable_prefetch=False)
    # Dirty a remote line, then force its eviction by filling the set.
    set_stride = 64 * 32  # num_sets * line_bytes for the small cache
    base = 2 * MB
    hierarchy.access(base, is_write=True)
    hierarchy.access(base + set_stride)
    hierarchy.access(base + 2 * set_stride)
    assert backend.writes >= 1


def test_prefetcher_reduces_sequential_remote_latency():
    def build(prefetch):
        memory_map = PhysicalMemoryMap(4096)
        memory_map.hot_plug_remote(64 * MB, donor_node=1, donor_base=0)
        return MemoryHierarchy(memory_map, cache=small_cache(),
                               remote_backend=FixedRemoteBackend(read_ns=3000),
                               enable_prefetch=prefetch)

    without = build(False)
    with_prefetch = build(True)
    total_without = sum(without.access(1 * MB + line * 32).latency_ns
                        for line in range(64))
    total_with = sum(with_prefetch.access(1 * MB + line * 32).latency_ns
                     for line in range(64))
    assert total_with < total_without


def test_cache_miss_rate_property():
    hierarchy = local_hierarchy()
    hierarchy.access(0)
    hierarchy.access(0)
    assert hierarchy.cache_miss_rate == pytest.approx(0.5)
    assert hierarchy.swap_fault_count == 0
