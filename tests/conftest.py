"""Shared fixtures for the test suite."""

import os

import pytest

from repro.core.config import VeniceConfig
from repro.experiments.common import ExperimentPlatform
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator instance.

    ``SIM_SCHEDULER`` pins the timer backend (the CI sanitize job runs
    the suite once per backend); unset, the default ``auto`` policy
    applies.  ``SIM_SANITIZE`` is read by the Simulator itself.
    """
    return Simulator(scheduler=os.environ.get("SIM_SCHEDULER", "auto"))


@pytest.fixture
def platform() -> ExperimentPlatform:
    """Default two-node experiment platform."""
    return ExperimentPlatform()


@pytest.fixture
def pair_config() -> VeniceConfig:
    """Two directly connected nodes."""
    return VeniceConfig.pair()


@pytest.fixture
def mesh_config() -> VeniceConfig:
    """The Table 1 eight-node 3D-mesh system."""
    return VeniceConfig()
