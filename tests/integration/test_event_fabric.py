"""Integration tests: packets traversing the event-driven fabric.

These tests exercise the full PHY + datalink + switch stack built by
``VeniceSystem.build_event_fabric`` over the Table 1 mesh, checking that
multi-hop delivery, flow control and routing all compose.
"""

import pytest

from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem
from repro.fabric.packet import Packet, PacketKind


@pytest.fixture()
def mesh_fabric():
    system = VeniceSystem.build(VeniceConfig())
    fabric = system.build_event_fabric()
    return system, fabric


def attach_sinks(fabric):
    delivered = {node: [] for node in fabric.switches}
    for node, switch in fabric.switches.items():
        switch.attach_local_sink(
            lambda packet, node=node: delivered[node].append(packet))
    return delivered


def send(fabric, src, dst, payload=64, kind=PacketKind.CRMA_READ):
    packet = Packet(src=src, dst=dst, kind=kind, payload_bytes=payload)
    fabric.switches[src].inject(packet)
    return packet


def test_single_hop_delivery(mesh_fabric):
    _system, fabric = mesh_fabric
    delivered = attach_sinks(fabric)
    packet = send(fabric, 0, 1)
    fabric.sim.run_until_idle()
    assert [p.packet_id for p in delivered[1]] == [packet.packet_id]
    assert all(not packets for node, packets in delivered.items() if node != 1)


def test_multi_hop_delivery_crosses_the_mesh(mesh_fabric):
    system, fabric = mesh_fabric
    delivered = attach_sinks(fabric)
    packet = send(fabric, 0, 7)
    fabric.sim.run_until_idle()
    assert len(delivered[7]) == 1
    # The packet crossed as many links as the topology distance.
    assert delivered[7][0].hops == system.topology.hop_count(0, 7)


def test_multi_hop_latency_exceeds_single_hop(mesh_fabric):
    _system, fabric = mesh_fabric
    attach_sinks(fabric)
    send(fabric, 0, 1)
    fabric.sim.run_until_idle()
    one_hop_time = fabric.sim.now

    system2 = VeniceSystem.build(VeniceConfig())
    fabric2 = system2.build_event_fabric()
    attach_sinks(fabric2)
    send(fabric2, 0, 7)
    fabric2.sim.run_until_idle()
    assert fabric2.sim.now > one_hop_time


def test_all_pairs_are_reachable(mesh_fabric):
    _system, fabric = mesh_fabric
    delivered = attach_sinks(fabric)
    expected = 0
    for src in fabric.switches:
        for dst in fabric.switches:
            if src != dst:
                send(fabric, src, dst, payload=16)
                expected += 1
    fabric.sim.run_until_idle()
    assert sum(len(packets) for packets in delivered.values()) == expected


def test_burst_respects_flow_control_and_delivers_everything(mesh_fabric):
    _system, fabric = mesh_fabric
    delivered = attach_sinks(fabric)
    burst = 64
    for index in range(burst):
        send(fabric, 0, 7, payload=128)
    fabric.sim.run_until_idle()
    assert len(delivered[7]) == burst
    # Flow control must have engaged on the first-hop datalink.
    first_hop = fabric.datalinks[(0, 1)]
    alternate = fabric.datalinks.get((0, 2)), fabric.datalinks.get((0, 4))
    stalls = first_hop.credits.stall_count + sum(
        dl.credits.stall_count for dl in alternate if dl is not None)
    assert stalls >= 0  # never negative; engagement depends on routing
    # No packet was lost to buffer overflow anywhere.
    for datalink in fabric.datalinks.values():
        assert datalink.stats.counter("buffer_overflows").value == 0


def test_bidirectional_traffic(mesh_fabric):
    _system, fabric = mesh_fabric
    delivered = attach_sinks(fabric)
    for _ in range(10):
        send(fabric, 0, 7)
        send(fabric, 7, 0)
    fabric.sim.run_until_idle()
    assert len(delivered[0]) == 10
    assert len(delivered[7]) == 10
