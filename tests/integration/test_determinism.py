"""Determinism regression guard for the fast-path engine rewrite.

The engine optimisations (fused dispatch loop, ready-queue fast path,
callback-chain sends) must preserve event ordering exactly: the same
``DeterministicRNG`` seed over the same fleet has to produce
byte-identical statistics, run after run.  These tests drive a 16-node
star sweep over the full event fabric -- the heaviest deterministic
workload in the suite -- and compare canonical JSON dumps of every
component's statistics between two independent executions.
"""

from repro.cluster import Cluster, ClusterConfig
from repro.experiments.fig_cluster_contention import (
    ClusterContentionConfig,
    _FabricRun,
    _probe_plan,
    run_fig_cluster_contention,
)
from repro.sim.rng import DeterministicRNG

STAR16 = ClusterContentionConfig(
    node_counts=(16,),
    topology="star",
    probes_per_node=2,
    cross_traffic_per_node=6,
)


def star16_dump(seed: int, contended: bool = True) -> str:
    cluster = Cluster(ClusterConfig(num_nodes=16, topology="star"))
    probes = _probe_plan(cluster, STAR16, DeterministicRNG(seed))
    run = _FabricRun(cluster, STAR16, probes, contended=contended,
                     rng=DeterministicRNG(seed))
    return run.stats_dump()


def test_same_seed_star16_sweep_is_byte_identical():
    first = star16_dump(seed=7)
    second = star16_dump(seed=7)
    assert first == second


def test_same_seed_star16_uncontended_is_byte_identical():
    assert star16_dump(seed=7, contended=False) == star16_dump(
        seed=7, contended=False)


def test_different_seed_changes_the_sweep():
    # Sanity check that the dump actually captures the traffic pattern
    # (otherwise the byte-identity assertions above would be vacuous).
    assert star16_dump(seed=7) != star16_dump(seed=8)


def test_contention_report_is_reproducible():
    config = ClusterContentionConfig(node_counts=(2, 4), probes_per_node=2,
                                     cross_traffic_per_node=4)
    first = run_fig_cluster_contention(config)
    second = run_fig_cluster_contention(config)
    assert first.series == second.series
