"""Determinism regression guard for the fast-path engine rewrite.

The engine optimisations (fused dispatch loop, ready-queue fast path,
callback-chain receive path, calendar-queue scheduler, batched credit
returns) must preserve event ordering exactly: the same
``DeterministicRNG`` seed over the same fleet has to produce
byte-identical statistics, run after run -- and **across timer
backends**: the calendar queue dispatches in exactly the same
(time, seq) order as the binary heap, so their stats dumps must match
byte for byte too.  These tests drive a 16-node star sweep over the
full event fabric -- the heaviest deterministic workload in the suite
-- and compare canonical JSON dumps of every component's statistics.
"""

from dataclasses import replace

from repro.cluster import Cluster, ClusterConfig
from repro.experiments.fig_cluster_contention import (
    ClusterContentionConfig,
    _FabricRun,
    _probe_plan,
    run_fig_cluster_contention,
)
from repro.sim.rng import DeterministicRNG

STAR16 = ClusterContentionConfig(
    node_counts=(16,),
    topology="star",
    probes_per_node=2,
    cross_traffic_per_node=6,
)


def star16_dump(seed: int, contended: bool = True, scheduler: str = "auto",
                closed_loop: bool = False) -> str:
    config = replace(STAR16, scheduler=scheduler, closed_loop=closed_loop)
    cluster = Cluster(ClusterConfig(num_nodes=16, topology="star"))
    probes = _probe_plan(cluster, config, DeterministicRNG(seed))
    run = _FabricRun(cluster, config, probes, contended=contended,
                     rng=DeterministicRNG(seed))
    return run.stats_dump()


def test_same_seed_star16_sweep_is_byte_identical():
    first = star16_dump(seed=7)
    second = star16_dump(seed=7)
    assert first == second


def test_same_seed_star16_uncontended_is_byte_identical():
    assert star16_dump(seed=7, contended=False) == star16_dump(
        seed=7, contended=False)


def test_heap_and_calendar_backends_are_byte_identical():
    # The calendar queue must preserve exact (time, seq) dispatch order:
    # the same seed under either backend yields the same stats dump.
    heap = star16_dump(seed=7, scheduler="heap")
    calendar = star16_dump(seed=7, scheduler="calendar")
    assert heap == calendar


def test_heap_and_calendar_backends_identical_uncontended():
    assert star16_dump(seed=7, contended=False, scheduler="heap") == \
        star16_dump(seed=7, contended=False, scheduler="calendar")


def test_heap_and_calendar_backends_identical_closed_loop():
    heap = star16_dump(seed=7, scheduler="heap", closed_loop=True)
    calendar = star16_dump(seed=7, scheduler="calendar", closed_loop=True)
    assert heap == calendar


def test_same_seed_closed_loop_is_byte_identical():
    first = star16_dump(seed=7, closed_loop=True)
    second = star16_dump(seed=7, closed_loop=True)
    assert first == second


def test_closed_loop_differs_from_open_loop():
    # The responses double the traffic, so the dumps must differ.
    assert star16_dump(seed=7) != star16_dump(seed=7, closed_loop=True)


def test_different_seed_changes_the_sweep():
    # Sanity check that the dump actually captures the traffic pattern
    # (otherwise the byte-identity assertions above would be vacuous).
    assert star16_dump(seed=7) != star16_dump(seed=8)


def test_contention_report_is_reproducible():
    config = ClusterContentionConfig(node_counts=(2, 4), probes_per_node=2,
                                     cross_traffic_per_node=4)
    first = run_fig_cluster_contention(config)
    second = run_fig_cluster_contention(config)
    assert first.series == second.series


def test_closed_loop_report_is_reproducible():
    config = ClusterContentionConfig(node_counts=(2, 4), probes_per_node=2,
                                     cross_traffic_per_node=4,
                                     closed_loop=True)
    first = run_fig_cluster_contention(config)
    second = run_fig_cluster_contention(config)
    assert first.series == second.series
