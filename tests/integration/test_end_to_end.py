"""End-to-end scenarios across the whole library.

These tests walk the complete Venice story: the runtime allocates a
remote resource, the sharing layer sets it up, a workload runs against
it, and the outcome is compared against sensible alternatives -- the
same flows the example programs demonstrate.
"""

import pytest

from repro.core.config import VeniceConfig
from repro.core.sharing.remote_accelerator import (
    AcceleratorPool,
    LocalAcceleratorTarget,
    RemoteAcceleratorTarget,
)
from repro.core.sharing.remote_nic import RemoteNicSharing
from repro.core.system import VeniceSystem
from repro.mem.swap import LocalDiskSwapDevice, SwapConfig, SwapManager
from repro.runtime.tables import ResourceKind
from repro.workloads.fft_offload import FftOffloadConfig, FftOffloadWorkload
from repro.workloads.kvstore import KeyValueConfig, KeyValueWorkload

MB = 1024 * 1024


@pytest.fixture()
def system():
    return VeniceSystem.build(VeniceConfig())


def test_remote_memory_end_to_end_beats_swapping(system):
    """Borrowing remote memory via CRMA beats paging to local storage."""
    dataset = 8 * MB
    workload_config = KeyValueConfig(dataset_bytes=dataset, num_queries=1_500, seed=9)

    # Venice path: ask the Monitor Node for memory, hot-plug it, run.
    allocation, grant = system.request_remote_memory(requester=0, size_bytes=dataset)
    recipient = system.node(0)
    hierarchy = recipient.build_hierarchy(
        remote_backend=system.remote_backend_for(grant))
    # Run the workload inside the borrowed region.
    offset = grant.recipient_base
    venice_core = recipient.build_core(hierarchy)
    venice_core.stall(0)
    workload = KeyValueWorkload(workload_config)
    # Shift accesses into the borrowed window by pre-touching nothing;
    # the workload's addresses are interpreted relative to the node's
    # address space, so map them through a simple offset adapter.
    for _ in range(200):
        venice_core.read(offset + (_ * 4096) % dataset)
    venice_time = venice_core.result().total_time_ns / 200

    # Conventional path: the same accesses against local-disk swap, run
    # on an identical node that did not borrow memory.
    conventional = system.node(7)
    swap_core = conventional.build_core(conventional.build_hierarchy(
        swap=SwapManager(SwapConfig(resident_frames=64), LocalDiskSwapDevice())))
    top_of_memory = conventional.memory_map.local_capacity()
    for index in range(200):
        swap_core.read(top_of_memory + (index * 4096) % dataset)
    swap_time = swap_core.result().total_time_ns / 200

    assert venice_time < swap_time
    assert allocation.record.kind is ResourceKind.MEMORY
    system.release_remote_memory(allocation, grant)


def test_memory_allocation_respects_donor_capacity(system):
    """Repeated requests exhaust nearby donors and fall back to farther ones."""
    hops = []
    for _ in range(5):
        allocation, _grant = system.request_remote_memory(
            requester=0, size_bytes=768 * MB)
        hops.append(allocation.hops)
    # Node 0 has three one-hop neighbours, each able to donate 768 MB of
    # its 1 GB once; the fourth and fifth requests must travel farther.
    assert hops[:3] == [1, 1, 1]
    assert max(hops) >= 2
    assert hops == sorted(hops)


def test_accelerator_pool_end_to_end(system):
    """Runtime allocation of remote accelerators feeding the FFT workload."""
    requester = system.node(0)
    targets = [LocalAcceleratorTarget(requester.primary_accelerator(),
                                      dram=requester.dram)]
    allocations = []
    for _ in range(3):
        allocation = system.monitor.request_accelerator(requester=0)
        allocations.append(allocation)
        donor = system.node(allocation.donor)
        targets.append(RemoteAcceleratorTarget(
            accelerator=donor.primary_accelerator(),
            mailbox=donor.mailboxes[0],
            rdma=system.rdma_channel(0, allocation.donor),
            crma=system.crma_channel(0, allocation.donor),
        ))
    pool = AcceleratorPool(targets)
    assert pool.remote_count == 3

    config = FftOffloadConfig(dataset_bytes=8 * MB, block_bytes=512 * 1024)
    single = FftOffloadWorkload(config, targets=[targets[0]]).run(
        requester.build_core()).total_time_ns
    pooled = FftOffloadWorkload(config, targets=list(pool)).run(
        requester.build_core()).total_time_ns
    assert pooled < single
    for allocation in allocations:
        system.monitor.release(allocation)
    assert system.monitor.rat.active() == []


def test_remote_nic_end_to_end(system):
    """Runtime allocation of remote NICs and bonded throughput."""
    sharing = RemoteNicSharing(local_nic=system.node(0).primary_nic())
    for _ in range(2):
        allocation = system.monitor.request_nic(requester=0)
        donor = system.node(allocation.donor)
        sharing.attach_remote_nic(donor.primary_nic(),
                                  qpair=system.qpair_channel(0, allocation.donor))
    bond = sharing.bonded_interface()
    local_only = system.node(0).primary_nic().throughput_gbps(256)
    assert bond.throughput_gbps(256) > 1.5 * local_only


def test_runtime_survives_release_and_reallocate_cycles(system):
    for _ in range(5):
        allocation, grant = system.request_remote_memory(requester=2,
                                                         size_bytes=128 * MB)
        system.release_remote_memory(allocation, grant)
    assert system.monitor.rat.active() == []
    assert system.node(2).borrowed_memory_bytes == 0
    # The donors' capacity is fully restored.
    total_donated = sum(node.donated_memory_bytes for node in system.nodes.values())
    assert total_donated == 0
