"""Unit tests for the NIC, bridge and bonding substrate."""

import pytest

from repro.nic.bonding import BondedInterface, BondingError
from repro.nic.bridge import BridgeConfig, SoftwareBridge
from repro.nic.nic import MIN_PAYLOAD_BYTES, Nic, NicConfig


# ----------------------------------------------------------------------
# NIC
# ----------------------------------------------------------------------
def test_wire_bytes_pad_small_frames():
    nic = Nic()
    assert nic.wire_bytes(4) == nic.wire_bytes(MIN_PAYLOAD_BYTES)
    assert nic.wire_bytes(256) > nic.wire_bytes(64)


def test_packet_time_small_packets_not_wire_limited():
    nic = Nic(NicConfig(line_rate_gbps=10.0, per_packet_overhead_ns=600))
    # At 10 Gbps a tiny frame serialises in well under the host overhead.
    assert nic.packet_time_ns(4) == pytest.approx(625, abs=30)


def test_throughput_increases_with_payload():
    nic = Nic()
    assert nic.throughput_gbps(256) > nic.throughput_gbps(4)


def test_line_rate_utilization_bounds():
    nic = Nic()
    for payload in (4, 64, 256, 1400):
        utilization = nic.line_rate_utilization(payload)
        assert 0.0 < utilization <= 1.0


def test_extra_per_packet_cost_reduces_throughput():
    nic = Nic()
    assert nic.throughput_gbps(256, extra_per_packet_ns=5000) < nic.throughput_gbps(256)


def test_nic_invalid_inputs():
    with pytest.raises(ValueError):
        NicConfig(line_rate_gbps=0)
    with pytest.raises(ValueError):
        Nic().packet_time_ns(-1)


# ----------------------------------------------------------------------
# Bridge
# ----------------------------------------------------------------------
def test_bridge_cost_grows_with_payload():
    bridge = SoftwareBridge()
    assert bridge.forward_cost_ns(1024) > bridge.forward_cost_ns(4)
    assert bridge.stats.counter("packets_forwarded").value == 2


def test_bridge_invalid_config_and_payload():
    with pytest.raises(ValueError):
        BridgeConfig(per_packet_forward_ns=-1)
    with pytest.raises(ValueError):
        SoftwareBridge().forward_cost_ns(-1)


# ----------------------------------------------------------------------
# Bonding
# ----------------------------------------------------------------------
def test_bond_aggregates_member_throughput():
    members = [Nic(), Nic(), Nic()]
    bond = BondedInterface(members)
    single = Nic().throughput_gbps(256)
    assert bond.throughput_gbps(256) == pytest.approx(3 * single, rel=0.01)
    assert bond.member_count == 3


def test_bond_speedup_over_single_nic():
    bond = BondedInterface([Nic(), Nic()])
    assert bond.speedup_over(Nic(), 256) == pytest.approx(2.0, rel=0.01)


def test_bond_utilization_of_identical_members():
    bond = BondedInterface([Nic(), Nic()])
    assert bond.line_rate_utilization(256) == pytest.approx(
        Nic().line_rate_utilization(256), rel=0.01)


def test_bond_requires_members():
    with pytest.raises(BondingError):
        BondedInterface([])


def test_per_member_throughput_lists_every_member():
    bond = BondedInterface([Nic(), Nic(NicConfig(line_rate_gbps=10.0))])
    values = bond.per_member_throughput(256)
    assert len(values) == 2
    assert values[1] >= values[0]
