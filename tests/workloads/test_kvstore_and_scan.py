"""Unit tests for the key/value, grep and CC workload generators."""

import pytest

from repro.cpu.core import CpuConfig, TimingCore
from repro.cpu.hierarchy import MemoryHierarchy
from repro.mem.cache import Cache, CacheConfig
from repro.mem.memory_map import PhysicalMemoryMap
from repro.workloads.connected_components import (
    ConnectedComponentsConfig,
    ConnectedComponentsWorkload,
)
from repro.workloads.grep import GrepConfig, GrepWorkload
from repro.workloads.kvstore import (
    KeyValueConfig,
    KeyValueWorkload,
    TransactionalKeyValueWorkload,
)

MB = 1024 * 1024


def make_core():
    hierarchy = MemoryHierarchy(PhysicalMemoryMap(64 * MB),
                                cache=Cache(CacheConfig()), enable_prefetch=True)
    return TimingCore(hierarchy, CpuConfig())


def test_kvstore_runs_and_reports_mix():
    config = KeyValueConfig(dataset_bytes=1 * MB, num_queries=500, seed=5)
    result = KeyValueWorkload(config).run(make_core())
    assert result.total_time_ns > 0
    assert result.metric("queries") == 500
    assert result.metric("reads") + result.metric("writes") == 500
    # The 80/20 mix should be roughly respected.
    assert 0.7 < result.metric("read_fraction") < 0.9


def test_kvstore_accesses_every_line_of_a_record():
    config = KeyValueConfig(dataset_bytes=1 * MB, record_bytes=128, num_queries=50)
    result = KeyValueWorkload(config).run(make_core())
    # 128-byte records over 32-byte lines: 4 accesses per query.
    assert result.execution.accesses == 50 * 4


def test_kvstore_deterministic_given_seed():
    config = KeyValueConfig(dataset_bytes=1 * MB, num_queries=200, seed=7)
    first = KeyValueWorkload(config).run(make_core()).total_time_ns
    second = KeyValueWorkload(config).run(make_core()).total_time_ns
    assert first == second


def test_kvstore_per_query_overhead_increases_time():
    base_config = KeyValueConfig(dataset_bytes=1 * MB, num_queries=200, seed=3)
    slow_config = KeyValueConfig(dataset_bytes=1 * MB, num_queries=200, seed=3,
                                 per_query_overhead_ns=10_000)
    fast = KeyValueWorkload(base_config).run(make_core()).total_time_ns
    slow = KeyValueWorkload(slow_config).run(make_core()).total_time_ns
    assert slow >= fast + 200 * 10_000


def test_kvstore_config_validation():
    with pytest.raises(ValueError):
        KeyValueConfig(dataset_bytes=0)
    with pytest.raises(ValueError):
        KeyValueConfig(read_fraction=1.5)


def test_transactional_kvstore_counts_transactions():
    config = KeyValueConfig(dataset_bytes=1 * MB, num_queries=100)
    result = TransactionalKeyValueWorkload(config, queries_per_transaction=5).run(make_core())
    assert result.metric("transactions") == 20
    assert result.metric("queries") == 100


def test_grep_scans_whole_dataset_sequentially():
    config = GrepConfig(dataset_bytes=1 * MB, record_bytes=128, stride_records=1)
    result = GrepWorkload(config).run(make_core())
    assert result.metric("records_scanned") == config.num_records
    assert result.metric("bytes_scanned") == config.dataset_bytes


def test_grep_stride_reduces_work():
    full = GrepWorkload(GrepConfig(dataset_bytes=1 * MB)).run(make_core())
    strided = GrepWorkload(GrepConfig(dataset_bytes=1 * MB, stride_records=4)).run(make_core())
    assert strided.metric("records_scanned") < full.metric("records_scanned")
    assert strided.total_time_ns < full.total_time_ns


def test_grep_benefits_from_prefetcher_on_remote_data():
    from repro.core.channels.crma import CrmaChannel, CrmaRemoteBackend

    config = GrepConfig(dataset_bytes=1 * MB)

    def run(prefetch):
        memory_map = PhysicalMemoryMap(4096)
        memory_map.hot_plug_remote(64 * MB, donor_node=1, donor_base=0)
        hierarchy = MemoryHierarchy(memory_map, cache=Cache(CacheConfig()),
                                    remote_backend=CrmaRemoteBackend(CrmaChannel()),
                                    enable_prefetch=prefetch)
        return GrepWorkload(config).run(TimingCore(hierarchy)).total_time_ns

    # Streaming over remote memory pipelines behind the prefetcher.
    assert run(True) < 0.6 * run(False)


def test_cc_processes_every_edge_each_iteration():
    config = ConnectedComponentsConfig(num_vertices=256, num_edges=1000, iterations=3)
    result = ConnectedComponentsWorkload(config).run(make_core())
    assert result.metric("edges_processed") == 3000
    assert result.metric("iterations") == 3


def test_cc_dataset_size_accounts_for_edges_and_labels():
    config = ConnectedComponentsConfig(num_vertices=256, num_edges=1000)
    assert config.dataset_bytes == 1000 * 8 + 256 * 8


def test_cc_validation():
    with pytest.raises(ValueError):
        ConnectedComponentsConfig(num_vertices=0)
