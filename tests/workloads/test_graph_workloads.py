"""Unit tests for R-MAT generation, Graph500 BFS and PageRank."""

import pytest

from repro.cpu.core import CpuConfig, TimingCore
from repro.cpu.hierarchy import MemoryHierarchy
from repro.mem.cache import Cache, CacheConfig
from repro.mem.memory_map import PhysicalMemoryMap
from repro.workloads.graph500 import Graph500Config, Graph500Workload
from repro.workloads.pagerank import PageRankConfig, PageRankWorkload
from repro.workloads.rmat import RmatConfig, RmatGenerator

MB = 1024 * 1024


def make_core(max_outstanding=16):
    hierarchy = MemoryHierarchy(PhysicalMemoryMap(256 * MB),
                                cache=Cache(CacheConfig()))
    return TimingCore(hierarchy, CpuConfig(max_outstanding=max_outstanding))


# ----------------------------------------------------------------------
# R-MAT
# ----------------------------------------------------------------------
def test_rmat_edge_count_and_vertex_range():
    config = RmatConfig(scale=8, edge_factor=4, seed=1)
    edges = RmatGenerator(config).generate()
    assert len(edges) == config.num_edges == 256 * 4
    assert all(0 <= src < 256 and 0 <= dst < 256 for src, dst in edges)


def test_rmat_is_deterministic():
    assert RmatGenerator(RmatConfig(scale=6, seed=3)).generate() == \
           RmatGenerator(RmatConfig(scale=6, seed=3)).generate()


def test_rmat_degree_distribution_is_skewed():
    config = RmatConfig(scale=10, edge_factor=8, seed=2)
    generator = RmatGenerator(config)
    degrees = generator.degree_histogram(generator.generate())
    mean_degree = sum(degrees) / len(degrees)
    assert max(degrees) > 5 * mean_degree


def test_rmat_validation():
    with pytest.raises(ValueError):
        RmatConfig(scale=0)
    with pytest.raises(ValueError):
        RmatConfig(a=0.5, b=0.4, c=0.2)
    with pytest.raises(ValueError):
        RmatGenerator().generate(-1)


# ----------------------------------------------------------------------
# Graph500 BFS
# ----------------------------------------------------------------------
def test_graph500_traverses_edges():
    config = Graph500Config(scale=7, edge_factor=4, num_roots=1)
    result = Graph500Workload(config).run(make_core())
    assert result.metric("edges_traversed") > 0
    assert result.metric("vertices_visited") > 1
    assert result.total_time_ns > 0


def test_graph500_more_roots_more_work():
    one = Graph500Workload(Graph500Config(scale=7, num_roots=1)).run(make_core())
    two = Graph500Workload(Graph500Config(scale=7, num_roots=2)).run(make_core())
    assert two.metric("vertices_visited") > one.metric("vertices_visited")


def test_graph500_dataset_size():
    config = Graph500Config(scale=8, edge_factor=4)
    assert config.dataset_bytes == (256 * 8 * 2) + (256 * 4 * 8)


def test_graph500_validation():
    with pytest.raises(ValueError):
        Graph500Config(scale=0)


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def test_pagerank_processes_all_edges():
    config = PageRankConfig(num_vertices=512, num_edges=2000, iterations=2)
    result = PageRankWorkload(config).run(make_core())
    assert result.metric("edges_processed") == 4000


def test_pagerank_async_is_not_slower_than_sync_for_remote_data():
    from repro.core.channels.crma import CrmaRemoteBackend
    from repro.core.channels.path import FabricPath
    from repro.core.channels.crma import CrmaChannel

    def core():
        memory_map = PhysicalMemoryMap(4096)
        memory_map.hot_plug_remote(64 * MB, donor_node=1, donor_base=0)
        backend = CrmaRemoteBackend(CrmaChannel(path=FabricPath()))
        hierarchy = MemoryHierarchy(memory_map, cache=Cache(CacheConfig()),
                                    remote_backend=backend)
        return TimingCore(hierarchy, CpuConfig(max_outstanding=16))

    sync_config = PageRankConfig(num_vertices=512, num_edges=3000, asynchronous=False)
    async_config = PageRankConfig(num_vertices=512, num_edges=3000, asynchronous=True)
    sync_time = PageRankWorkload(sync_config).run(core()).total_time_ns
    async_time = PageRankWorkload(async_config).run(core()).total_time_ns
    assert async_time < sync_time


def test_pagerank_per_access_overhead_adds_cost():
    base = PageRankWorkload(PageRankConfig(num_vertices=256, num_edges=1000)).run(
        make_core()).total_time_ns
    with_overhead = PageRankWorkload(PageRankConfig(
        num_vertices=256, num_edges=1000, per_access_overhead_ns=2000)).run(
        make_core()).total_time_ns
    assert with_overhead > base + 1000 * 2000 - 1


def test_pagerank_dataset_size_and_validation():
    config = PageRankConfig(num_vertices=100, num_edges=400)
    assert config.dataset_bytes == 400 * 8 + 2 * 100 * 8
    with pytest.raises(ValueError):
        PageRankConfig(num_edges=0)
