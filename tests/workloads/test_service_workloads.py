"""Unit tests for the Redis-cache service, FFT offload and iPerf workloads."""

import pytest

from repro.accel.device import FftAccelerator
from repro.cpu.core import TimingCore
from repro.cpu.hierarchy import MemoryHierarchy
from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import Dram
from repro.mem.memory_map import PhysicalMemoryMap
from repro.core.sharing.remote_accelerator import LocalAcceleratorTarget
from repro.nic.nic import Nic, NicConfig
from repro.workloads.fft_offload import FftOffloadConfig, FftOffloadWorkload
from repro.workloads.iperf import IperfConfig, IperfWorkload
from repro.workloads.rediscache import (
    MysqlBackingStore,
    RedisCacheConfig,
    RedisCacheWorkload,
)

MB = 1024 * 1024


def make_core():
    hierarchy = MemoryHierarchy(PhysicalMemoryMap(512 * MB),
                                cache=Cache(CacheConfig()))
    return TimingCore(hierarchy)


# ----------------------------------------------------------------------
# Redis cache + MySQL backing store
# ----------------------------------------------------------------------
def test_rediscache_miss_rate_tracks_capacity():
    small = RedisCacheConfig(cache_capacity_bytes=1 * MB, key_space=50_000,
                             record_bytes=256, num_queries=2_000, seed=1)
    large = RedisCacheConfig(cache_capacity_bytes=8 * MB, key_space=50_000,
                             record_bytes=256, num_queries=2_000, seed=1)
    small_result = RedisCacheWorkload(small).run(make_core())
    large_result = RedisCacheWorkload(large).run(make_core())
    assert small_result.metric("miss_rate") > large_result.metric("miss_rate")
    # Uniform random queries: miss rate roughly 1 - capacity/key-space.
    expected = 1 - (small.cache_capacity_records / small.key_space)
    assert small_result.metric("miss_rate") == pytest.approx(expected, abs=0.05)


def test_rediscache_misses_dominate_execution_time():
    config = RedisCacheConfig(cache_capacity_bytes=1 * MB, key_space=50_000,
                              record_bytes=256, num_queries=1_000, seed=2)
    backing = MysqlBackingStore(miss_latency_ns=5_000_000)
    result = RedisCacheWorkload(config, backing_store=backing).run(make_core())
    miss_time = result.metric("misses") * backing.query_latency_ns()
    assert miss_time > 0.8 * result.total_time_ns


def test_rediscache_cold_cache_misses_more():
    config = RedisCacheConfig(cache_capacity_bytes=4 * MB, key_space=20_000,
                              record_bytes=256, num_queries=1_000, seed=3)
    warm = RedisCacheWorkload(config, warm=True).run(make_core())
    cold = RedisCacheWorkload(config, warm=False).run(make_core())
    assert cold.metric("miss_rate") > warm.metric("miss_rate")


def test_rediscache_validation():
    with pytest.raises(ValueError):
        RedisCacheConfig(cache_capacity_bytes=0)


# ----------------------------------------------------------------------
# FFT offload
# ----------------------------------------------------------------------
def local_target():
    return LocalAcceleratorTarget(FftAccelerator(), dram=Dram())


def test_fft_offload_dispatches_every_block():
    config = FftOffloadConfig(dataset_bytes=4 * MB, block_bytes=512 * 1024)
    workload = FftOffloadWorkload(config, targets=[local_target()])
    result = workload.run(make_core())
    assert result.metric("blocks_dispatched") == 8
    assert result.total_time_ns > 0


def test_fft_offload_scales_with_targets():
    config = FftOffloadConfig(dataset_bytes=8 * MB, block_bytes=512 * 1024)
    one = FftOffloadWorkload(config, targets=[local_target()]).run(make_core())
    four = FftOffloadWorkload(config, targets=[local_target() for _ in range(4)]).run(
        make_core())
    assert four.total_time_ns < one.total_time_ns
    speedup = one.total_time_ns / four.total_time_ns
    assert speedup > 2.5


def test_fft_offload_requires_targets_and_valid_sizes():
    with pytest.raises(ValueError):
        FftOffloadWorkload(FftOffloadConfig(), targets=[])
    with pytest.raises(ValueError):
        FftOffloadConfig(dataset_bytes=1024, block_bytes=4096)


# ----------------------------------------------------------------------
# iPerf
# ----------------------------------------------------------------------
def test_iperf_measures_all_payload_sizes():
    iperf = IperfWorkload(IperfConfig(payload_sizes=(4, 64, 256)))
    nic = Nic()
    throughput = iperf.measure(nic)
    assert set(throughput) == {4, 64, 256}
    assert throughput[256] > throughput[4]


def test_iperf_utilization_and_speedup():
    iperf = IperfWorkload(IperfConfig(payload_sizes=(256,)))
    fast = Nic(NicConfig(line_rate_gbps=10.0))
    slow = Nic(NicConfig(line_rate_gbps=1.0))
    assert iperf.speedup_over(fast, slow)[256] > 1.0
    assert 0 < iperf.measure_utilization(slow)[256] <= 1.0


def test_iperf_validation():
    with pytest.raises(ValueError):
        IperfConfig(payload_sizes=())
    with pytest.raises(ValueError):
        IperfConfig(payload_sizes=(0,))
