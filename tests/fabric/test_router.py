"""Unit tests for the external router model."""

import pytest

from repro.fabric.packet import Packet, PacketKind
from repro.fabric.router import ExternalRouter, RouterConfig
from repro.fabric.phy import LinkConfig, PhysicalLink


def make_packet(dst):
    return Packet(src=0, dst=dst, kind=PacketKind.CRMA_READ, payload_bytes=64)


def test_router_forwards_to_attached_node(sim):
    router = ExternalRouter(sim)
    received = []
    router.attach_node(1, received.append)
    router.receive(make_packet(dst=1))
    sim.run_until_idle()
    assert len(received) == 1
    assert router.stats.counter("packets_forwarded").value == 1


def test_router_drops_unattached_destination(sim):
    router = ExternalRouter(sim)
    router.attach_node(1, lambda packet: None)
    router.receive(make_packet(dst=9))
    sim.run_until_idle()
    assert router.stats.counter("packets_unroutable").value == 1


def test_router_adds_forwarding_and_phy_latency(sim):
    config = RouterConfig(forwarding_latency_ns=500, link=LinkConfig())
    router = ExternalRouter(sim, config)
    arrivals = []
    router.attach_node(1, lambda packet: arrivals.append(sim.now))
    packet = make_packet(dst=1)
    router.receive(packet)
    sim.run_until_idle()
    expected_min = 500 + config.link.phy_latency_ns
    assert arrivals[0] >= expected_min


def test_added_latency_estimate_positive_and_size_dependent(sim):
    router_config = RouterConfig()
    router = ExternalRouter(sim, router_config)
    small = router.added_latency_ns(64)
    large = router.added_latency_ns(4096)
    assert small > router_config.forwarding_latency_ns
    assert large > small


def test_router_tracks_attached_nodes(sim):
    router = ExternalRouter(sim)
    router.attach_node(1, lambda packet: None)
    router.attach_node(2, lambda packet: None)
    assert router.attached_nodes == 2


def test_relay_between_two_nodes_via_uplinks(sim):
    """Model the Figure 6 setup: two nodes joined only through the router."""
    router = ExternalRouter(sim)
    received_at_b = []
    router.attach_node(1, received_at_b.append)
    uplink_a = PhysicalLink(sim, LinkConfig(), name="a->router")
    uplink_a.connect(router.receive)
    uplink_a.send(make_packet(dst=1))
    sim.run_until_idle()
    assert len(received_at_b) == 1
    # The packet crossed two PHYs plus the router, so end-to-end latency
    # exceeds a single direct link traversal.
    direct = LinkConfig().packet_latency_ns(make_packet(dst=1).wire_bytes)
    assert sim.now > direct
