"""Unit tests for the external router model."""

import pytest

from repro.fabric.packet import Packet, PacketKind
from repro.fabric.router import ExternalRouter, RouterConfig
from repro.fabric.phy import LinkConfig, PhysicalLink


def make_packet(dst):
    return Packet(src=0, dst=dst, kind=PacketKind.CRMA_READ, payload_bytes=64)


def test_router_forwards_to_attached_node(sim):
    router = ExternalRouter(sim)
    received = []
    router.attach_node(1, received.append)
    router.receive(make_packet(dst=1))
    sim.run_until_idle()
    assert len(received) == 1
    assert router.stats.counter("packets_forwarded").value == 1


def test_router_drops_unattached_destination(sim):
    router = ExternalRouter(sim)
    router.attach_node(1, lambda packet: None)
    router.receive(make_packet(dst=9))
    sim.run_until_idle()
    assert router.stats.counter("packets_unroutable").value == 1


def test_router_adds_forwarding_and_phy_latency(sim):
    config = RouterConfig(forwarding_latency_ns=500, link=LinkConfig())
    router = ExternalRouter(sim, config)
    arrivals = []
    router.attach_node(1, lambda packet: arrivals.append(sim.now))
    packet = make_packet(dst=1)
    router.receive(packet)
    sim.run_until_idle()
    expected_min = 500 + config.link.phy_latency_ns
    assert arrivals[0] >= expected_min


def test_added_latency_estimate_positive_and_size_dependent(sim):
    router_config = RouterConfig()
    router = ExternalRouter(sim, router_config)
    small = router.added_latency_ns(64)
    large = router.added_latency_ns(4096)
    assert small > router_config.forwarding_latency_ns
    assert large > small


def test_router_tracks_attached_nodes(sim):
    router = ExternalRouter(sim)
    router.attach_node(1, lambda packet: None)
    router.attach_node(2, lambda packet: None)
    assert router.attached_nodes == 2


def test_relay_between_two_nodes_via_uplinks(sim):
    """Model the Figure 6 setup: two nodes joined only through the router."""
    router = ExternalRouter(sim)
    received_at_b = []
    router.attach_node(1, received_at_b.append)
    uplink_a = PhysicalLink(sim, LinkConfig(), name="a->router")
    uplink_a.connect(router.receive)
    uplink_a.send(make_packet(dst=1))
    sim.run_until_idle()
    assert len(received_at_b) == 1
    # The packet crossed two PHYs plus the router, so end-to-end latency
    # exceeds a single direct link traversal.
    direct = LinkConfig().packet_latency_ns(make_packet(dst=1).wire_bytes)
    assert sim.now > direct


# ----------------------------------------------------------------------
# Clean-hop fold (forwarding + downlink serialization in one event)
# ----------------------------------------------------------------------
def test_clean_hop_fold_costs_two_events_past_ingress(sim):
    """Idle router + idle downlink: fused_complete -> deliver, nothing
    else.  Counting the upstream delivery event that invoked receive(),
    a clean hop through the router is 3 events (the unfused chain spent
    a fourth on the _forward hand-off)."""
    router = ExternalRouter(sim)
    received = []
    router.attach_node(1, received.append)
    router.receive(make_packet(dst=1))
    sim.run_until_idle()
    assert received and sim.events_processed == 2
    assert router.stats.counter("packets_forwarded").value == 1


def test_fold_timing_matches_component_delays(sim):
    config = RouterConfig()
    router = ExternalRouter(sim, config)
    arrivals = []
    router.attach_node(1, lambda packet: arrivals.append(sim.now))
    packet = make_packet(dst=1)
    router.receive(packet)
    sim.run_until_idle()
    link = config.link
    expected = (config.forwarding_latency_ns
                + link.serialization_ns(packet.wire_bytes)
                + link.phy_latency_ns + link.extra_delay_ns)
    assert arrivals == [expected]


def test_busy_pipeline_keeps_unfused_chain_and_order(sim):
    """The second of two back-to-back packets finds the pipeline busy:
    it queues and takes the two-event _forward chain (5 events total
    for the pair: 2 fused + ingress _forward + _tx_complete +
    _deliver)."""
    router = ExternalRouter(sim)
    received = []
    router.attach_node(1, received.append)
    first, second = make_packet(dst=1), make_packet(dst=1)
    router.receive(first)
    router.receive(second)
    sim.run_until_idle()
    assert received == [first, second]
    assert sim.events_processed == 5
    assert router.stats.counter("packets_forwarded").value == 2


def test_fold_settles_downlink_counters_at_enqueue(sim):
    router = ExternalRouter(sim)
    router.attach_node(1, lambda packet: None)
    packet = make_packet(dst=1)
    router.receive(packet)
    # The reservation accounts the offer and busy time synchronously,
    # exactly like the unfused offer() would have.
    downlink = router._downlinks[1]
    serialization = downlink.config.serialization_ns(packet.wire_bytes)
    assert downlink.stats.counter("packets_offered").value == 1
    assert downlink.stats.counter("busy_ns").value == serialization
    sim.run_until_idle()
    assert downlink.stats.counter("packets_sent").value == 1


def test_unroutable_packet_still_takes_forward_chain(sim):
    router = ExternalRouter(sim)
    router.attach_node(1, lambda packet: None)
    router.receive(make_packet(dst=9))
    sim.run_until_idle()
    # No downlink to fold into: the packet pays the _forward event and
    # is counted unroutable there.
    assert router.stats.counter("packets_unroutable").value == 1
    assert sim.events_processed == 1
