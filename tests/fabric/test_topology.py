"""Unit tests for topology builders and routing helpers."""

import pytest

from repro.fabric.topology import (
    Topology,
    build_direct_pair,
    build_fat_tree,
    build_mesh3d,
    build_star,
    dimension_order_route,
)


def test_direct_pair_has_one_link():
    topo = build_direct_pair()
    assert topo.nodes == [0, 1]
    assert topo.links == [(0, 1)]
    assert topo.hop_count(0, 1) == 1
    assert topo.diameter() == 1


def test_mesh3d_2x2x2_shape():
    topo = build_mesh3d((2, 2, 2))
    assert len(topo.nodes) == 8
    # Each node in a 2x2x2 mesh has exactly 3 neighbours.
    assert all(len(topo.neighbors(node)) == 3 for node in topo.nodes)
    assert len(topo.links) == 12
    assert topo.diameter() == 3


def test_mesh3d_hop_counts_follow_manhattan_distance():
    topo = build_mesh3d((2, 2, 2))
    # Node 0 = (0,0,0), node 7 = (1,1,1).
    assert topo.hop_count(0, 7) == 3
    assert topo.hop_count(0, 1) == 1
    assert topo.hop_count(0, 0) == 0


def test_mesh3d_larger_dimensions():
    topo = build_mesh3d((3, 2, 1))
    assert len(topo.nodes) == 6
    assert topo.is_connected()


def test_mesh3d_rejects_zero_dimension():
    with pytest.raises(ValueError):
        build_mesh3d((0, 2, 2))


def test_star_topology_routes_through_router():
    topo = build_star(4)
    assert len(topo.compute_nodes) == 4
    assert len(topo.router_nodes) == 1
    router = topo.router_nodes[0]
    assert topo.hop_count(0, 1) == 2
    assert topo.next_hop(0, 1) == router


def test_star_requires_two_nodes():
    with pytest.raises(ValueError):
        build_star(1)


def test_fat_tree_two_levels():
    topo = build_fat_tree(16, leaf_radix=4, num_spines=2)
    topo.validate()
    assert topo.compute_nodes == list(range(16))
    # Four leaves plus two spines.
    assert len(topo.router_nodes) == 6
    # Same-leaf pairs: two links, one router crossed.
    assert topo.hop_count(0, 1) == 2
    assert topo.router_crossings(0, 1) == 1
    # Cross-leaf pairs: four links through leaf -> spine -> leaf.
    assert topo.hop_count(0, 15) == 4
    assert topo.router_crossings(0, 15) == 3
    assert topo.router_crossings(0, 0) == 0


def test_fat_tree_single_leaf_has_no_spines():
    topo = build_fat_tree(3, leaf_radix=4)
    topo.validate()
    assert len(topo.router_nodes) == 1
    assert topo.hop_count(0, 2) == 2
    assert topo.diameter() == 2


def test_fat_tree_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        build_fat_tree(1)
    with pytest.raises(ValueError):
        build_fat_tree(8, leaf_radix=0)
    with pytest.raises(ValueError):
        build_fat_tree(8, num_spines=0)


def test_router_crossings_on_star():
    topo = build_star(4)
    assert topo.router_crossings(0, 1) == 1
    assert topo.router_crossings(0, 0) == 0


def test_next_hop_on_mesh():
    topo = build_mesh3d((2, 2, 2))
    path = topo.shortest_path(0, 7)
    assert path[0] == 0 and path[-1] == 7
    assert topo.next_hop(0, 7) == path[1]
    with pytest.raises(ValueError):
        topo.next_hop(3, 3)


def test_dimension_order_route_is_x_then_y_then_z():
    topo = build_mesh3d((2, 2, 2))
    route = dimension_order_route(topo, 0, 7)
    # 0=(0,0,0) -> 1=(1,0,0) -> 3=(1,1,0) -> 7=(1,1,1)
    assert route == [0, 1, 3, 7]


def test_dimension_order_route_trivial_and_fallback():
    topo = build_mesh3d((2, 2, 2))
    assert dimension_order_route(topo, 4, 4) == [4]
    star = build_star(3)
    assert dimension_order_route(star, 0, 1) == star.shortest_path(0, 1)


def test_validate_rejects_empty_and_disconnected():
    empty = Topology(name="empty")
    with pytest.raises(ValueError):
        empty.validate()
    disconnected = Topology(name="split")
    disconnected.graph.add_edge(0, 1)
    disconnected.graph.add_node(2)
    with pytest.raises(ValueError):
        disconnected.validate()
