"""Admin up/down state on physical links and switches (churn support).

An admin-downed link faults packets *in flight* at the delivery point:
they arrive corrupted and feed the real CRC/NAK replay machinery, so a
flap produces a genuine replay storm (and, past the replay budget, a
link fault with the consumed credit returned).  An admin-downed switch
drops everything it would have routed, counted so the transport's
packet-lifecycle audit still balances.
"""

from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink
from repro.sim.rng import DeterministicRNG


def build_datalink(sim, credits=4, max_replays=8):
    link = PhysicalLink(sim, LinkConfig(), rng=DeterministicRNG(1))
    datalink = DataLink(sim, link,
                        DataLinkConfig(credits=credits,
                                       max_replays=max_replays))
    return link, datalink


def make_packet(payload=256):
    return Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                  payload_bytes=payload)


# ----------------------------------------------------------------------
# Physical link admin state
# ----------------------------------------------------------------------
def test_link_starts_admin_up_and_toggles(sim):
    link, _datalink = build_datalink(sim)
    assert link.admin_up
    link.set_admin_down()
    assert not link.admin_up
    link.set_admin_up()
    assert link.admin_up


def test_admin_down_faults_packets_in_flight(sim):
    # The packet is already on the wire when the link goes down: it
    # still arrives (delivery is the corruption point), but corrupted,
    # so the datalink's CRC check catches it and requests a replay.
    # The replay budget is bumped so the outage cannot exhaust it
    # before the heal (abandonment is covered separately below).
    link, datalink = build_datalink(sim, max_replays=100_000)
    received = []
    datalink.connect(received.append)
    datalink.send_and_forget(make_packet())
    link.set_admin_down()
    sim.run(until=sim.now + 50_000)
    assert link.stats.counter("packets_faulted_admin_down").value > 0
    assert datalink.stats.counter("crc_errors").value > 0
    assert received == []
    # Heal: the pending replay finally crosses clean.
    link.set_admin_up()
    sim.run_until_idle()
    assert len(received) == 1


def test_sustained_outage_exhausts_replays_and_returns_the_credit(sim):
    # A flap longer than the whole replay budget: the sender abandons
    # the packet (link fault), and the credit it consumed must come
    # back -- otherwise every abandoned packet permanently shrinks the
    # window and a long churn campaign deadlocks the link.
    link, datalink = build_datalink(sim, credits=2, max_replays=3)
    received = []
    datalink.connect(received.append)
    link.set_admin_down()
    datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert received == []
    assert datalink.stats.counter("link_faults").value == 1
    # Three replayed transmissions plus the abandoning request.
    assert datalink.stats.counter("replays").value == 4
    # Replay tracking was pruned with the abandonment.
    assert datalink.tracked_replay_sequences() == 0
    # The returned credit keeps the window usable after the heal: a
    # full credit window of fresh packets still flows.
    link.set_admin_up()
    for _ in range(4):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert len(received) == 4


def test_flap_storm_amplifies_replays(sim):
    # Replays under a flap must exceed the fault count: each faulted
    # packet is retried multiple times while the link stays down.
    link, datalink = build_datalink(sim, credits=8, max_replays=8)
    datalink.connect(lambda packet: None)
    link.set_admin_down()
    for _ in range(4):
        datalink.send_and_forget(make_packet())
    sim.run(until=sim.now + 30_000)
    link.set_admin_up()
    sim.run_until_idle()
    replays = datalink.stats.counter("replays").value
    assert replays > 4


# ----------------------------------------------------------------------
# Switch admin state
# ----------------------------------------------------------------------
def _star_fabric(sim):
    from repro.core.config import VeniceConfig
    from repro.core.system import VeniceSystem

    system = VeniceSystem.build(VeniceConfig(num_nodes=4, topology="star"))
    fabric = system.build_event_fabric(sim=sim)
    return system, fabric


def test_admin_down_switch_drops_and_counts(sim):
    system, fabric = _star_fabric(sim)
    hub = system.topology.router_nodes[0]
    delivered = []
    fabric.switches[1].attach_local_sink(delivered.append)
    fabric.switches[hub].set_admin_down()
    assert not fabric.switches[hub].admin_up
    fabric.switches[0].inject(make_packet(payload=64))
    sim.run_until_idle()
    assert delivered == []
    dropped = fabric.switches[hub].stats.counter(
        "packets_dropped_admin_down").value
    assert dropped == 1


def test_recovered_switch_routes_again(sim):
    system, fabric = _star_fabric(sim)
    hub = system.topology.router_nodes[0]
    delivered = []
    fabric.switches[1].attach_local_sink(delivered.append)
    fabric.switches[hub].set_admin_down()
    fabric.switches[0].inject(make_packet(payload=64))
    sim.run_until_idle()
    fabric.switches[hub].set_admin_up()
    fabric.switches[0].inject(make_packet(payload=64))
    sim.run_until_idle()
    assert len(delivered) == 1


def test_admin_down_covers_local_ejection(sim):
    # A crashed node drops even traffic addressed to itself -- the
    # admin check runs before the ejection branch.
    system, fabric = _star_fabric(sim)
    delivered = []
    fabric.switches[2].attach_local_sink(delivered.append)
    fabric.switches[2].set_admin_down()
    fabric.switches[0].inject(Packet(src=0, dst=2,
                                     kind=PacketKind.QPAIR_DATA,
                                     payload_bytes=64))
    sim.run_until_idle()
    assert delivered == []
    assert fabric.switches[2].stats.counter(
        "packets_dropped_admin_down").value == 1
