"""Busy-horizon fold tests: one fused event per uncontended send.

The fold replaces the datalink's processing hand-off event with a
single event covering processing + serialization whenever the forward
link is idle at enqueue time.  These tests pin down the three claims
the fold makes: the per-packet event count drops, delivery timing is
byte-identical on the clean path, and the busy fallback (contended
link) still behaves exactly like the unfused chain.
"""

from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink


def _build(sim, credits=8):
    link = PhysicalLink(sim, LinkConfig())
    datalink = DataLink(sim, link, DataLinkConfig(credits=credits))
    return link, datalink


def _packet(payload=64):
    return Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                  payload_bytes=payload)


def test_idle_link_send_costs_four_events(sim):
    """Fused chain: _tx_complete -> _deliver -> _rx_done -> replenish.

    The unfused chain spent a fifth event on the processing hand-off
    (``_sf_processed``); the fold schedules straight to
    ``_tx_complete``.
    """
    link, datalink = _build(sim)
    received = []
    datalink.connect(received.append)
    datalink.send_and_forget(_packet())
    sim.run_until_idle()
    assert len(received) == 1
    assert sim.events_processed == 4


def test_spaced_packets_all_take_fused_path(sim):
    link, datalink = _build(sim)
    received = []
    datalink.connect(received.append)
    count = 20

    def inject(i):
        datalink.send_and_forget(_packet())
        if i + 1 < count:
            sim.call_after(50_000, inject, i + 1)  # link long idle again

    sim.call_after(0, inject, 0)
    sim.run_until_idle()
    assert len(received) == count
    # count injector events + 4 per packet (fused tx, deliver, rx_done,
    # coalesced replenish -- each flush-on-idle is its own flush).
    assert sim.events_processed == count + count * 4


def test_fused_delivery_time_matches_component_delays(sim):
    link, datalink = _build(sim)
    arrivals = []
    datalink.connect(lambda packet: arrivals.append(sim.now))
    packet = _packet()
    datalink.send_and_forget(packet)
    sim.run_until_idle()
    config = link.config
    expected = (datalink.config.processing_latency_ns
                + config.serialization_ns(packet.wire_bytes)
                + config.phy_latency_ns + config.extra_delay_ns
                + datalink.config.processing_latency_ns)
    assert arrivals == [expected]


def test_busy_link_falls_back_to_unfused_chain(sim):
    """Back-to-back sends: only the first finds the link idle."""
    link, datalink = _build(sim)
    received = []
    datalink.connect(received.append)
    for _ in range(4):
        datalink.send_and_forget(_packet())
    sim.run_until_idle()
    assert len(received) == 4
    assert [p.sequence for p in received] == [0, 1, 2, 3]
    # The serializer was held continuously from the first reservation:
    # busy time accounts every packet exactly once.
    serialization = link.config.serialization_ns(received[0].wire_bytes)
    assert link.stats.counter("busy_ns").value == 4 * serialization
    assert link.stats.counter("packets_offered").value == 4
    assert link.stats.counter("packets_sent").value == 4


def test_fold_accounts_offered_and_sent_at_enqueue(sim):
    link, datalink = _build(sim)
    datalink.connect(lambda packet: None)
    datalink.send_and_forget(_packet())
    # Counters for the elided hand-off hop are settled synchronously.
    assert link.stats.counter("packets_offered").value == 1
    assert datalink.stats.counter("packets_sent").value == 1
    assert link.stats.counter("busy_ns").value > 0
    sim.run_until_idle()
    assert datalink.stats.counter("packets_received").value == 1
