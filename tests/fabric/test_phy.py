"""Unit tests for the physical link layer."""

import pytest

from repro.fabric.packet import HEADER_BYTES, Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink
from repro.sim.rng import DeterministicRNG


def make_packet(payload=32):
    return Packet(src=0, dst=1, kind=PacketKind.CRMA_READ, payload_bytes=payload)


def test_serialization_time_scales_with_size():
    config = LinkConfig(bandwidth_gbps=5.0)
    assert config.serialization_ns(100) > config.serialization_ns(10)
    # 5 Gbps = 0.625 bytes per ns -> 100 bytes take 160 ns.
    assert config.serialization_ns(100) == pytest.approx(160, abs=1)


def test_packet_latency_includes_phy_and_extra_delay():
    config = LinkConfig(phy_latency_ns=1000, extra_delay_ns=200)
    latency = config.packet_latency_ns(64)
    assert latency == config.serialization_ns(64) + 1200


def test_default_point_to_point_latency_matches_table1():
    """Table 1: P2P latency 1.4 us for a cacheline-sized transfer."""
    config = LinkConfig()
    latency = config.packet_latency_ns(64 + HEADER_BYTES)
    assert 1200 <= latency <= 1600


def test_link_delivers_packet_after_latency(sim):
    config = LinkConfig()
    link = PhysicalLink(sim, config)
    received = []
    link.connect(lambda packet: received.append((packet, sim.now)))
    link.send(make_packet())
    sim.run_until_idle()
    assert len(received) == 1
    packet, arrival = received[0]
    assert arrival == config.packet_latency_ns(packet.wire_bytes)
    assert packet.hops == 1


def test_link_is_fifo_and_serialises(sim):
    link = PhysicalLink(sim, LinkConfig())
    received = []
    link.connect(lambda packet: received.append(packet.packet_id))
    first = make_packet()
    second = make_packet()
    link.send(first)
    link.send(second)
    sim.run_until_idle()
    assert received == [first.packet_id, second.packet_id]
    assert link.stats.counter("packets_sent").value == 2


def test_link_without_sink_counts_drops(sim):
    link = PhysicalLink(sim, LinkConfig())
    link.send(make_packet())
    sim.run_until_idle()
    assert link.stats.counter("packets_dropped_no_sink").value == 1


def test_bit_errors_flag_packets(sim):
    config = LinkConfig(bit_error_rate=1.0)
    link = PhysicalLink(sim, config, rng=DeterministicRNG(1))
    received = []
    link.connect(received.append)
    link.send(make_packet())
    sim.run_until_idle()
    assert received[0].corrupted is True
    assert link.stats.counter("packets_corrupted").value == 1


def test_error_free_link_never_corrupts(sim):
    link = PhysicalLink(sim, LinkConfig(bit_error_rate=0.0))
    received = []
    link.connect(received.append)
    for _ in range(20):
        link.send(make_packet())
    sim.run_until_idle()
    assert all(not packet.corrupted for packet in received)


def test_zero_capacity_queue_rejected_at_construction(sim):
    # A zero-slot transmit queue would strand blocked senders forever
    # (waiters are only admitted when a queued packet starts serializing).
    with pytest.raises(ValueError):
        PhysicalLink(sim, LinkConfig(queue_capacity=0))


def test_busy_fraction_reflects_utilisation(sim):
    link = PhysicalLink(sim, LinkConfig())
    link.connect(lambda packet: None)
    for _ in range(5):
        link.send(make_packet(payload=1024))
    sim.run_until_idle()
    assert 0.0 < link.busy_fraction() <= 1.0
