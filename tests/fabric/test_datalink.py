"""Unit tests for the datalink layer (credits, CRC, replay)."""

import pytest

from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink
from repro.sim.rng import DeterministicRNG


def build_datalink(sim, credits=4, bit_error_rate=0.0, rng_seed=1):
    link = PhysicalLink(sim, LinkConfig(bit_error_rate=bit_error_rate),
                        rng=DeterministicRNG(rng_seed))
    datalink = DataLink(sim, link, DataLinkConfig(credits=credits))
    return datalink


def make_packet(payload=64):
    return Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA, payload_bytes=payload)


def test_single_packet_delivered(sim):
    datalink = build_datalink(sim)
    received = []
    datalink.connect(received.append)
    datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert len(received) == 1
    assert datalink.stats.counter("packets_received").value == 1


def test_sequence_numbers_are_monotonic(sim):
    datalink = build_datalink(sim)
    received = []
    datalink.connect(received.append)
    for _ in range(5):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert [packet.sequence for packet in received] == [0, 1, 2, 3, 4]


def test_credits_are_consumed_and_returned(sim):
    datalink = build_datalink(sim, credits=4)
    datalink.connect(lambda packet: None)
    for _ in range(8):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    # All packets delivered and all credits eventually returned.
    assert datalink.stats.counter("packets_received").value == 8
    assert datalink.credits.available == 4
    assert datalink.stats.counter("credits_returned").value == 8


def test_sender_blocks_when_out_of_credits(sim):
    datalink = build_datalink(sim, credits=2)
    datalink.connect(lambda packet: None)
    for _ in range(6):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    # Flow control stalled the sender at least once but everything
    # eventually got through.
    assert datalink.credits.stall_count > 0
    assert datalink.stats.counter("packets_received").value == 6


def test_no_buffer_overflow_with_small_window(sim):
    datalink = build_datalink(sim, credits=1)
    datalink.connect(lambda packet: None)
    for _ in range(10):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert datalink.stats.counter("buffer_overflows").value == 0
    assert datalink.stats.counter("packets_received").value == 10


def test_corrupted_packets_are_replayed(sim):
    # ~20% of packets hit a CRC error at this bit error rate.
    datalink = build_datalink(sim, bit_error_rate=1e-4, rng_seed=3)
    received = []
    datalink.connect(received.append)
    total = 60
    for _ in range(total):
        datalink.send_and_forget(make_packet(payload=256))
    sim.run_until_idle()
    # Some CRC errors occurred and every one was recovered by replay.
    assert datalink.stats.counter("crc_errors").value > 0
    assert datalink.stats.counter("packets_received").value == total
    assert len(received) == total


def test_clean_link_has_no_replays(sim):
    datalink = build_datalink(sim, bit_error_rate=0.0)
    datalink.connect(lambda packet: None)
    for _ in range(20):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert datalink.stats.counter("crc_errors").value == 0
    assert datalink.stats.counter("replays").value == 0


def test_default_config_values_sane():
    config = DataLinkConfig()
    assert config.credits > 0
    assert config.max_replays > 0


def test_fast_path_cannot_overtake_parked_packets(sim):
    # After a coalesced flush grants a parked packet, the grant callback
    # sits in the ready queue while the pool already shows free credits.
    # A send_and_forget racing in at that instant must queue behind the
    # parked packet, not take a credit inline and overtake it.
    datalink = build_datalink(sim, credits=2)
    received = []
    datalink.connect(received.append)
    packets = [make_packet() for _ in range(4)]
    for packet in packets[:3]:          # A, B take credits; C parks
        datalink.send_and_forget(packet)
    datalink.credits.replenish(2)       # grants C, leaves 1 free credit
    datalink.send_and_forget(packets[3])  # D races the parked grant
    sim.run_until_idle()
    assert [packet.sequence for packet in received] == [0, 1, 2, 3]
    assert [packet.packet_id for packet in received] == \
        [packet.packet_id for packet in packets]
