"""Replay-tracking and backpressure behaviour of the datalink layer."""

from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink
from repro.sim.rng import DeterministicRNG


def build_datalink(sim, credits=4, bit_error_rate=0.0, rng_seed=1,
                   queue_capacity=64):
    link = PhysicalLink(sim, LinkConfig(bit_error_rate=bit_error_rate,
                                        queue_capacity=queue_capacity),
                        rng=DeterministicRNG(rng_seed))
    return DataLink(sim, link, DataLinkConfig(credits=credits))


def make_packet(payload=256):
    return Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA, payload_bytes=payload)


def test_replay_attempt_tracking_is_pruned_on_delivery(sim):
    datalink = build_datalink(sim, bit_error_rate=1e-4, rng_seed=3)
    received = []
    datalink.connect(received.append)
    total = 60
    for _ in range(total):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    # Replays happened, every packet was recovered, and the per-sequence
    # attempt tracking was pruned as the packets were acknowledged --
    # it must not grow one entry per replayed packet forever.
    assert datalink.stats.counter("replays").value > 0
    assert len(received) == total
    assert datalink.tracked_replay_sequences() == 0


def test_no_per_sequence_counters_leak_into_stats(sim):
    datalink = build_datalink(sim, bit_error_rate=1e-4, rng_seed=3)
    datalink.connect(lambda packet: None)
    for _ in range(60):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert datalink.stats.counter("replays").value > 0
    leaked = [name for name in datalink.stats.counters
              if name.startswith("replay_attempts_")]
    assert leaked == []


def test_replay_attempts_query(sim):
    datalink = build_datalink(sim)
    assert datalink.replay_attempts(0) == 0


def test_sent_counter_matches_clean_traffic(sim):
    datalink = build_datalink(sim)
    datalink.connect(lambda packet: None)
    for _ in range(10):
        datalink.send_and_forget(make_packet(payload=64))
    sim.run_until_idle()
    assert datalink.stats.counter("packets_sent").value == 10
    assert datalink.stats.counter("packets_received").value == 10


def test_replays_survive_a_tiny_transmit_queue(sim):
    # Replays route through the physical link's transmit-queue
    # backpressure path; a one-slot queue forces them to wait rather
    # than being dropped or silently reordered into an ignored event.
    datalink = build_datalink(sim, credits=2, bit_error_rate=1e-4,
                              rng_seed=3, queue_capacity=1)
    received = []
    datalink.connect(received.append)
    total = 40
    for _ in range(total):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert datalink.stats.counter("crc_errors").value > 0
    assert len(received) == total


def test_send_generator_still_waitable(sim):
    from repro.sim.process import Process

    datalink = build_datalink(sim)
    received = []
    datalink.connect(received.append)

    def body():
        sequence = yield Process(sim, datalink.send(make_packet()))
        return sequence

    waiter = Process(sim, body())
    sim.run_until_idle()
    assert waiter.result == 0
    assert len(received) == 1
