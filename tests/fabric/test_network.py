"""Unit tests for the embedded switch and routing tables."""

import pytest

from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.network import RoutingError, RoutingTable, Switch, SwitchConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink


def make_packet(src, dst):
    return Packet(src=src, dst=dst, kind=PacketKind.CRMA_READ, payload_bytes=32)


# ----------------------------------------------------------------------
# RoutingTable
# ----------------------------------------------------------------------
def test_routing_table_install_and_lookup():
    table = RoutingTable()
    table.install(node_id=5, out_port=2)
    entry = table.lookup(5)
    assert entry.out_port == 2
    assert table.has_route(5)
    assert len(table) == 1


def test_routing_table_missing_route_raises():
    table = RoutingTable()
    with pytest.raises(RoutingError):
        table.lookup(7)
    assert not table.has_route(7)


def test_routing_table_invalidate():
    table = RoutingTable()
    table.install(3, 1)
    table.invalidate(3)
    assert not table.has_route(3)
    with pytest.raises(RoutingError):
        table.lookup(3)


def test_routing_table_update_overwrites():
    table = RoutingTable()
    table.install(3, 1)
    table.install(3, 4)
    assert table.lookup(3).out_port == 4


# ----------------------------------------------------------------------
# Switch
# ----------------------------------------------------------------------
def test_switch_ejects_local_packets(sim):
    switch = Switch(sim, node_id=0)
    delivered = []
    switch.attach_local_sink(delivered.append)
    switch.inject(make_packet(src=1, dst=0))
    sim.run_until_idle()
    assert len(delivered) == 1
    assert switch.stats.counter("packets_ejected").value == 1


def test_switch_forwarding_latency_charged(sim):
    config = SwitchConfig(forwarding_latency_ns=75)
    switch = Switch(sim, node_id=0, config=config)
    arrival = []
    switch.attach_local_sink(lambda packet: arrival.append(sim.now))
    switch.inject(make_packet(src=1, dst=0))
    sim.run_until_idle()
    assert arrival == [75]


def test_switch_forwards_to_attached_port(sim):
    switch = Switch(sim, node_id=0)
    link = PhysicalLink(sim, LinkConfig())
    datalink = DataLink(sim, link, DataLinkConfig())
    received = []
    datalink.connect(received.append)
    switch.attach_output(1, datalink)
    switch.routing_table.install(node_id=2, out_port=1)
    switch.inject(make_packet(src=0, dst=2))
    sim.run_until_idle()
    assert len(received) == 1
    assert switch.stats.counter("port1_forwarded").value == 1


def test_reattaching_a_port_invalidates_resolved_routes(sim):
    switch = Switch(sim, node_id=0)
    link_a = PhysicalLink(sim, LinkConfig())
    datalink_a = DataLink(sim, link_a, DataLinkConfig())
    via_a = []
    datalink_a.connect(via_a.append)
    switch.attach_output(1, datalink_a)
    switch.routing_table.install(node_id=2, out_port=1)
    switch.inject(make_packet(src=0, dst=2))
    sim.run_until_idle()
    assert len(via_a) == 1
    # Replace the datalink behind port 1: the resolved-route cache must
    # not keep forwarding through the old one.
    link_b = PhysicalLink(sim, LinkConfig())
    datalink_b = DataLink(sim, link_b, DataLinkConfig())
    via_b = []
    datalink_b.connect(via_b.append)
    switch.attach_output(1, datalink_b)
    switch.inject(make_packet(src=0, dst=2))
    sim.run_until_idle()
    assert len(via_a) == 1
    assert len(via_b) == 1


def test_switch_unroutable_packet_raises(sim):
    switch = Switch(sim, node_id=0)
    switch.attach_local_sink(lambda packet: None)
    switch.inject(make_packet(src=0, dst=9))
    with pytest.raises(RoutingError):
        sim.run_until_idle()


def test_switch_rejects_local_port_attachment(sim):
    switch = Switch(sim, node_id=0)
    link = PhysicalLink(sim, LinkConfig())
    datalink = DataLink(sim, link)
    with pytest.raises(ValueError):
        switch.attach_output(Switch.LOCAL_PORT, datalink)


def test_switch_rejects_port_beyond_radix(sim):
    switch = Switch(sim, node_id=0, config=SwitchConfig(radix=3))
    link = PhysicalLink(sim, LinkConfig())
    datalink = DataLink(sim, link)
    with pytest.raises(ValueError):
        switch.attach_output(5, datalink)


def test_switch_default_radix_is_seven(sim):
    assert Switch(sim, node_id=0).config.radix == 7
