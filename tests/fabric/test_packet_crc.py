"""Unit tests for packets and the CRC helpers."""

import pytest

from repro.fabric.crc import CRC16_INIT, crc16, crc_stream, packet_crc, verify
from repro.fabric.packet import FLIT_BYTES, HEADER_BYTES, Packet, PacketKind


def make_packet(**overrides):
    defaults = dict(src=0, dst=1, kind=PacketKind.CRMA_READ, payload_bytes=32)
    defaults.update(overrides)
    return Packet(**defaults)


def test_wire_bytes_include_header():
    packet = make_packet(payload_bytes=32)
    assert packet.wire_bytes == 32 + HEADER_BYTES


def test_flit_count_rounds_up():
    packet = make_packet(payload_bytes=1)
    expected = -(-(1 + HEADER_BYTES) // FLIT_BYTES)
    assert packet.flit_count == expected
    assert make_packet(payload_bytes=0).flit_count >= 1


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        make_packet(payload_bytes=-1)


def test_packet_ids_are_unique():
    ids = {make_packet().packet_id for _ in range(100)}
    assert len(ids) == 100


def test_control_packet_classification():
    assert make_packet(kind=PacketKind.CREDIT_UPDATE).is_control()
    assert make_packet(kind=PacketKind.QPAIR_ACK).is_control()
    assert not make_packet(kind=PacketKind.CRMA_READ).is_control()
    assert not make_packet(kind=PacketKind.RDMA_CHUNK).is_control()


# ----------------------------------------------------------------------
# CRC
# ----------------------------------------------------------------------
def test_crc16_known_vector():
    # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    assert crc16(b"123456789") == 0x29B1


def test_crc16_detects_single_bit_flip():
    data = bytearray(b"venice fabric payload")
    original = crc16(bytes(data))
    data[3] ^= 0x01
    assert crc16(bytes(data)) != original


def test_verify_round_trip():
    data = b"some packet bytes"
    assert verify(data, crc16(data))
    assert not verify(data + b"x", crc16(data))


def test_packet_crc_depends_on_every_field():
    base = packet_crc(1, 2, 3, 64)
    assert packet_crc(9, 2, 3, 64) != base
    assert packet_crc(1, 9, 3, 64) != base
    assert packet_crc(1, 2, 9, 64) != base
    assert packet_crc(1, 2, 3, 65) != base


def test_crc_stream_matches_concatenation():
    chunks = [b"abc", b"defg", b"h"]
    assert crc_stream(chunks) == crc16(b"".join(chunks))


def test_crc_empty_input_is_initial_value():
    assert crc16(b"") == CRC16_INIT
