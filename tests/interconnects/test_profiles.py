"""Unit tests for the commodity-interconnect baselines."""

import pytest

from repro.interconnects.base import InterconnectProfile, round_trip_latency_ns
from repro.interconnects.ethernet import EthernetProfile, EthernetSwapDevice
from repro.interconnects.infiniband import InfinibandProfile, InfinibandSrpSwapDevice
from repro.interconnects.pcie import (
    PcieLoadStoreBackend,
    PcieProfile,
    PcieRdmaSwapDevice,
)

PAGE = 4096
LINE = 32


def test_profile_validation():
    with pytest.raises(ValueError):
        InterconnectProfile(name="bad", bandwidth_gbps=0, request_software_ns=1,
                            response_software_ns=1, adapter_ns=1, wire_ns=1)
    with pytest.raises(ValueError):
        InterconnectProfile(name="bad", bandwidth_gbps=1, request_software_ns=-1,
                            response_software_ns=1, adapter_ns=1, wire_ns=1)


def test_serialization_scales_with_payload():
    profile = EthernetProfile()
    assert profile.serialization_ns(PAGE) > profile.serialization_ns(64)


def test_round_trip_includes_both_directions_and_software():
    profile = InfinibandProfile()
    round_trip = round_trip_latency_ns(profile, 96, PAGE)
    assert round_trip > profile.one_way_ns(96)
    assert round_trip > profile.response_software_ns


def test_software_stack_dominates_ethernet_page_latency():
    """The paper's point: commodity stacks, not wires, are the bottleneck."""
    profile = EthernetProfile()
    page_read = EthernetSwapDevice(profile).read_page_latency_ns(PAGE)
    software = profile.request_software_ns + profile.response_software_ns
    assert software > page_read * 0.4


def test_swap_device_latency_ordering_matches_figure3():
    """Ethernet slowest, InfiniBand SRP faster, PCIe RDMA fastest."""
    ethernet = EthernetSwapDevice().read_page_latency_ns(PAGE)
    infiniband = InfinibandSrpSwapDevice().read_page_latency_ns(PAGE)
    pcie = PcieRdmaSwapDevice().read_page_latency_ns(PAGE)
    assert ethernet > infiniband > pcie


def test_swap_devices_write_latency_positive():
    for device in (EthernetSwapDevice(), InfinibandSrpSwapDevice(),
                   PcieRdmaSwapDevice()):
        assert device.write_page_latency_ns(PAGE) > 0
        assert not device.supports_write_overlap()


def test_pcie_ldst_commodity_penalty_is_crippling():
    """Figure 3: the commodity chip makes LD/ST reads ~an order of
    magnitude worse than the fixed variant."""
    commodity = PcieLoadStoreBackend(commodity_chip_limit=True)
    fixed = PcieLoadStoreBackend(commodity_chip_limit=False)
    assert commodity.remote_read_latency_ns(LINE) > 10 * fixed.remote_read_latency_ns(LINE)


def test_pcie_ldst_writes_are_posted_and_cheap():
    backend = PcieLoadStoreBackend(commodity_chip_limit=True)
    assert backend.remote_write_latency_ns(LINE) < backend.remote_read_latency_ns(LINE)
    # The write path does not pay the non-posted-read penalty.
    fixed = PcieLoadStoreBackend(commodity_chip_limit=False)
    assert backend.remote_write_latency_ns(LINE) == fixed.remote_write_latency_ns(LINE)


def test_pcie_ldst_read_faster_than_page_swap_for_single_line():
    """Fine-grained access is why LD/ST exists at all: one cacheline via
    LD/ST (fixed chip) must be far cheaper than pulling a whole page."""
    fixed = PcieLoadStoreBackend(commodity_chip_limit=False)
    assert fixed.remote_read_latency_ns(LINE) < \
        PcieRdmaSwapDevice().read_page_latency_ns(PAGE)


def test_profiles_have_distinct_bandwidths():
    assert EthernetProfile().bandwidth_gbps < InfinibandProfile().bandwidth_gbps
    assert InfinibandProfile().bandwidth_gbps < PcieProfile().bandwidth_gbps
