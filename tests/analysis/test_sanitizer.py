"""Runtime sanitizer tests: invariants, mutation detection, lockstep.

The mutation tests re-introduce the three historical engine bugs at
class level (``__slots__`` forbids instance patching) and assert the
sanitizer catches each one -- the sanitizer's own regression suite.
"""

from heapq import heappush

import pytest

from repro.analysis.lockstep import lockstep_cross_check
from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem
from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink
from repro.sim.engine import SanitizerError, SimulationError, Simulator
from repro.sim.resources import CreditPool
from repro.sim.rng import DeterministicRNG


def _noop(_value=None):
    return None


# ----------------------------------------------------------------------
# Sanitizer plumbing
# ----------------------------------------------------------------------
def test_sanitize_off_by_default(monkeypatch):
    monkeypatch.delenv("SIM_SANITIZE", raising=False)
    assert Simulator().sanitize is False


def test_sanitize_env_var_enables(monkeypatch):
    monkeypatch.setenv("SIM_SANITIZE", "1")
    assert Simulator().sanitize is True
    monkeypatch.setenv("SIM_SANITIZE", "0")
    assert Simulator().sanitize is False
    monkeypatch.setenv("SIM_SANITIZE", "1")
    # An explicit argument beats the environment.
    assert Simulator(sanitize=False).sanitize is False


def test_dispatch_trace_requires_sanitize(monkeypatch):
    monkeypatch.delenv("SIM_SANITIZE", raising=False)
    with pytest.raises(SimulationError):
        Simulator().enable_dispatch_trace()


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_sanitized_run_dispatches_in_total_order(scheduler):
    sim = Simulator(scheduler=scheduler, sanitize=True)
    trace = sim.enable_dispatch_trace()
    fired = []
    for delay in (500, 100, 300, 100, 700, 200):
        sim.call_after(delay, fired.append)
    sim.run()
    assert len(trace) == 6
    keys = [(time, seq) for time, seq, _name in trace]
    assert keys == sorted(keys)
    assert [time for time, _seq, _name in trace] == [
        100, 100, 200, 300, 500, 700]


# ----------------------------------------------------------------------
# Mutation 1: backwards clock
# ----------------------------------------------------------------------
def test_mutation_backwards_clock_detected():
    sim = Simulator(scheduler="heap", sanitize=True)
    sim.call_after(100, _noop)
    sim.run()
    assert sim.now == 100
    # Mutation: a corrupted component bypasses schedule() and plants a
    # raw timer entry behind the current clock.
    heappush(sim._queue, [50, 10 ** 9, _noop, None, True, None])  # simlint: disable=SIM007 -- deliberate white-box corruption
    with pytest.raises(SanitizerError, match="backwards clock"):
        sim.run()


def test_unsanitized_run_misses_backwards_clock(monkeypatch):
    # The control: without the sanitizer the same corruption dispatches
    # silently -- which is exactly why the sanitizer exists.
    monkeypatch.delenv("SIM_SANITIZE", raising=False)
    # core="py": the corruption is planted by reaching into the Python
    # engine's raw heap list, which the compiled core does not have.
    sim = Simulator(scheduler="heap", core="py")
    sim.call_after(100, _noop)
    sim.run()
    heappush(sim._queue, [50, 10 ** 9, _noop, None, True, None])  # simlint: disable=SIM007 -- deliberate white-box corruption
    sim.run()
    # The clock silently jumped backwards -- the corruption the
    # sanitizer turns into a hard error.
    assert sim.now == 50


# ----------------------------------------------------------------------
# Mutation 2: replenish credit destruction (the PR 1 bug)
# ----------------------------------------------------------------------
def _buggy_replenish(self, amount=1):
    """Re-introduced bug: clamp to maximum *before* granting waiters."""
    self._credits = min(self.maximum, self._credits + amount)
    self.total_replenished += amount
    while self._waiters and self._credits >= self._waiters[0][1]:
        event, want = self._waiters.popleft()
        self._credits -= want
        self.total_taken += want
        event.succeed(None)


def test_mutation_credit_destruction_detected(monkeypatch):
    sim = Simulator(sanitize=True)
    pool = CreditPool(sim, initial=0, maximum=2)
    pool.take(2)
    pool.take(2)
    assert pool.pending_waiters() == 2
    monkeypatch.setattr(CreditPool, "replenish", _buggy_replenish)
    # The bulk return owes both takers 2 credits; the buggy order clamps
    # to 2 first and silently destroys the second taker's credits.  The
    # buggy code performs no checks itself -- the conservation ledger
    # catches the corruption at the next pool operation.
    pool.replenish(4)
    with pytest.raises(SanitizerError, match="conservation violated"):
        pool.try_take(1)


def test_conservation_check_passes_on_honest_pool(sim):
    pool = CreditPool(sim, initial=3, maximum=5)
    pool.try_take(2)
    pool.replenish(4)
    pool.check_conservation()
    assert pool.available == 5  # 3 - 2 + 4 clamped to maximum


def test_conservation_check_detects_out_of_range(sim):
    pool = CreditPool(sim, initial=1, maximum=2)
    pool._credits = 7
    with pytest.raises(SanitizerError, match="conservation violated"):
        pool.check_conservation()


# ----------------------------------------------------------------------
# Mutation 3: unpruned replay counters (the PR 2 bug)
# ----------------------------------------------------------------------
def _leaky_rx_done(self, packet):
    """Re-introduced bug: per-sequence replay tracking never pruned."""
    self._pending_replay.pop(packet.sequence, None)
    # (the _replay_attempts.pop(...) on delivery is gone)
    owed = self._credits_owed + 1
    self._ctr_credits_returned.value += 1
    queue = self._rx_queue
    if queue:
        if owed >= self._credit_batch:
            self._flush_credits(owed)
        else:
            self._credits_owed = owed
        self._call_after(self._processing_ns, self._rx_done, queue.popleft())
    else:
        self._flush_credits(owed)
        self._rx_busy = False
    if self._sink is not None:
        self._sink(packet)


def _lossy_datalink(sim):
    """A flow-controlled datalink whose wire corrupts ~half its packets."""
    wire_bits = (48 + 16) * 8  # payload + header bytes, in bits
    link = PhysicalLink(sim, LinkConfig(bit_error_rate=0.5 / wire_bits),
                        rng=DeterministicRNG(7))
    datalink = DataLink(sim, link, DataLinkConfig())
    datalink.connect(_noop)
    return datalink


def test_mutation_unpruned_replay_counters_detected(monkeypatch):
    sim = Simulator(sanitize=True)
    datalink = _lossy_datalink(sim)
    monkeypatch.setattr(DataLink, "_rx_done", _leaky_rx_done)
    with pytest.raises(SanitizerError, match="unpruned replay"):
        for index in range(200):
            datalink.send_and_forget(
                Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                       payload_bytes=48))
            sim.run_until_idle()


def test_pruned_replay_tracking_stays_bounded():
    # The control: the real receive path prunes on delivery, so the same
    # lossy traffic keeps the tracking map within the credit window.
    sim = Simulator(sanitize=True)
    datalink = _lossy_datalink(sim)
    for index in range(200):
        datalink.send_and_forget(
            Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                   payload_bytes=48))
        sim.run_until_idle()
    assert datalink.stats.counter("crc_errors").value > 0
    assert datalink.tracked_replay_sequences() <= DataLinkConfig().credits


# ----------------------------------------------------------------------
# Packet lifecycle accounting
# ----------------------------------------------------------------------
def _event_system():
    return VeniceSystem.build(config=VeniceConfig.pair(),
                              transport_backend="event", sanitize=True)


def test_transport_lifecycle_audit_passes_on_clean_run():
    transport = _event_system().event_transport()
    assert transport.sim.sanitize is True
    ops = [transport.submit_one_way(0, 1, 256, PacketKind.QPAIR_DATA),
           transport.submit_round_trip(1, 0, 64, 256, 500,
                                       PacketKind.CRMA_READ,
                                       PacketKind.CRMA_READ_RESP)]
    transport.drive_all(ops)  # runs the audit at idleness
    assert transport.packets_injected == transport.packets_delivered == 3
    transport.check_packet_lifecycle()


def test_transport_lifecycle_audit_detects_lost_packet():
    transport = _event_system().event_transport()
    transport.drive_all([
        transport.submit_one_way(0, 1, 256, PacketKind.QPAIR_DATA)])
    # Mutation: a packet evaporates between injection and delivery.
    transport.packets_injected += 1
    with pytest.raises(SanitizerError, match="packet lifecycle"):
        transport.check_packet_lifecycle()


def test_transport_lifecycle_audit_detects_handler_leak():
    transport = _event_system().event_transport()
    # A handler registered for a packet that is never injected survives
    # any number of idle drains: the stale-handler leak.
    orphan = Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                    payload_bytes=64)
    transport.expect(orphan, _noop)
    with pytest.raises(SanitizerError, match="stale-handler leak"):
        transport.check_packet_lifecycle()


# ----------------------------------------------------------------------
# Lockstep heap-vs-calendar cross-check
# ----------------------------------------------------------------------
def _timer_and_credit_workload(sim):
    pool = CreditPool(sim, initial=2, maximum=4)
    for delay in (300, 100, 700, 100, 500):
        sim.call_after(delay, _noop)
    for _ in range(4):
        pool.take(1)
    sim.call_after(250, lambda _v=None: pool.replenish(2))
    sim.call_after(600, lambda _v=None: pool.replenish(2))


def _fabric_workload(sim):
    link = PhysicalLink(sim, LinkConfig())
    datalink = DataLink(sim, link, DataLinkConfig(credits=4))
    datalink.connect(_noop)
    for index in range(32):
        datalink.send_and_forget(
            Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA,
                   payload_bytes=64 + 16 * (index % 3)))


@pytest.mark.parametrize("build", [_timer_and_credit_workload,
                                   _fabric_workload])
def test_lockstep_identical_across_schedulers(build):
    result = lockstep_cross_check(build)
    assert result.ok, result.divergence.render()
    assert result.events_heap == result.events_calendar > 0


def _diverging_build_factory():
    seen = []

    def build(sim):
        # Models a scheduler-order bug: the two runs schedule different
        # callbacks at the same timestamp.
        sim.call_after(10, _noop if not seen else _other_noop)
        seen.append(sim)

    return build


def _other_noop(_value=None):
    return None


def test_lockstep_reports_first_divergence():
    result = lockstep_cross_check(_diverging_build_factory())
    assert not result.ok
    assert result.divergence.index == 0
    rendered = result.divergence.render()
    assert "_noop" in rendered and "_other_noop" in rendered


def test_lockstep_reports_length_divergence():
    seen = []

    def build(sim):
        sim.call_after(10, _noop)
        if seen:
            sim.call_after(20, _noop)
        seen.append(sim)

    result = lockstep_cross_check(build)
    assert not result.ok
    assert result.divergence.index == 1
    assert result.divergence.heap_entry is None
    assert "<stream ended>" in result.divergence.render()
