"""simlint rule, suppression, baseline and CLI tests."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.simlint import (
    diff_against_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.analysis.simlint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint(source, rel_posix="src/repro/runtime/module.py"):
    return lint_source(textwrap.dedent(source), Path(rel_posix),
                       rel_posix=rel_posix)


def _rules(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# SIM001: unordered dict/set-view iteration in order-sensitive modules
# ----------------------------------------------------------------------
def test_sim001_flags_view_iteration_in_scheduling_module():
    findings = _lint("""
        def broadcast(agents, sim):
            for agent in agents.values():
                sim.call_soon(agent.tick)
    """)
    assert _rules(findings) == ["SIM001"]


def test_sim001_ignores_modules_that_never_schedule():
    findings = _lint("""
        def tally(agents):
            out = []
            for agent in agents.values():
                out.append(agent.name)
            return out
    """)
    assert findings == []


def test_sim001_sorted_iteration_is_clean():
    findings = _lint("""
        def broadcast(agents, sim):
            for node_id in sorted(agents):
                sim.call_soon(agents[node_id].tick)
    """)
    assert findings == []


def test_sim001_order_insensitive_fold_is_exempt():
    findings = _lint("""
        def depth(queues, sim):
            sim.call_soon(print)
            return sum(len(q) for q in queues.values())
    """)
    assert findings == []


def test_sim001_comprehension_feeding_list_is_flagged():
    findings = _lint("""
        def plan_order(pools):
            return [p.name for p in pools.values()]
    """)
    # "plan" in the function name marks the module order-sensitive.
    assert _rules(findings) == ["SIM001"]


# ----------------------------------------------------------------------
# SIM002: nondeterministic stdlib imports outside sim/rng.py
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stmt", ["import random",
                                  "from random import choice",
                                  "import time",
                                  "from datetime import datetime"])
def test_sim002_flags_nondeterministic_imports(stmt):
    assert _rules(_lint(stmt)) == ["SIM002"]


def test_sim002_allows_rng_module_itself():
    findings = _lint("import random", rel_posix="src/repro/sim/rng.py")
    assert findings == []


def test_sim002_unrelated_import_is_clean():
    assert _lint("import itertools") == []


# ----------------------------------------------------------------------
# SIM003: loop-variable capture in scheduled callbacks
# ----------------------------------------------------------------------
def test_sim003_flags_lambda_capturing_loop_variable():
    findings = _lint("""
        def arm(sim, items):
            for item in items:
                sim.call_after(10, lambda _v=None: item.fire())
    """)
    assert "SIM003" in _rules(findings)


def test_sim003_default_bound_lambda_is_clean():
    findings = _lint("""
        def arm(sim, items):
            for item in items:
                sim.call_after(10, lambda _v=None, item=item: item.fire())
    """)
    assert findings == []


def test_sim003_flags_nested_def_capture():
    findings = _lint("""
        def arm(sim, items):
            for item in items:
                def fire(_v=None):
                    item.fire()
                sim.call_after(10, fire)
    """)
    assert "SIM003" in _rules(findings)


def test_sim003_args_passed_positionally_are_clean():
    findings = _lint("""
        def arm(sim, items):
            for item in items:
                sim.call_after(10, print, item)
    """)
    assert findings == []


# ----------------------------------------------------------------------
# SIM004: missing __slots__ on hot-path classes
# ----------------------------------------------------------------------
def test_sim004_flags_slotless_class_in_sim_tree():
    findings = _lint("""
        class Arbiter:
            def __init__(self):
                self.queue = []
    """, rel_posix="src/repro/sim/arbiter.py")
    assert _rules(findings) == ["SIM004"]


def test_sim004_slots_class_is_clean():
    findings = _lint("""
        class Arbiter:
            __slots__ = ("queue",)

            def __init__(self):
                self.queue = []
    """, rel_posix="src/repro/sim/arbiter.py")
    assert findings == []


def test_sim004_dataclass_slots_is_clean():
    findings = _lint("""
        from dataclasses import dataclass

        @dataclass(slots=True)
        class Entry:
            time: int
    """, rel_posix="src/repro/fabric/entry.py")
    assert findings == []


def test_sim004_config_and_error_classes_are_exempt():
    findings = _lint("""
        class ArbiterConfig:
            def __init__(self):
                self.depth = 4

        class ArbiterError(Exception):
            pass
    """, rel_posix="src/repro/sim/arbiter.py")
    assert findings == []


def test_sim004_outside_hot_tree_is_clean():
    findings = _lint("""
        class Report:
            def __init__(self):
                self.rows = []
    """, rel_posix="src/repro/analysis/report2.py")
    assert findings == []


# ----------------------------------------------------------------------
# SIM005: float arithmetic on ns-time values
# ----------------------------------------------------------------------
def test_sim005_flags_true_division_into_ns_name():
    findings = _lint("""
        def mean_gap(total, count):
            gap_ns = total / count
            return gap_ns
    """, rel_posix="src/repro/sim/timing.py")
    assert _rules(findings) == ["SIM005"]


def test_sim005_floor_division_is_clean():
    findings = _lint("""
        def mean_gap(total, count):
            gap_ns = total // count
            return gap_ns
    """, rel_posix="src/repro/sim/timing.py")
    assert findings == []


def test_sim005_int_round_launders_float_taint():
    findings = _lint("""
        def mean_gap(total, count):
            gap_ns = int(round(total / count))
            return gap_ns
    """, rel_posix="src/repro/sim/timing.py")
    assert findings == []


def test_sim005_only_applies_to_time_scoped_trees():
    findings = _lint("""
        def mean_gap(total, count):
            gap_ns = total / count
            return gap_ns
    """, rel_posix="src/repro/analysis/metrics2.py")
    assert findings == []


# ----------------------------------------------------------------------
# SIM006: add-only registry heuristic
# ----------------------------------------------------------------------
ADD_ONLY_CLASS = """
    class Tracker:
        def __init__(self):
            self._seen = {}

        def record(self, key, value):
            self._seen[key] = value
"""


def test_sim006_flags_add_only_dict_attribute():
    assert _rules(_lint(ADD_ONLY_CLASS)) == ["SIM006"]


def test_sim006_pruned_dict_is_clean():
    findings = _lint("""
        class Tracker:
            def __init__(self):
                self._seen = {}

            def record(self, key, value):
                self._seen[key] = value

            def retire(self, key):
                self._seen.pop(key, None)
    """)
    assert findings == []


# ----------------------------------------------------------------------
# SIM007: engine dispatch internals touched outside sim/
# ----------------------------------------------------------------------
def test_sim007_flags_queue_access_outside_sim_tree():
    findings = _lint("""
        def drain_by_hand(sim):
            while sim._queue:
                sim._queue.pop()
    """, rel_posix="src/repro/runtime/shard.py")
    assert _rules(findings) == ["SIM007", "SIM007"]
    assert "_queue" in findings[0].message


def test_sim007_flags_lane_and_calendar_state():
    findings = _lint("""
        def snoop(sim):
            return len(sim._lane_map) + len(sim._cal_buckets)
    """, rel_posix="src/repro/fabric/router2.py")
    assert _rules(findings) == ["SIM007", "SIM007"]


def test_sim007_allows_engine_package_itself():
    findings = _lint("""
        def migrate(old, new):
            new._queue = old._queue
    """, rel_posix="src/repro/sim/engine2.py")
    assert findings == []


def test_sim007_allows_a_classs_own_private_state():
    # ``self._queue`` is any class's own business -- the rule targets
    # reaching into *another* object's dispatch structures.
    findings = _lint("""
        class Mailbox:
            def __init__(self):
                self._queue = []
            def push(self, item):
                self._queue.append(item)
            def drain(self):
                while self._queue:
                    yield self._queue.pop()
    """, rel_posix="src/repro/runtime/mailbox.py")
    assert findings == []


def test_sim007_public_api_is_clean():
    findings = _lint("""
        def drain(sim):
            while sim.peek() is not None:
                sim.step()
            return sim.drain_cancelled()
    """, rel_posix="src/repro/runtime/shard.py")
    assert findings == []


def test_sim007_suppression_is_honoured():
    findings = _lint("""
        def corrupt(sim, entry):
            sim._queue.append(entry)  # simlint: disable=SIM007 -- white-box test
    """, rel_posix="tests/analysis/helper.py")
    assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_silences_named_rule():
    findings = _lint("""
        class Tracker:
            def __init__(self):
                self._seen = {}  # simlint: disable=SIM006 -- bounded by config
            def record(self, key, value):
                self._seen[key] = value
    """)
    assert findings == []


def test_suppression_for_other_rule_does_not_apply():
    findings = _lint("""
        class Tracker:
            def __init__(self):
                self._seen = {}  # simlint: disable=SIM001
            def record(self, key, value):
                self._seen[key] = value
    """)
    assert _rules(findings) == ["SIM006"]


def test_suppression_list_covers_multiple_rules():
    findings = _lint("""
        def broadcast(agents, sim):
            for agent in agents.values():  # simlint: disable=SIM001,SIM003
                sim.call_soon(agent.tick)
    """)
    assert findings == []


def test_syntax_error_becomes_sim000():
    findings = _lint("def broken(:\n    pass")
    assert _rules(findings) == ["SIM000"]


# ----------------------------------------------------------------------
# Baseline round trip
# ----------------------------------------------------------------------
def _tracker_tree(tmp_path):
    root = tmp_path / "proj"
    pkg = root / "src"
    pkg.mkdir(parents=True)
    (pkg / "tracker.py").write_text(textwrap.dedent(ADD_ONLY_CLASS))
    return root


def test_baseline_round_trip(tmp_path):
    root = _tracker_tree(tmp_path)
    findings = lint_paths([root / "src"], root=root)
    assert _rules(findings) == ["SIM006"]

    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    baseline = load_baseline(baseline_path)
    new, fixed = diff_against_baseline(findings, baseline)
    assert new == [] and fixed == 0

    # A second, unbaselined copy of the registry is a new finding ...
    source = (root / "src" / "tracker.py").read_text()
    (root / "src" / "tracker.py").write_text(
        source + textwrap.dedent(ADD_ONLY_CLASS).replace(
            "Tracker", "OtherTracker"))
    new, fixed = diff_against_baseline(
        lint_paths([root / "src"], root=root), baseline)
    assert len(new) == 1 and fixed == 0

    # ... and fixing the original shows up as a fixed count.
    (root / "src" / "tracker.py").write_text("x = 1\n")
    new, fixed = diff_against_baseline(
        lint_paths([root / "src"], root=root), baseline)
    assert new == [] and fixed == 1


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        load_baseline(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exits_nonzero_on_findings(tmp_path, capsys):
    root = _tracker_tree(tmp_path)
    assert main([str(root / "src"), "--no-baseline"]) == 1
    assert "SIM006" in capsys.readouterr().out


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    root = _tracker_tree(tmp_path)
    (root / "src" / "tracker.py").write_text("x = 1\n")
    assert main([str(root / "src"), "--no-baseline"]) == 0


def test_cli_write_then_check_baseline(tmp_path, capsys):
    root = _tracker_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([str(root / "src"), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert main([str(root / "src"), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


# ----------------------------------------------------------------------
# The repository itself
# ----------------------------------------------------------------------
def test_repo_src_is_clean_against_committed_baseline():
    findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / "simlint_baseline.json")
    new, _fixed = diff_against_baseline(findings, baseline)
    assert new == [], "\n".join(f.render() for f in new)
