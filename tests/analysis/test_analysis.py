"""Unit tests for metrics, report formatting and the hardware cost model."""

import pytest

from repro.analysis.hardware_cost import (
    ChannelCost,
    TechnologyParameters,
    VeniceHardwareCostModel,
    default_components,
)
from repro.analysis.metrics import (
    geometric_mean,
    normalize_to,
    percent_overhead,
    slowdown_versus,
    speedup_versus,
)
from repro.analysis.report import FigureReport, format_table


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_slowdown_and_speedup_are_inverses():
    assert slowdown_versus(200, 100) == pytest.approx(2.0)
    assert speedup_versus(100, 200) == pytest.approx(2.0)
    assert slowdown_versus(150, 100) * speedup_versus(150, 100) == pytest.approx(1.0)


def test_percent_overhead():
    assert percent_overhead(120, 100) == pytest.approx(20.0)
    assert percent_overhead(100, 100) == pytest.approx(0.0)


def test_metric_validation():
    with pytest.raises(ValueError):
        slowdown_versus(100, 0)
    with pytest.raises(ValueError):
        speedup_versus(0, 100)


def test_normalize_to_baseline():
    values = {"a": 10.0, "b": 20.0, "c": 5.0}
    normalised = normalize_to(values, "a")
    assert normalised == {"a": 1.0, "b": 2.0, "c": 0.5}
    with pytest.raises(KeyError):
        normalize_to(values, "missing")


def test_geometric_mean():
    assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table([["a", "1"], ["bbbb", "22"]], header=["name", "value"])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")


def test_figure_report_round_trip():
    report = FigureReport(figure_id="figX", title="demo")
    report.add_series("slowdown", {"cfg1": 2.0, "cfg2": 3.0},
                      reference={"cfg1": 2.5})
    assert report.value("slowdown", "cfg1") == 2.0
    assert report.labels("slowdown") == ["cfg1", "cfg2"]
    text = report.to_text()
    assert "figX" in text and "cfg1" in text and "2.5" in text


def test_figure_report_without_reference():
    report = FigureReport(figure_id="figY", title="demo", notes="a note")
    report.add_series("raw", {"x": 1.0})
    assert "a note" in report.to_text()


# ----------------------------------------------------------------------
# Hardware cost model (Section 7.3)
# ----------------------------------------------------------------------
def test_cost_model_matches_paper_scale():
    model = VeniceHardwareCostModel()
    assert 2.0 <= model.logic_area_mm2() <= 4.0          # paper: 2.73 mm^2
    assert 25.0 <= model.total_sram_kb() <= 45.0          # paper: 32 KB
    assert model.phy_area_mm2() == pytest.approx(3.5)     # paper: ~3.5 mm^2
    assert model.fraction_of_host_die() < 0.03            # paper: ~2 %


def test_qpair_costs_about_twice_crma():
    model = VeniceHardwareCostModel()
    assert 1.5 <= model.qpair_to_crma_logic_ratio() <= 2.5
    # "tens of kilobytes more SRAM"
    assert model.qpair_extra_sram_kb() >= 10.0


def test_more_queue_pairs_cost_more_sram():
    small = VeniceHardwareCostModel(components=default_components(num_queue_pairs=128))
    large = VeniceHardwareCostModel(components=default_components(num_queue_pairs=1024))
    assert large.total_sram_kb() > small.total_sram_kb()


def test_breakdown_covers_all_components():
    model = VeniceHardwareCostModel()
    breakdown = model.breakdown()
    assert set(breakdown) == set(default_components())
    assert sum(breakdown.values()) == pytest.approx(model.logic_area_mm2())


def test_cost_model_validation():
    with pytest.raises(ValueError):
        TechnologyParameters(phy_mm2=0)
    with pytest.raises(ValueError):
        ChannelCost(name="bad", kluts=-1, sram_kb=0)
    with pytest.raises(ValueError):
        VeniceHardwareCostModel(num_phy_lanes=0)
