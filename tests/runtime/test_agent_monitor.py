"""Unit tests for node agents and the Monitor Node."""

import pytest

from repro.fabric.topology import build_mesh3d
from repro.runtime.agent import NodeAgent
from repro.runtime.monitor import AllocationError, MonitorNode
from repro.runtime.tables import LinkStatus, ResourceKind

MB = 1024 * 1024
GB = 1024 * MB


# ----------------------------------------------------------------------
# NodeAgent
# ----------------------------------------------------------------------
def make_agent(node_id=0, capacity=1 * GB, **kwargs):
    return NodeAgent(node_id=node_id, memory_capacity_bytes=capacity, **kwargs)


def test_agent_idle_memory_accounts_for_usage_and_donations():
    agent = make_agent(capacity=1 * GB, reserve_bytes=100 * MB)
    agent.set_local_usage(300 * MB)
    assert agent.idle_memory_bytes() == 1 * GB - 400 * MB
    assert agent.handle_hot_remove(200 * MB)
    assert agent.idle_memory_bytes() == 1 * GB - 600 * MB
    agent.handle_hot_add_back(200 * MB)
    assert agent.donated_bytes == 0


def test_agent_refuses_hot_remove_beyond_idle():
    agent = make_agent(capacity=512 * MB)
    agent.set_local_usage(500 * MB)
    assert agent.handle_hot_remove(100 * MB) is False


def test_agent_heartbeat_contents():
    agent = make_agent(node_id=3, num_accelerators=2, num_nics=1, neighbors=(1, 2))
    report = agent.heartbeat(now_ns=42)
    assert report.node_id == 3
    assert report.timestamp_ns == 42
    assert report.available[ResourceKind.ACCELERATOR] == 2
    assert report.capacity[ResourceKind.NIC] == 1
    assert set(report.link_status) == {1, 2}
    assert all(status is LinkStatus.UP for status in report.link_status.values())


def test_agent_accelerator_and_nic_grants():
    agent = make_agent(num_accelerators=1, num_nics=1)
    assert agent.handle_accelerator_grant()
    assert not agent.handle_accelerator_grant()
    agent.handle_accelerator_release()
    assert agent.handle_accelerator_grant()
    assert agent.handle_nic_grant()
    assert not agent.handle_nic_grant()
    with pytest.raises(ValueError):
        agent.handle_nic_release() or agent.handle_nic_release() or agent.handle_nic_release()


def test_agent_validation():
    with pytest.raises(ValueError):
        NodeAgent(node_id=0, memory_capacity_bytes=0)
    agent = make_agent()
    with pytest.raises(ValueError):
        agent.set_local_usage(-1)
    with pytest.raises(ValueError):
        agent.handle_hot_remove(0)
    with pytest.raises(ValueError):
        agent.handle_hot_add_back(1)


# ----------------------------------------------------------------------
# MonitorNode
# ----------------------------------------------------------------------
def build_monitor(num_agents=8, capacity=1 * GB):
    topology = build_mesh3d((2, 2, 2))
    monitor = MonitorNode(topology)
    for node in range(num_agents):
        monitor.register_agent(NodeAgent(node_id=node, memory_capacity_bytes=capacity,
                                         num_accelerators=1, num_nics=1,
                                         neighbors=tuple(topology.neighbors(node))))
    return monitor


def test_monitor_memory_allocation_prefers_nearest_donor():
    monitor = build_monitor()
    allocation = monitor.request_memory(requester=0, size_bytes=256 * MB)
    assert allocation.hops == 1
    assert allocation.donor in build_mesh3d((2, 2, 2)).neighbors(0)
    assert len(monitor.rat.active()) == 1


def test_monitor_allocation_updates_rrt_availability():
    monitor = build_monitor()
    before = monitor.rrt.total_available(ResourceKind.MEMORY)
    monitor.request_memory(requester=0, size_bytes=256 * MB)
    after = monitor.rrt.total_available(ResourceKind.MEMORY)
    assert after == before - 256 * MB


def test_monitor_release_returns_memory_to_donor():
    monitor = build_monitor()
    allocation = monitor.request_memory(requester=0, size_bytes=256 * MB)
    monitor.release(allocation)
    assert monitor.rat.active() == []
    assert monitor.agent(allocation.donor).donated_bytes == 0


def test_monitor_retries_on_stale_records():
    """A donor whose memory disappeared since the last heartbeat refuses
    the handshake; the MN retries with the next candidate."""
    monitor = build_monitor()
    # Every neighbour of node 0 suddenly has its memory consumed locally,
    # but the MN's RRT still believes it is idle.
    neighbors = build_mesh3d((2, 2, 2)).neighbors(0)
    for neighbor in neighbors:
        monitor.agent(neighbor).set_local_usage(1 * GB)
    allocation = monitor.request_memory(requester=0, size_bytes=128 * MB)
    assert allocation.donor not in neighbors
    assert monitor.handshake_retries >= len(neighbors)


def test_monitor_allocation_failure_when_nothing_available():
    monitor = build_monitor(capacity=256 * MB)
    for node in range(8):
        monitor.agent(node).set_local_usage(256 * MB)
        monitor.collect_heartbeats()
    with pytest.raises(AllocationError):
        monitor.request_memory(requester=0, size_bytes=64 * MB)


def test_monitor_accelerator_and_nic_requests():
    monitor = build_monitor()
    accel = monitor.request_accelerator(requester=0)
    nic = monitor.request_nic(requester=0)
    assert accel.donor != 0
    assert nic.donor != 0
    monitor.release(accel)
    monitor.release(nic)
    assert monitor.rat.active() == []


def test_monitor_unregistered_requester_rejected():
    monitor = build_monitor(num_agents=4)
    with pytest.raises(AllocationError):
        monitor.request_memory(requester=7, size_bytes=1 * MB)


def test_monitor_dead_node_detection():
    monitor = build_monitor()
    monitor.advance_time(10_000_000_000)
    assert monitor.dead_nodes() == list(range(8))
    monitor.collect_heartbeats()
    assert monitor.dead_nodes() == []


def test_monitor_requests_handled_counter():
    monitor = build_monitor()
    monitor.request_memory(0, 1 * MB)
    monitor.request_accelerator(1)
    assert monitor.requests_handled == 2


# ----------------------------------------------------------------------
# Orphaned releases (donor agent gone at release time)
# ----------------------------------------------------------------------
def test_release_with_gone_donor_is_orphaned_not_dropped():
    monitor = build_monitor()
    allocation = monitor.request_memory(requester=0, size_bytes=256 * MB)
    donor = allocation.donor
    agent = monitor.agent(donor)
    monitor.deregister_agent(donor)
    monitor.release(allocation)
    # The RAT record is settled but the donor's books could not be:
    # the bytes are on the orphan ledger, not silently dropped.
    assert monitor.rat.active() == []
    assert monitor.orphaned_releases == 1
    assert monitor.orphaned_amount(donor) == 256 * MB
    assert agent.donated_bytes == 256 * MB
    # Re-registration reconciles: the donor gets its bytes back and
    # the orphan ledger drains.
    monitor.register_agent(agent)
    assert agent.donated_bytes == 0
    assert monitor.orphaned_amount(donor) == 0
    record = monitor.rrt.get(donor, ResourceKind.MEMORY)
    assert record.available == agent.idle_memory_bytes()


def test_orphan_reconciliation_caps_at_the_donation_ledger():
    # A donor that truly rebooted has no donation ledger left: the
    # orphaned bytes must not inflate its advertised capacity.
    monitor = build_monitor()
    allocation = monitor.request_memory(requester=0, size_bytes=128 * MB)
    donor = allocation.donor
    monitor.deregister_agent(donor)
    monitor.release(allocation)
    assert monitor.orphaned_amount(donor) == 128 * MB
    fresh = NodeAgent(node_id=donor, memory_capacity_bytes=1 * GB,
                      neighbors=tuple(build_mesh3d((2, 2, 2)).neighbors(donor)))
    monitor.register_agent(fresh)
    assert fresh.donated_bytes == 0
    assert fresh.idle_memory_bytes() == 1 * GB
    assert monitor.orphaned_amount(donor) == 0


def test_reconcile_without_an_agent_keeps_the_debt():
    monitor = build_monitor()
    allocation = monitor.request_memory(requester=0, size_bytes=64 * MB)
    donor = allocation.donor
    monitor.deregister_agent(donor)
    monitor.release(allocation)
    assert monitor.reconcile_orphaned_releases(donor) == 0
    assert monitor.orphaned_amount(donor) == 64 * MB
