"""Churn engine: campaign determinism, apply/heal, detection latency.

The campaign generator must be a pure function of ``(config, topology)``
-- same seed, same faults, on any machine and either timer backend --
and the engine must leave the fabric clean whenever it stops: every
fault it applied is healed, every timer it installed is cancelled.
Detection is *measured*: a crashed node is found by the heartbeat pump
within one timeout plus a couple of pump periods, never instantly.
"""

import os

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.fabric.topology import build_fat_tree, build_star
from repro.runtime.churn import (
    ChurnConfig,
    ChurnEngine,
    FaultKind,
    generate_campaign,
)
from repro.runtime.fault import FaultHandler
from repro.runtime.tables import LinkStatus


def _scheduler():
    return os.environ.get("SIM_SCHEDULER", "auto")


def _cluster(num_nodes=4, topology="star", scheduler=None):
    return Cluster(ClusterConfig(
        num_nodes=num_nodes, topology=topology,
        transport_backend="event",
        scheduler=scheduler or _scheduler()))


def _engine(cluster, config):
    transport = cluster.event_transport()
    handler = FaultHandler(cluster.monitor)
    return ChurnEngine(transport, cluster.monitor, handler, config)


# ----------------------------------------------------------------------
# Campaign generation
# ----------------------------------------------------------------------
def test_campaign_is_deterministic_for_a_seed():
    topology = build_fat_tree(8, leaf_radix=4, num_spines=2)
    config = ChurnConfig(seed=7, link_flaps=3, router_failures=2)
    assert generate_campaign(config, topology) == \
        generate_campaign(config, topology)


def test_campaign_changes_with_the_seed():
    topology = build_fat_tree(8, leaf_radix=4, num_spines=2)
    first = generate_campaign(ChurnConfig(seed=1), topology)
    second = generate_campaign(ChurnConfig(seed=2), topology)
    assert first != second


def test_campaign_counts_and_bounds():
    topology = build_star(4)
    config = ChurnConfig(seed=3, link_flaps=4, router_failures=2,
                         node_crashes=2, horizon_ns=1_000_000)
    campaign = generate_campaign(config, topology)
    kinds = [event.kind for event in campaign]
    assert kinds.count(FaultKind.LINK_FLAP) == 4
    assert kinds.count(FaultKind.ROUTER_FAIL) == 2
    assert kinds.count(FaultKind.NODE_CRASH) == 2
    # Sorted by injection time; every injection inside the horizon.
    assert campaign == sorted(campaign,
                              key=lambda event: (event.at_ns, event.index))
    assert all(0 < event.at_ns <= config.horizon_ns for event in campaign)
    # One crash per node per campaign.
    crashed = [event.target[0] for event in campaign
               if event.kind is FaultKind.NODE_CRASH]
    assert len(crashed) == len(set(crashed))
    assert all(node in topology.compute_nodes for node in crashed)


def test_campaign_crashes_cap_at_the_fleet_size():
    topology = build_star(4)
    config = ChurnConfig(link_flaps=0, router_failures=0, node_crashes=99)
    campaign = generate_campaign(config, topology)
    assert len(campaign) == len(topology.compute_nodes)


def test_churn_config_validates():
    with pytest.raises(ValueError):
        ChurnConfig(horizon_ns=0)
    with pytest.raises(ValueError):
        ChurnConfig(link_flaps=-1)
    with pytest.raises(ValueError):
        ChurnConfig(flap_duration_ns=0)
    with pytest.raises(ValueError):
        ChurnConfig(heartbeat_timeout_ns=100, heartbeat_period_ns=100)


# ----------------------------------------------------------------------
# Engine apply / heal lifecycle
# ----------------------------------------------------------------------
def test_engine_applies_and_heals_the_whole_campaign():
    cluster = _cluster()
    config = ChurnConfig(seed=5, horizon_ns=2_000_000, link_flaps=2,
                         router_failures=1, node_crashes=1,
                         flap_duration_ns=300_000, router_down_ns=300_000,
                         crash_down_ns=600_000)
    engine = _engine(cluster, config)
    engine.start()
    sim = engine.sim
    sim.run(until=4_000_000)
    engine.stop()
    sim.run_until_idle()
    assert engine.flaps_applied == 2
    assert engine.routers_failed == 1
    assert engine.nodes_crashed == 1
    assert engine.heals_applied == 4
    # The fabric is clean: every link and switch back admin-up.
    transport = cluster.event_transport()
    assert all(link.admin_up for link in transport.fabric.links.values())
    assert all(switch.admin_up
               for switch in transport.fabric.switches.values())


def test_stop_heals_outstanding_faults_early():
    cluster = _cluster()
    config = ChurnConfig(seed=5, horizon_ns=2_000_000, link_flaps=2,
                         router_failures=1, node_crashes=1,
                         flap_duration_ns=300_000, router_down_ns=300_000,
                         crash_down_ns=600_000)
    engine = _engine(cluster, config)
    engine.start()
    sim = engine.sim
    # Stop at the first injection: its heal is still scheduled, so the
    # fault is outstanding and stop() must heal it on the spot.
    first = engine.campaign[0]
    sim.run(until=first.at_ns + 1)
    assert (engine.flaps_applied + engine.routers_failed
            + engine.nodes_crashed) >= 1
    engine.stop()
    transport = cluster.event_transport()
    assert all(link.admin_up for link in transport.fabric.links.values())
    assert all(switch.admin_up
               for switch in transport.fabric.switches.values())
    assert not engine._down_links and not engine._down_routers
    assert not engine._crashed
    # All engine timers were cancelled: the queue drains.
    sim.run_until_idle()


def test_link_flap_reaches_the_tst_and_the_agents():
    cluster = _cluster()
    config = ChurnConfig(seed=5, horizon_ns=2_000_000, link_flaps=1,
                         router_failures=0, node_crashes=0,
                         flap_duration_ns=500_000)
    engine = _engine(cluster, config)
    engine.start()
    sim = engine.sim
    flap = engine.campaign[0]
    node_a, node_b = flap.target
    sim.run(until=flap.at_ns + 1)
    assert cluster.monitor.tst.status(node_a, node_b) is LinkStatus.DOWN
    # Heartbeats during the outage must not heal the TST entry: the
    # endpoint agents' link views were synced with the fault.
    for node in cluster.monitor.registered_nodes:
        cluster.monitor.ingest_heartbeat(
            cluster.monitor.agent(node).heartbeat(cluster.monitor.now_ns))
    assert cluster.monitor.tst.status(node_a, node_b) is LinkStatus.DOWN
    sim.run(until=flap.at_ns + flap.duration_ns + 1)
    assert cluster.monitor.tst.status(node_a, node_b) is LinkStatus.UP
    engine.stop()


# ----------------------------------------------------------------------
# Heartbeat detection on the simulated clock
# ----------------------------------------------------------------------
def _crash_only_config():
    return ChurnConfig(seed=9, horizon_ns=2_000_000, link_flaps=0,
                       router_failures=0, node_crashes=1,
                       crash_down_ns=5_000_000,
                       heartbeat_period_ns=100_000,
                       heartbeat_timeout_ns=400_000)


def test_crash_detected_within_heartbeat_bounds_with_traffic_in_flight():
    cluster = _cluster(num_nodes=8, topology="fat_tree")
    config = _crash_only_config()
    detected = []
    transport = cluster.event_transport()
    handler = FaultHandler(cluster.monitor)
    engine = ChurnEngine(
        transport, cluster.monitor, handler, config,
        on_node_failure=lambda node, plan: detected.append((node, plan)))
    engine.start()
    sim = engine.sim
    crash = engine.campaign[0]
    (victim,) = crash.target
    # Keep reads in flight across the crash window so detection is
    # measured against a busy fabric, not an idle queue.
    pairs = [(src, dst) for src in cluster.node_ids[:4]
             for dst in cluster.node_ids[4:]
             if victim not in (src, dst)]
    while sim.now < crash.at_ns + config.heartbeat_timeout_ns \
            + 3 * config.heartbeat_period_ns:
        ops = [cluster.crma_channel(src, dst).submit_read(
                   64, deadline_ns=300_000) for src, dst in pairs[:3]]
        transport.drive_all(ops)
        sim.run(until=sim.now + config.heartbeat_period_ns)
    assert [node for node, _plan in detected] == [victim]
    latency = engine.detection_latency_ns[victim]
    # The victim's last heartbeat is at most one pump period before the
    # crash; the sweep that finds it runs on period boundaries.
    assert config.heartbeat_timeout_ns - config.heartbeat_period_ns \
        <= latency <= config.heartbeat_timeout_ns \
        + 3 * config.heartbeat_period_ns
    engine.stop()
    sim.run_until_idle()


def test_detection_fires_the_failure_hook_exactly_once():
    cluster = _cluster(num_nodes=8, topology="fat_tree")
    config = _crash_only_config()
    calls = []
    engine = ChurnEngine(
        cluster.event_transport(), cluster.monitor,
        FaultHandler(cluster.monitor), config,
        on_node_failure=lambda node, plan: calls.append(node))
    engine.start()
    sim = engine.sim
    # Run long past detection: many more pump rounds follow the sweep
    # that found the crash, none of which may re-fire the hook.
    sim.run(until=engine.campaign[0].at_ns
            + config.heartbeat_timeout_ns + 10 * config.heartbeat_period_ns)
    assert len(calls) == 1
    assert engine.stats_dict()["recovery_plans"].count(
        f"node{calls[0]}-failure") == 1
    engine.stop()
    sim.run_until_idle()


# ----------------------------------------------------------------------
# Cross-backend determinism of the engine itself
# ----------------------------------------------------------------------
def _campaign_outcome(scheduler):
    cluster = _cluster(num_nodes=8, topology="fat_tree",
                       scheduler=scheduler)
    config = ChurnConfig(seed=13, horizon_ns=2_000_000, link_flaps=2,
                         router_failures=1, node_crashes=1,
                         flap_duration_ns=300_000, router_down_ns=300_000,
                         crash_down_ns=900_000,
                         heartbeat_period_ns=100_000,
                         heartbeat_timeout_ns=400_000)
    engine = _engine(cluster, config)
    engine.start()
    engine.sim.run(until=4_000_000)
    engine.stop()
    engine.sim.run_until_idle()
    return engine.stats_dict()


def test_engine_stats_identical_across_timer_backends():
    assert _campaign_outcome("heap") == _campaign_outcome("calendar")


# ----------------------------------------------------------------------
# Monitor-shard crashes (mn_crash)
# ----------------------------------------------------------------------
def test_mn_crash_campaign_is_deterministic_and_covers_each_shard_once():
    topology = build_fat_tree(16, leaf_radix=4, num_spines=2)
    config = ChurnConfig(seed=11, mn_crashes=4, link_flaps=0,
                         router_failures=0, node_crashes=0)
    first = generate_campaign(config, topology, shard_ids=[0, 1, 2, 3])
    second = generate_campaign(config, topology, shard_ids=[0, 1, 2, 3])
    assert first == second
    crashes = [event for event in first if event.kind is FaultKind.MN_CRASH]
    assert len(crashes) == 4
    # One crash per shard: no shard is double-crashed in one campaign.
    assert sorted(shard for event in crashes
                  for shard in event.target) == [0, 1, 2, 3]


def test_mn_crash_requires_shard_ids():
    topology = build_fat_tree(8, leaf_radix=4, num_spines=2)
    config = ChurnConfig(seed=3, mn_crashes=2, link_flaps=0,
                         router_failures=0, node_crashes=0)
    # Without a sharded monitor there is nothing to crash.
    campaign = generate_campaign(config, topology)
    assert [e for e in campaign if e.kind is FaultKind.MN_CRASH] == []


def test_churn_config_validates_mn_crash_down():
    with pytest.raises(ValueError):
        ChurnConfig(mn_crashes=-1)
    with pytest.raises(ValueError):
        ChurnConfig(mn_crashes=1, mn_crash_down_ns=0)


def test_engine_crashes_promotes_and_rejoins_monitor_shards():
    cluster = Cluster(ClusterConfig(
        num_nodes=8, topology="fat_tree", monitor_shards=2,
        transport_backend="event", scheduler=_scheduler()))
    monitor = cluster.monitor
    shares = [share for batch in cluster.matchmaker.borrow_many(
        [(node, 1024 * 1024) for node in cluster.node_ids])
        for share in batch]
    config = ChurnConfig(seed=9, horizon_ns=3_000_000, link_flaps=0,
                         router_failures=0, node_crashes=0,
                         mn_crashes=2, mn_crash_down_ns=800_000)
    engine = _engine(cluster, config)
    engine.start()
    sim = engine.sim
    sim.run(until=6_000_000)
    engine.stop()
    sim.run_until_idle()
    assert engine.mn_crashes_applied == 2
    # Every crashed primary was detected by the pump and its standby
    # promoted, with a measured (positive) failover latency.
    assert sorted(engine.mn_failover_ns) == [0, 1]
    assert all(latency > 0 for latency in engine.mn_failover_ns.values())
    assert engine.mn_standbys_rejoined == 2
    assert all(monitor.shard_alive(shard_id)
               for shard_id in monitor.shard_ids)
    assert all(monitor.has_standby(shard_id)
               for shard_id in monitor.shard_ids)
    # No allocation was lost across the failovers.
    assert monitor.allocations_lost == 0
    for share in reversed(shares):
        cluster.matchmaker.release(share)
    assert monitor.rat.active() == []
    assert monitor.ledger_balanced()
    stats = engine.stats_dict()
    assert stats["mn_crashes_applied"] == 2
    assert stats["mn_standbys_rejoined"] == 2
    assert set(stats["mn_failover_ns"]) == {"0", "1"}
