"""Unit tests for the Monitor Node's tables (RRT, RAT, TST)."""

import pytest

from repro.runtime.tables import (
    AllocationRecord,
    LinkStatus,
    ResourceAllocationTable,
    ResourceKind,
    ResourceRecord,
    ResourceRegistrationTable,
    TopologyStatusTable,
)

MB = 1024 * 1024


# ----------------------------------------------------------------------
# RRT
# ----------------------------------------------------------------------
def test_rrt_register_and_query():
    rrt = ResourceRegistrationTable()
    rrt.register(ResourceRecord(node_id=1, kind=ResourceKind.MEMORY,
                                capacity=1024 * MB, available=512 * MB))
    record = rrt.get(1, ResourceKind.MEMORY)
    assert record.available == 512 * MB
    assert rrt.get(1, ResourceKind.NIC) is None
    assert rrt.nodes() == [1]


def test_rrt_register_overwrites_existing_record():
    rrt = ResourceRegistrationTable()
    rrt.register(ResourceRecord(node_id=1, kind=ResourceKind.MEMORY,
                                capacity=100, available=100))
    rrt.register(ResourceRecord(node_id=1, kind=ResourceKind.MEMORY,
                                capacity=100, available=40))
    assert rrt.get(1, ResourceKind.MEMORY).available == 40
    assert rrt.total_available(ResourceKind.MEMORY) == 40


def test_rrt_records_of_kind_and_totals():
    rrt = ResourceRegistrationTable()
    for node in range(3):
        rrt.register(ResourceRecord(node_id=node, kind=ResourceKind.ACCELERATOR,
                                    capacity=2, available=1))
    assert len(rrt.records_of_kind(ResourceKind.ACCELERATOR)) == 3
    assert rrt.total_available(ResourceKind.ACCELERATOR) == 3


def test_rrt_stale_node_detection():
    rrt = ResourceRegistrationTable()
    rrt.register(ResourceRecord(node_id=0, kind=ResourceKind.MEMORY, capacity=10,
                                available=10, last_heartbeat_ns=1_000))
    rrt.register(ResourceRecord(node_id=1, kind=ResourceKind.MEMORY, capacity=10,
                                available=10, last_heartbeat_ns=900_000))
    assert rrt.stale_nodes(now_ns=1_000_000, timeout_ns=500_000) == [0]


def test_resource_record_validation():
    with pytest.raises(ValueError):
        ResourceRecord(node_id=0, kind=ResourceKind.MEMORY, capacity=10, available=20)
    with pytest.raises(ValueError):
        ResourceRecord(node_id=0, kind=ResourceKind.MEMORY, capacity=-1, available=0)


# ----------------------------------------------------------------------
# RAT
# ----------------------------------------------------------------------
def test_rat_add_release_and_queries():
    rat = ResourceAllocationTable()
    record = rat.add(AllocationRecord(requester=0, donor=1,
                                      kind=ResourceKind.MEMORY, amount=64 * MB))
    assert record in rat.active()
    assert rat.active_for_requester(0) == [record]
    assert rat.active_for_donor(1) == [record]
    assert rat.allocated_amount(1, ResourceKind.MEMORY) == 64 * MB
    rat.release(record.allocation_id)
    assert rat.active() == []
    with pytest.raises(KeyError):
        rat.release(record.allocation_id)


def test_rat_allocation_ids_unique():
    first = AllocationRecord(requester=0, donor=1, kind=ResourceKind.NIC, amount=1)
    second = AllocationRecord(requester=0, donor=1, kind=ResourceKind.NIC, amount=1)
    assert first.allocation_id != second.allocation_id
    with pytest.raises(ValueError):
        AllocationRecord(requester=0, donor=1, kind=ResourceKind.NIC, amount=0)


# ----------------------------------------------------------------------
# TST
# ----------------------------------------------------------------------
def test_tst_report_and_query_is_order_independent():
    tst = TopologyStatusTable()
    tst.report(0, 1, LinkStatus.UP, now_ns=10)
    assert tst.status(1, 0) is LinkStatus.UP
    assert tst.is_usable(0, 1)


def test_tst_unknown_links_are_down():
    tst = TopologyStatusTable()
    assert tst.status(5, 6) is LinkStatus.DOWN
    assert not tst.is_usable(5, 6)


def test_tst_degraded_links_still_usable():
    tst = TopologyStatusTable()
    tst.report(0, 1, LinkStatus.DEGRADED)
    assert tst.is_usable(0, 1)
    tst.report(0, 1, LinkStatus.DOWN)
    assert not tst.is_usable(0, 1)
    assert len(tst.links()) == 1
