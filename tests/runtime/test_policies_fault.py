"""Unit tests for donor-selection policies and fault handling."""

import pytest

from repro.fabric.topology import build_mesh3d
from repro.runtime.agent import NodeAgent
from repro.runtime.fault import FaultHandler, RecoveryAction
from repro.runtime.monitor import MonitorNode
from repro.runtime.policies import (
    BandwidthAwarePolicy,
    DistanceFirstPolicy,
    LoadBalancedPolicy,
)
from repro.runtime.tables import LinkStatus, ResourceKind

MB = 1024 * 1024
GB = 1024 * MB


def build_monitor(policy=None, capacity=4 * GB):
    topology = build_mesh3d((2, 2, 2))
    monitor = MonitorNode(topology, policy=policy)
    for node in range(8):
        monitor.register_agent(NodeAgent(
            node_id=node, memory_capacity_bytes=capacity,
            num_accelerators=1, num_nics=1,
            neighbors=tuple(topology.neighbors(node))))
    return monitor


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_distance_first_is_the_default_policy():
    monitor = build_monitor()
    assert isinstance(monitor.policy, DistanceFirstPolicy)
    allocation = monitor.request_memory(requester=0, size_bytes=64 * MB)
    assert allocation.hops == 1


def test_distance_first_always_picks_a_neighbour_until_exhausted():
    monitor = build_monitor(policy=DistanceFirstPolicy(), capacity=1 * GB)
    neighbors = set(build_mesh3d((2, 2, 2)).neighbors(0))
    donors = [monitor.request_memory(0, 768 * MB).donor for _ in range(3)]
    assert set(donors) == neighbors


def test_load_balanced_policy_spreads_allocations():
    monitor = build_monitor(policy=LoadBalancedPolicy())
    donors = [monitor.request_memory(requester=0, size_bytes=64 * MB).donor
              for _ in range(6)]
    # Six small requests spread over (at least) the three neighbours
    # instead of piling onto one donor.
    counts = {donor: donors.count(donor) for donor in set(donors)}
    assert max(counts.values()) <= 2
    assert len(counts) >= 3


def test_distance_first_policy_piles_onto_the_nearest_donor():
    monitor = build_monitor(policy=DistanceFirstPolicy())
    donors = [monitor.request_memory(requester=0, size_bytes=64 * MB).donor
              for _ in range(4)]
    # Plenty of capacity on the first candidate, so it takes everything.
    assert len(set(donors)) == 1


def test_bandwidth_aware_policy_avoids_contended_paths():
    monitor = build_monitor(policy=BandwidthAwarePolicy(contention_weight=10.0))
    first = monitor.request_memory(requester=0, size_bytes=64 * MB)
    second = monitor.request_memory(requester=0, size_bytes=64 * MB)
    # The second allocation avoids the donor (and its link) already in use.
    assert second.donor != first.donor


def test_bandwidth_aware_weight_validation():
    with pytest.raises(ValueError):
        BandwidthAwarePolicy(contention_weight=-1)


def test_policies_only_reorder_but_never_invent_candidates():
    topology = build_mesh3d((2, 2, 2))
    monitor = build_monitor()
    candidates = monitor._candidate_donors(0, ResourceKind.MEMORY, 64 * MB)
    for policy in (DistanceFirstPolicy(), LoadBalancedPolicy(), BandwidthAwarePolicy()):
        ordered = policy.order(0, ResourceKind.MEMORY, list(candidates),
                               topology, monitor.rat)
        assert sorted(record.node_id for record in ordered) == \
            sorted(record.node_id for record in candidates)


# ----------------------------------------------------------------------
# Fault handling
# ----------------------------------------------------------------------
def test_link_down_reroutes_when_alternate_path_exists():
    monitor = build_monitor()
    handler = FaultHandler(monitor)
    allocation = monitor.request_memory(requester=0, size_bytes=64 * MB)
    donor = allocation.donor
    plan = handler.handle_link_down(0, donor)
    assert monitor.tst.status(0, donor) is LinkStatus.DOWN
    affected = plan.affected()
    assert len(affected) == 1
    # The 3D mesh always offers an alternate route between two nodes.
    assert affected[0].action is RecoveryAction.REROUTE
    assert affected[0].new_path is not None
    assert (0, donor) not in list(zip(affected[0].new_path, affected[0].new_path[1:]))


def test_link_down_leaves_unrelated_allocations_alone():
    monitor = build_monitor()
    handler = FaultHandler(monitor)
    monitor.request_memory(requester=0, size_bytes=64 * MB)
    plan = handler.handle_link_down(6, 7)
    assert plan.count(RecoveryAction.UNAFFECTED) == 1
    assert plan.affected() == []


def test_node_failure_replaces_the_failed_donor():
    monitor = build_monitor()
    handler = FaultHandler(monitor)
    allocation = monitor.request_memory(requester=0, size_bytes=64 * MB)
    plan = handler.handle_node_failure(allocation.donor)
    assert plan.count(RecoveryAction.REALLOCATE) == 1
    step = plan.affected()[0]
    assert step.new_donor is not None and step.new_donor != allocation.donor
    # The original allocation record is gone; exactly one (the
    # replacement) remains active.
    active = monitor.rat.active()
    assert len(active) == 1
    assert active[0].donor == step.new_donor


def test_node_failure_revokes_what_the_failed_requester_held():
    monitor = build_monitor()
    handler = FaultHandler(monitor)
    allocation = monitor.request_memory(requester=3, size_bytes=64 * MB)
    plan = handler.handle_node_failure(3)
    assert plan.count(RecoveryAction.REVOKE) == 1
    assert monitor.rat.active() == []
    # The donor got its memory back.
    assert monitor.agent(allocation.donor).donated_bytes == 0


def test_heartbeat_sweep_handles_dead_nodes():
    monitor = build_monitor()
    handler = FaultHandler(monitor)
    monitor.request_memory(requester=0, size_bytes=64 * MB)
    # Nothing is stale yet.
    assert handler.check_heartbeats() == []
    # Let every heartbeat expire, then refresh only nodes 0-6: node 7 is dead.
    monitor.advance_time(10_000_000_000)
    for node in range(7):
        monitor.ingest_heartbeat(monitor.agent(node).heartbeat(monitor.now_ns))
    plans = handler.check_heartbeats()
    assert len(plans) == 1
    assert plans[0].event == "node7-failure"
    assert handler.events_handled == 1


# ----------------------------------------------------------------------
# Contention-aware policy
# ----------------------------------------------------------------------
def test_contention_aware_policy_avoids_measured_hot_links():
    from repro.runtime.policies import (ContentionAwarePolicy,
                                        FabricContentionTelemetry)
    # Node 0's neighbours in the mesh are 1, 2 and 4 (all one hop).
    # Saturate the links towards 1 and 2: the policy must prefer 4.
    telemetry = FabricContentionTelemetry(fractions={
        (0, 1): 0.9, (0, 2): 0.8})
    monitor = build_monitor(policy=ContentionAwarePolicy(telemetry=telemetry))
    allocation = monitor.request_memory(requester=0, size_bytes=64 * MB)
    assert allocation.donor == 4


def test_contention_aware_policy_falls_back_to_distance():
    from repro.runtime.policies import ContentionAwarePolicy
    # No telemetry wired: pure distance-first ordering (node-id ties).
    monitor = build_monitor(policy=ContentionAwarePolicy())
    allocation = monitor.request_memory(requester=0, size_bytes=64 * MB)
    assert allocation.hops == 1
    assert allocation.donor == 1


def test_contention_aware_weight_validation_and_registry():
    from repro.runtime.policies import (ContentionAwarePolicy, POLICIES,
                                        make_policy)
    with pytest.raises(ValueError):
        ContentionAwarePolicy(busy_weight=-1)
    assert "contention-aware" in POLICIES
    assert isinstance(make_policy("contention-aware"), ContentionAwarePolicy)


def test_contention_aware_policy_only_reorders_candidates():
    from repro.runtime.policies import (ContentionAwarePolicy,
                                        FabricContentionTelemetry)
    topology = build_mesh3d((2, 2, 2))
    monitor = build_monitor()
    candidates = monitor._candidate_donors(0, ResourceKind.MEMORY, 64 * MB)
    policy = ContentionAwarePolicy(
        telemetry=FabricContentionTelemetry(fractions={(0, 1): 1.0}))
    ordered = policy.order(0, ResourceKind.MEMORY, list(candidates),
                           topology, monitor.rat)
    assert sorted(record.node_id for record in ordered) == \
        sorted(record.node_id for record in candidates)
