"""Sharded, replicated Monitor Node: partitioning, failover, replay.

The sharded MN must partition the runtime tables by fat-tree leaf,
plan batches across shards without double-booking, replicate every
commit to the standby, surface a crashed primary as a typed
:class:`ShardUnavailableError` (queue intact), promote the standby
with exactly-once replay of in-flight batch tickets, buffer releases
that arrive while the shard is down, and keep the fleet's donor byte
ledgers balanced through all of it -- including mid-batch crashes in
both windows (between queue and plan; between plan and execution) on
a sanitized event-backed cluster.
"""

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.fabric.topology import build_fat_tree, build_star
from repro.runtime.agent import NodeAgent
from repro.runtime.monitor import AllocationError
from repro.runtime.shard import (
    ShardedMonitor,
    ShardUnavailableError,
    leaf_groups,
)
from repro.runtime.tables import ResourceKind

MB = 1024 * 1024
GB = 1024 * MB


def make_sharded(num_nodes=8, num_shards=2, capacity=1 * GB,
                 leaf_radix=4):
    topology = build_fat_tree(num_nodes, leaf_radix=leaf_radix)
    monitor = ShardedMonitor(topology, num_shards=num_shards)
    for node_id in topology.compute_nodes:
        agent = NodeAgent(node_id=node_id, memory_capacity_bytes=capacity,
                          neighbors=tuple(topology.neighbors(node_id)))
        monitor.register_agent(agent)
    monitor.collect_heartbeats()
    return monitor


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_leaf_groups_partition_the_fat_tree():
    topology = build_fat_tree(16, leaf_radix=4)
    groups = leaf_groups(topology)
    assert len(groups) == 4
    assert sorted(node for group in groups for node in group) == list(range(16))
    assert all(len(group) == 4 for group in groups)


def test_shard_count_is_clamped_to_the_leaf_count():
    topology = build_fat_tree(8, leaf_radix=4)
    assert ShardedMonitor(topology, num_shards=64).num_shards == 2
    assert ShardedMonitor(topology, num_shards=1).num_shards == 1
    # Default: one shard per leaf.
    assert ShardedMonitor(topology).num_shards == 2


def test_every_node_is_owned_by_exactly_one_shard():
    monitor = make_sharded(num_nodes=16, num_shards=4)
    owners = {node: monitor.shard_of(node) for node in range(16)}
    assert set(owners.values()) == set(monitor.shard_ids)
    for shard in monitor.shards:
        members = [node for node, owner in owners.items()
                   if owner == shard.shard_id]
        # A shard's primary RRT advertises exactly its own members.
        assert shard.live.rrt.nodes() == sorted(members)


def test_star_topology_collapses_to_a_single_shard():
    topology = build_star(4)
    monitor = ShardedMonitor(topology, num_shards=4)
    assert monitor.num_shards == 1


# ----------------------------------------------------------------------
# Routing and cross-shard planning
# ----------------------------------------------------------------------
def test_requests_spill_to_foreign_shards_when_home_is_dry():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    # Drain the requester's whole home leaf (nodes 0-3 share shard 0).
    for node in range(4):
        agent = monitor.agent(node)
        agent.set_local_usage(agent.memory_capacity_bytes)
    monitor.collect_heartbeats()
    allocation = monitor.request_memory(0, 64 * MB)
    assert monitor.shard_of(allocation.donor) != monitor.shard_of(0)
    monitor.release(allocation)
    assert monitor.rat.active() == []


def test_batch_plan_never_double_books_across_shards():
    monitor = make_sharded(num_nodes=8, num_shards=2, capacity=1 * GB)
    for node in range(8):
        agent = monitor.agent(node)
        agent.set_local_usage(agent.memory_capacity_bytes - 100 * MB)
    monitor.collect_heartbeats()
    for requester in range(6):
        monitor.queue_memory_request(requester, 100 * MB)
    entries = monitor.plan_queued_requests()
    booked = {}
    for entry in entries:
        for donor, take in entry.plan:
            assert donor != entry.requester
            booked[donor] = booked.get(donor, 0) + take
    assert all(amount <= 100 * MB for amount in booked.values())


def test_batch_plan_requeues_untouched_tickets_on_shortfall():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    for node in range(8):
        agent = monitor.agent(node)
        agent.set_local_usage(agent.memory_capacity_bytes - 100 * MB)
    monitor.collect_heartbeats()
    ok = monitor.queue_memory_request(0, 50 * MB)
    bad = monitor.queue_memory_request(1, 10 * GB)
    later = monitor.queue_memory_request(2, 50 * MB)
    with pytest.raises(AllocationError):
        monitor.plan_queued_requests()
    # The failed request is dropped; everything else is re-queued in
    # FIFO order and plans cleanly on the next attempt.
    assert monitor.queued_requests == 2
    entries = monitor.plan_queued_requests()
    assert [entry.ticket for entry in entries] == [ok, later]
    assert bad not in [entry.ticket for entry in entries]


# ----------------------------------------------------------------------
# Crash, typed refusal, promotion, exactly-once replay
# ----------------------------------------------------------------------
def test_crash_surfaces_as_typed_error_with_queue_intact():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    monitor.queue_memory_request(0, 8 * MB)
    monitor.queue_memory_request(5, 8 * MB)
    monitor.crash_primary(0)
    assert not monitor.shard_alive(0)
    with pytest.raises(ShardUnavailableError):
        monitor.plan_queued_requests()
    assert monitor.queued_requests == 2
    # Unpinned single requests degrade instead of failing: a foreign
    # shard serves the borrow while the home primary is down.
    allocation = monitor.request_memory(0, 8 * MB)
    assert monitor.shard_alive(monitor.shard_of(allocation.donor))
    # Pinned requests towards the dead shard stay refused, typed.
    with pytest.raises(ShardUnavailableError):
        monitor.request_memory(5, 8 * MB, donor=0)


def test_promotion_replays_inflight_tickets_exactly_once():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    first = monitor.queue_memory_request(0, 8 * MB)
    second = monitor.queue_memory_request(5, 8 * MB)
    entries = monitor.plan_queued_requests()
    assert sorted(monitor.coordinator.inflight_tickets) == [first, second]
    # Primary of shard 0 dies after planning, before execution.
    monitor.crash_primary(0)
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    promoted = monitor.check_failover()
    assert [shard_id for shard_id, _latency in promoted] == [0]
    assert monitor.tickets_replayed == 2
    # The replayed requests are back on the queue under their original
    # tickets, and the in-flight registry is empty (exactly once).
    assert monitor.queued_requests == 2
    assert monitor.coordinator.inflight_tickets == []
    replanned = monitor.plan_queued_requests()
    assert sorted(entry.ticket for entry in replanned) == [first, second]
    # A second failover sweep finds nothing to do.
    assert monitor.check_failover() == []
    assert monitor.tickets_replayed == 2
    for entry in replanned:
        monitor.complete_ticket(entry.ticket)
    assert monitor.coordinator.inflight_tickets == []


def test_committed_chunks_of_replayed_tickets_are_unwound():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    ticket = monitor.queue_memory_request(0, 8 * MB)
    (entry,) = monitor.plan_queued_requests()
    donor, amount = entry.plan[0]
    # The caller executes the first (and only) chunk as a pinned
    # allocation, then the donor's shard primary dies before the
    # ticket completes.
    monitor.request_memory(entry.requester, amount, donor=donor)
    assert monitor.rat.active_for_requester(0) != []
    monitor.crash_primary(monitor.shard_of(donor))
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    monitor.check_failover()
    # The half-committed chunk was released on the promoted standby's
    # books and the donor's byte ledger settled; the request is queued
    # again for a clean re-plan.
    assert monitor.rat.active() == []
    assert monitor.agent(donor).donated_bytes == 0
    assert monitor.coordinator.replayed_chunks_unwound == 1
    assert monitor.queued_requests == 1
    assert monitor.plan_queued_requests()[0].ticket == ticket
    assert monitor.ledger_balanced()


def test_release_while_shard_down_is_buffered_and_recovered():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    allocation = monitor.request_memory(0, 16 * MB)
    donor = allocation.donor
    owner = monitor.shard_of(donor)
    monitor.crash_primary(owner)
    # The borrower returns the bytes while the owning primary is down:
    # the release is buffered, not lost and not silently dropped.
    monitor.release(allocation)
    assert monitor.agent(donor).donated_bytes == 16 * MB
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    monitor.check_failover()
    assert monitor.agent(donor).donated_bytes == 0
    assert monitor.rat.active() == []
    assert monitor.allocations_lost == 0
    assert monitor.ledger_balanced()


def test_standby_rebuilds_after_rejoin_and_survives_a_second_crash():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    allocation = monitor.request_memory(0, 16 * MB)
    shard_id = monitor.shard_of(allocation.donor)
    monitor.crash_primary(shard_id)
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    monitor.check_failover()
    assert monitor.shard_alive(shard_id)
    assert not monitor.has_standby(shard_id)
    monitor.rejoin_standby(shard_id)
    assert monitor.has_standby(shard_id)
    # Crash the promoted primary too: the rebuilt standby must carry
    # the full allocation state forward.
    monitor.crash_primary(shard_id)
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    monitor.check_failover()
    assert monitor.shard_alive(shard_id)
    monitor.release(allocation)
    assert monitor.rat.active() == []
    assert monitor.allocations_lost == 0
    assert monitor.ledger_balanced()


def test_stats_dict_is_canonical_json():
    monitor = make_sharded(num_nodes=8, num_shards=2)
    monitor.request_memory(0, 8 * MB)
    first = json.dumps(monitor.stats_dict(), sort_keys=True)
    second = json.dumps(monitor.stats_dict(), sort_keys=True)
    assert first == second
    assert "allocations_lost" in json.loads(first)


# ----------------------------------------------------------------------
# Mid-batch crash windows on a sanitized event-backed cluster
# ----------------------------------------------------------------------
def _sharded_cluster():
    return Cluster(ClusterConfig(num_nodes=8, topology="fat_tree",
                                 monitor_shards=2,
                                 transport_backend="event",
                                 sanitize=True))


def _audit_clean(cluster):
    monitor = cluster.monitor
    assert monitor.allocations_lost == 0
    assert monitor.rat.active() == []
    assert monitor.ledger_balanced()
    for node_id in cluster.node_ids:
        assert cluster.node(node_id).agent.donated_bytes == 0
    cluster.event_transport().check_packet_lifecycle()


def test_mn_crash_between_queue_and_plan_replays_exactly_once():
    cluster = _sharded_cluster()
    monitor = cluster.monitor
    matchmaker = cluster.matchmaker
    requests = [(node, 1 * MB) for node in cluster.node_ids]
    tickets = matchmaker.queue_requests(requests)
    # Window 1: the primary dies after the batch is queued, before it
    # is planned.
    monitor.crash_primary(0)
    with pytest.raises(ShardUnavailableError):
        matchmaker.plan_queued()
    assert monitor.queued_requests == len(requests)
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    monitor.check_failover()
    # Nothing was in flight yet, so nothing replays -- the queued
    # batch simply plans on the promoted standby.
    assert monitor.tickets_replayed == 0
    batches = matchmaker.borrow_queued()
    planned = [entry for batch in batches for entry in batch]
    assert len(batches) == len(requests)
    assert sorted(t for t in tickets) == sorted(tickets)
    for batch in reversed(batches):
        for share in reversed(batch):
            matchmaker.release(share)
    _audit_clean(cluster)
    assert planned  # the batch really allocated


def test_mn_crash_between_plan_and_allocation_replays_exactly_once():
    cluster = _sharded_cluster()
    monitor = cluster.monitor
    matchmaker = cluster.matchmaker
    requests = [(node, 1 * MB) for node in cluster.node_ids]
    tickets = matchmaker.queue_requests(requests)
    entries = matchmaker.plan_queued()
    assert sorted(monitor.coordinator.inflight_tickets) == sorted(tickets)
    # Window 2: the primary dies after planning, before the per-chunk
    # pinned allocations execute.
    monitor.crash_primary(0)
    with pytest.raises(ShardUnavailableError):
        matchmaker.execute_plan(entries)
    # Partial shares were unwound; the tickets are still in flight.
    assert matchmaker.shares == []
    assert sorted(monitor.coordinator.inflight_tickets) == sorted(tickets)
    monitor.advance_time(10 * monitor.heartbeat_timeout_ns)
    monitor.check_failover()
    assert monitor.tickets_replayed == len(requests)
    assert monitor.coordinator.inflight_tickets == []
    # The replayed batch executes once, under the original tickets.
    batches = matchmaker.borrow_queued()
    assert len(batches) == len(requests)
    assert monitor.tickets_replayed == len(requests)  # not replayed again
    for batch in reversed(batches):
        for share in reversed(batch):
            matchmaker.release(share)
    _audit_clean(cluster)
