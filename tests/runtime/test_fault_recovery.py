"""Recovery-path tests: link-up, release ordering, dedup, node return.

Covers the churn-facing half of :class:`FaultHandler`: clearing TST
state when a link heals, settling the failed grant's books *before*
planning its replacement (the full-occupancy swap), skipping
already-handled dead nodes on periodic sweeps, and reinstating a
recovered node's written-off resources.
"""

import pytest

from repro.fabric.topology import build_mesh3d, build_star
from repro.runtime.agent import NodeAgent
from repro.runtime.fault import FaultHandler, RecoveryAction
from repro.runtime.monitor import AllocationError, MonitorNode
from repro.runtime.tables import LinkStatus, ResourceKind

MB = 1024 * 1024
GB = 1024 * MB


def build_monitor(topology, capacity=4 * GB):
    monitor = MonitorNode(topology)
    for node in topology.compute_nodes:
        monitor.register_agent(NodeAgent(
            node_id=node, memory_capacity_bytes=capacity,
            num_accelerators=1, num_nics=1,
            neighbors=tuple(topology.neighbors(node))))
    return monitor


# ----------------------------------------------------------------------
# handle_link_up
# ----------------------------------------------------------------------
def test_link_up_clears_tst_state():
    monitor = build_monitor(build_mesh3d((2, 2, 2)))
    handler = FaultHandler(monitor)
    handler.handle_link_down(0, 1)
    assert monitor.tst.status(0, 1) is LinkStatus.DOWN
    plan = handler.handle_link_up(0, 1)
    assert monitor.tst.status(0, 1) is LinkStatus.UP
    assert plan.event == "link(0,1)-up"
    assert plan.steps == []
    assert handler.events_handled == 2


def test_link_up_restores_preferred_routes():
    # Down every link out of node 0: no donor is reachable, so the
    # request fails.  Healing one link restores exactly the donors
    # behind it (distance-first picks the now-reachable neighbour).
    topology = build_mesh3d((2, 2, 2))
    monitor = build_monitor(topology)
    handler = FaultHandler(monitor)
    for neighbor in topology.neighbors(0):
        handler.handle_link_down(0, neighbor)
    with pytest.raises(AllocationError):
        monitor.request_memory(0, 64 * MB)
    handler.handle_link_up(0, 1)
    allocation = monitor.request_memory(0, 64 * MB)
    assert allocation.donor == 1


# ----------------------------------------------------------------------
# Release-before-replace ordering at full occupancy
# ----------------------------------------------------------------------
def test_full_occupancy_link_down_swaps_instead_of_revoking():
    # Star fleet at 100% occupancy: every node's memory is borrowed by
    # another node (X<-D, R<-X, S<-R, D<-S in a ring of grants).  The
    # hub link to X then fails, cutting X off entirely:
    #
    # * X's own grant (from D) is unrecoverable -> REVOKE, and its
    #   release puts D's capacity back in the RRT;
    # * R's grant (donor X) can then be swapped one-for-one onto the
    #   freed D -> REALLOCATE.
    #
    # The pre-fix ordering never released the revoked grant, so D's
    # capacity stayed booked and R was spuriously revoked too.
    topology = build_star(4)
    hub = topology.router_nodes[0]
    capacity = 1 * GB
    monitor = build_monitor(topology, capacity=capacity)
    handler = FaultHandler(monitor)
    grants = {}
    for requester, donor in ((0, 1), (2, 0), (3, 2), (1, 3)):
        grants[requester] = monitor.request_memory(requester, capacity,
                                                   donor=donor)
    assert monitor.rrt.total_available(ResourceKind.MEMORY) == 0

    plan = handler.handle_link_down(hub, 0)

    assert plan.count(RecoveryAction.REVOKE) == 1
    assert plan.count(RecoveryAction.REALLOCATE) == 1
    revoked = [step for step in plan.steps
               if step.action is RecoveryAction.REVOKE]
    swapped = [step for step in plan.steps
               if step.action is RecoveryAction.REALLOCATE]
    # X (node 0) lost its grant; R (node 2) swapped onto the freed D.
    assert revoked[0].allocation.requester == 0
    assert swapped[0].allocation.requester == 2
    assert swapped[0].new_donor == 1


def test_full_occupancy_node_crash_swaps_instead_of_revoking():
    # Same ring of grants on a mesh; the crashed node N is both a
    # requester (from D) and a donor (to R).  Settling N's own grant
    # first frees D, so R's donor-loss is a one-for-one swap.
    topology = build_mesh3d((2, 2, 2))
    capacity = 1 * GB
    monitor = build_monitor(topology, capacity=capacity)
    handler = FaultHandler(monitor)
    # N=0 borrows everything from D=1; R=2 borrows everything from N.
    ring = ((0, 1), (2, 0), (3, 2), (4, 3), (5, 4), (6, 5), (7, 6), (1, 7))
    for requester, donor in ring:
        monitor.request_memory(requester, capacity, donor=donor)
    assert monitor.rrt.total_available(ResourceKind.MEMORY) == 0

    plan = handler.handle_node_failure(0)

    swapped = [step for step in plan.steps
               if step.action is RecoveryAction.REALLOCATE]
    assert len(swapped) == 1
    assert swapped[0].allocation.requester == 2
    assert swapped[0].new_donor == 1


def test_crash_without_in_place_reallocation_just_revokes():
    # reallocate_on_node_failure=False leaves re-provisioning to a
    # fleet-level re-borrower: donor-loss steps come back REVOKE even
    # when replacement capacity exists.
    monitor = build_monitor(build_mesh3d((2, 2, 2)))
    handler = FaultHandler(monitor, reallocate_on_node_failure=False)
    monitor.request_memory(2, 64 * MB, donor=0)
    plan = handler.handle_node_failure(0)
    assert plan.count(RecoveryAction.REALLOCATE) == 0
    assert plan.count(RecoveryAction.REVOKE) == 1
    # The revoked grant's RAT record is gone, so a re-borrower can
    # request afresh without double-booking.
    assert monitor.rat.active() == []


# ----------------------------------------------------------------------
# Heartbeat sweep dedup + node recovery
# ----------------------------------------------------------------------
def _silence(monitor, node_id):
    """Stop one node's heartbeats by ageing it past the timeout."""
    monitor.advance_time(monitor.heartbeat_timeout_ns + 1)
    for node in monitor.registered_nodes:
        if node != node_id:
            monitor.ingest_heartbeat(
                monitor.agent(node).heartbeat(monitor.now_ns))


def test_heartbeat_sweep_handles_each_failure_once():
    monitor = build_monitor(build_mesh3d((2, 2, 2)))
    handler = FaultHandler(monitor)
    _silence(monitor, 3)
    first = handler.check_heartbeats()
    assert [plan.event for plan in first] == ["node3-failure"]
    # The node is still silent on the next sweep, but already handled:
    # a periodic pump must not re-revoke it every period.
    _silence(monitor, 3)
    assert handler.check_heartbeats() == []
    assert handler.events_handled == 1


def test_node_recovery_reinstates_resources_and_rearms_detection():
    monitor = build_monitor(build_mesh3d((2, 2, 2)))
    handler = FaultHandler(monitor)
    _silence(monitor, 3)
    handler.check_heartbeats()
    record = monitor.rrt.get(3, ResourceKind.MEMORY)
    assert record.available == 0  # written off

    handler.handle_node_recovery(3)
    record = monitor.rrt.get(3, ResourceKind.MEMORY)
    assert record.available > 0
    # The node can donate again...
    allocation = monitor.request_memory(2, 64 * MB, donor=3)
    assert allocation.donor == 3
    # ...and a later crash is detected afresh, not swallowed by dedup.
    _silence(monitor, 3)
    plans = handler.check_heartbeats()
    assert [plan.event for plan in plans] == ["node3-failure"]


def test_node_recovery_settles_orphaned_releases():
    # A requester crash releases its grant while the donor's agent is
    # gone (migrated off): the bytes land on the orphan ledger, and the
    # donor's recovery through the fault handler settles them.
    topology = build_mesh3d((2, 2, 2))
    monitor = build_monitor(topology)
    handler = FaultHandler(monitor, reallocate_on_node_failure=False)
    allocation = monitor.request_memory(requester=0, size_bytes=256 * MB)
    donor = allocation.donor
    agent = monitor.agent(donor)
    monitor.deregister_agent(donor)
    handler.handle_node_failure(0)
    assert monitor.rat.active() == []
    assert monitor.orphaned_amount(donor) == 256 * MB
    assert agent.donated_bytes == 256 * MB
    # The donor reconnects (agent adopted for handshakes, no heartbeat
    # yet); its recovery reconciles the debt and re-advertises.
    monitor.adopt_agent(agent)
    handler.handle_node_recovery(donor)
    assert agent.donated_bytes == 0
    assert monitor.orphaned_amount(donor) == 0
    record = monitor.rrt.get(donor, ResourceKind.MEMORY)
    assert record.available == agent.idle_memory_bytes()
