"""Unit tests for the cluster subsystem (fleet, paths, matchmaker)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, ClusterLatencyCache
from repro.core.channels.path import CachedFabricPath, FabricPath, size_class
from repro.runtime.tables import ResourceKind

MB = 1024 * 1024


# ----------------------------------------------------------------------
# Construction over the configurable topologies
# ----------------------------------------------------------------------
def test_cluster_builds_over_every_topology():
    for config in (
        ClusterConfig(num_nodes=2, topology="direct_pair"),
        ClusterConfig(num_nodes=6, topology="star"),
        ClusterConfig(num_nodes=16, topology="fat_tree"),
        ClusterConfig(num_nodes=8, topology="mesh3d", mesh_dims=(2, 2, 2)),
    ):
        cluster = Cluster(config)
        assert cluster.num_nodes == config.num_nodes
        assert cluster.monitor.registered_nodes == cluster.node_ids


def test_cluster_rejects_unknown_topology_and_policy():
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(num_nodes=4, topology="ring"))
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(num_nodes=4, policy="nearest-neighbour"))


def test_shared_cache_instance_is_not_replaced():
    # Regression: an empty cache has len() == 0 and is falsy; the
    # constructor must still adopt it rather than allocate a new one.
    cache = ClusterLatencyCache()
    cluster = Cluster(ClusterConfig(num_nodes=4), latency_cache=cache)
    assert cluster.latency_cache is cache
    cluster.path_between(0, 1).one_way_latency_ns(64)
    assert cache.lookups == 1


# ----------------------------------------------------------------------
# Router-aware cached paths
# ----------------------------------------------------------------------
def test_fat_tree_paths_charge_router_crossings():
    cluster = Cluster(ClusterConfig(num_nodes=16, leaf_radix=4))
    same_leaf = cluster.path_between(0, 1)
    cross_leaf = cluster.path_between(0, 15)
    assert same_leaf.external_router_count == 1
    assert cross_leaf.external_router_count == 3
    assert (cross_leaf.one_way_latency_ns(64)
            > same_leaf.one_way_latency_ns(64))


def test_pair_cluster_path_matches_seed_point_to_point_model():
    cluster = Cluster(ClusterConfig(num_nodes=2, topology="direct_pair"))
    path = cluster.path_between(0, 1)
    plain = FabricPath(fabric=cluster.venice.fabric, hops=1)
    assert path.external_router is None
    assert path.one_way_latency_ns(64) == plain.one_way_latency_ns(64)


def test_cached_path_matches_uncached_at_size_class_boundaries():
    cluster = Cluster(ClusterConfig(num_nodes=8))
    cached = cluster.path_between(0, 1)
    plain = FabricPath(fabric=cluster.venice.fabric, hops=cached.hops,
                       external_router=cached.external_router,
                       external_router_count=cached.external_router_count)
    for size in (8, 64, 4096):
        assert size_class(size) == size
        assert cached.one_way_latency_ns(size) == plain.one_way_latency_ns(size)
        assert cached.serialization_ns(size) == plain.serialization_ns(size)


def test_cached_path_variants_keep_type_and_cache():
    cluster = Cluster(ClusterConfig(num_nodes=16))
    path = cluster.path_between(0, 1)
    from repro.core.config import ChannelPlacement
    off_chip = path.with_placement(ChannelPlacement.OFF_CHIP)
    assert isinstance(off_chip, CachedFabricPath)
    assert off_chip.cache is cluster.latency_cache
    assert isinstance(path.with_hops(2), CachedFabricPath)
    assert isinstance(path.with_router(), CachedFabricPath)


def test_size_class_rounds_up_to_powers_of_two():
    assert size_class(0) == 8
    assert size_class(8) == 8
    assert size_class(9) == 16
    assert size_class(4096) == 4096
    assert size_class(4097) == 8192
    with pytest.raises(ValueError):
        size_class(-1)


def test_cache_hits_across_clusters_of_different_sizes():
    cache = ClusterLatencyCache()
    for num_nodes in (4, 8, 16):
        cluster = Cluster(ClusterConfig(num_nodes=num_nodes),
                          latency_cache=cache)
        cluster.path_between(0, 1).one_way_latency_ns(64)
    # Same route shape in every cluster: one miss, then hits.
    assert cache.misses == 1
    assert cache.hits == 2
    assert cache.hit_rate == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# Matchmaker
# ----------------------------------------------------------------------
def test_matchmaker_memory_share_roundtrip():
    cluster = Cluster(ClusterConfig(num_nodes=8, policy="load-balanced"))
    [share] = cluster.matchmaker.borrow_memory(0, 32 * MB)
    assert share.kind is ResourceKind.MEMORY
    assert share.donor != 0
    assert cluster.node(share.donor).donated_memory_bytes == 32 * MB
    assert cluster.node(0).borrowed_memory_bytes == 32 * MB
    assert share.channel.read_latency_ns(64) > 0
    # The matchmaker goes through the system front door, so the two
    # grant-tracking layers stay in sync.
    assert cluster.system.grants == [share.grant]
    assert isinstance(share.grant.channel.path, CachedFabricPath)
    cluster.matchmaker.release(share)
    assert share.released
    assert cluster.matchmaker.shares == []
    assert cluster.system.grants == []
    assert cluster.node(share.donor).donated_memory_bytes == 0
    with pytest.raises(ValueError):
        cluster.matchmaker.release(share)


def test_matchmaker_accelerator_and_nic_shares():
    cluster = Cluster(ClusterConfig(num_nodes=4))
    accel = cluster.matchmaker.borrow_accelerator(1)
    nic = cluster.matchmaker.borrow_nic(2)
    assert accel.target.is_remote
    assert accel.target.task_latency_ns(4096, 4096, 512) > 0
    assert nic.vnic.throughput_gbps(256) > 0
    assert {share.kind for share in cluster.matchmaker.shares} == {
        ResourceKind.ACCELERATOR, ResourceKind.NIC}
    cluster.matchmaker.release_all()
    assert cluster.matchmaker.shares == []


def test_provision_fleet_gives_every_node_a_distinct_donor_share():
    cluster = Cluster(ClusterConfig(num_nodes=16, policy="load-balanced"))
    shares = cluster.matchmaker.provision_fleet(memory_bytes_per_node=4 * MB)
    assert len(shares) == 16
    assert [share.requester for share in shares] == cluster.node_ids
    for share in shares:
        assert share.donor != share.requester
    # Load balancing: every node donates exactly one share.
    donors = sorted(share.donor for share in shares)
    assert donors == cluster.node_ids


def test_provision_fleet_full_resource_mix():
    cluster = Cluster(ClusterConfig(num_nodes=4, policy="load-balanced"))
    shares = cluster.matchmaker.provision_fleet(
        memory_bytes_per_node=1 * MB, accelerators_per_node=1,
        nics_per_node=1)
    assert len(shares) == 12
    assert len(cluster.matchmaker.shares_of_kind(ResourceKind.MEMORY)) == 4
    assert len(cluster.matchmaker.shares_of_kind(ResourceKind.ACCELERATOR)) == 4
    assert len(cluster.matchmaker.shares_of_kind(ResourceKind.NIC)) == 4
    cluster.matchmaker.release_all()
    for node_id in cluster.node_ids:
        agent = cluster.node(node_id).agent
        assert agent.donated_bytes == 0
        assert agent.accelerators_donated == 0
        assert agent.nics_donated == 0
