"""Acceptance tests for the fig_cluster_scaling sweep."""

import time

from repro.experiments.fig_cluster_scaling import (
    ClusterScalingConfig,
    run_fig_cluster_scaling,
)


def test_16_node_sweep_fast_monotonic_and_cache_effective():
    config = ClusterScalingConfig(node_counts=(2, 4, 8, 16))
    start = time.monotonic()
    report = run_fig_cluster_scaling(config)
    elapsed = time.monotonic() - start
    assert elapsed < 60.0

    # Remote-read latency is monotonically non-decreasing in hop count.
    by_hops = list(report.series["remote_read_latency_ns_by_hops"].values())
    assert len(by_hops) >= 2
    assert all(later >= earlier for earlier, later in zip(by_hops, by_hops[1:]))

    # The shared latency cache served the sweep.
    cache = report.series["latency_cache"]
    assert cache["hit_rate_percent"] > 90.0
    assert cache["lookups"] > 100


def test_sweep_reports_degradation_relative_to_pair():
    report = run_fig_cluster_scaling(
        ClusterScalingConfig(node_counts=(2, 4, 16)))
    latency = report.series["remote_read_latency_ns"]
    assert list(latency) == ["2_nodes", "4_nodes", "16_nodes"]
    # Any fat-tree cluster pays more per read than the direct pair...
    assert latency["16_nodes"] > latency["2_nodes"]
    degradation = report.series["latency_degradation_percent_vs_baseline"]
    assert degradation["2_nodes"] == 0.0
    assert all(value >= 0.0 for value in degradation.values())
    # ...and bulk throughput degrades accordingly.
    throughput = report.series["bulk_throughput_gbps"]
    assert throughput["16_nodes"] < throughput["2_nodes"]


def test_sweep_scales_to_64_nodes():
    report = run_fig_cluster_scaling(
        ClusterScalingConfig(node_counts=(2, 64), reads_per_share=4))
    assert "64_nodes" in report.series["remote_read_latency_ns"]
    # 64 nodes over radix-4 leaves guarantees cross-leaf routes exist.
    assert "4_hops" in report.series["remote_read_latency_ns_by_hops"]
