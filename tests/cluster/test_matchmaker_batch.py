"""Batched matchmaking: MN request queue + borrow_many + touch_shares.

A batch of borrow requests must be planned against shared capacity as a
whole (no donor double-booking), keep the single-donor-then-spill
semantics of the unbatched path, unwind completely on failure, and --
on an event-backed cluster -- drive every borrower's first remote
access concurrently over the fleet fabric.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime.monitor import AllocationError, BatchPlanError

MB = 1024 * 1024


def _limit_idle_memory(cluster, idle_bytes_by_node):
    """Pin each node's donatable memory by booking local usage."""
    for node_id, idle in idle_bytes_by_node.items():
        agent = cluster.node(node_id).agent
        agent.set_local_usage(agent.memory_capacity_bytes - idle)
    cluster.monitor.collect_heartbeats()


# ----------------------------------------------------------------------
# MN request queue
# ----------------------------------------------------------------------
def test_queue_validates_and_counts():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    monitor = cluster.monitor
    assert monitor.queued_requests == 0
    first = monitor.queue_memory_request(0, 8 * MB)
    second = monitor.queue_memory_request(1, 8 * MB)
    assert second > first
    assert monitor.queued_requests == 2
    with pytest.raises(AllocationError):
        monitor.queue_memory_request(99, 8 * MB)
    with pytest.raises(AllocationError):
        monitor.queue_memory_request(0, 0)
    entries = monitor.plan_queued_requests()
    assert monitor.queued_requests == 0
    assert [entry.ticket for entry in entries] == [first, second]
    assert all(len(entry.plan) == 1 for entry in entries)


def test_plan_drops_only_the_failed_ticket_and_requeues_the_rest():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 10 * MB for n in cluster.node_ids})
    cluster.monitor.queue_memory_request(0, 500 * MB)
    with pytest.raises(AllocationError):
        cluster.monitor.plan_queued_requests()
    # The lone (failed) request is dropped; nothing remains queued.
    assert cluster.monitor.queued_requests == 0


def test_mid_batch_failure_requeues_untouched_tickets():
    # A shortfall halfway through the batch must not eat the whole
    # queue: the failed ticket is dropped, everything else -- including
    # already-planned earlier tickets, whose plans were never executed
    # -- goes back in FIFO order, named in the BatchPlanError.
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 100 * MB for n in cluster.node_ids})
    monitor = cluster.monitor
    first = monitor.queue_memory_request(0, 50 * MB)
    doomed = monitor.queue_memory_request(1, 500 * MB)
    last = monitor.queue_memory_request(2, 50 * MB)
    with pytest.raises(BatchPlanError) as excinfo:
        monitor.plan_queued_requests()
    error = excinfo.value
    assert error.failed_ticket == doomed
    assert error.failed_request.requester == 1
    assert error.requeued_tickets == [first, last]
    assert monitor.queued_requests == 2
    # The survivors plan cleanly on retry, in their original order.
    entries = monitor.plan_queued_requests()
    assert [entry.ticket for entry in entries] == [first, last]


def test_borrow_many_retires_requeued_tickets_on_failure():
    # The matchmaker's atomic-batch contract: when its own batch dies
    # mid-plan it retires exactly the tickets the BatchPlanError
    # re-queued, leaving the queue clean for the next caller.
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 100 * MB for n in cluster.node_ids})
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_many([(0, 50 * MB), (1, 500 * MB),
                                        (2, 50 * MB)])
    assert cluster.monitor.queued_requests == 0
    assert cluster.matchmaker.shares == []
    # A foreign parked request must survive someone else's failure.
    foreign = cluster.monitor.queue_memory_request(3, 8 * MB)
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_many([(0, 8 * MB)])
    assert cluster.monitor.queued_requests == 1
    assert cluster.monitor.plan_queued_requests()[0].ticket == foreign


def test_batch_plan_never_double_books_a_donor():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    # Exactly enough fleet capacity: each donor can cover one request.
    _limit_idle_memory(cluster, {n: 100 * MB for n in cluster.node_ids})
    for requester in (0, 1, 2):
        cluster.monitor.queue_memory_request(requester, 100 * MB)
    entries = cluster.monitor.plan_queued_requests()
    donors = [donor for entry in entries for donor, _take in entry.plan]
    # A planner that re-reads stale availability would hand every
    # ticket the same policy favourite; the batch must spread instead.
    assert len(set(donors)) == 3
    for entry in entries:
        assert all(donor != entry.requester for donor, _take in entry.plan)


# ----------------------------------------------------------------------
# borrow_many
# ----------------------------------------------------------------------
def test_borrow_many_returns_aligned_share_lists():
    cluster = Cluster(ClusterConfig(num_nodes=8))
    requests = [(0, 32 * MB), (3, 16 * MB), (5, 8 * MB)]
    batches = cluster.matchmaker.borrow_many(requests)
    assert len(batches) == len(requests)
    for (requester, size), shares in zip(requests, batches):
        assert sum(share.amount for share in shares) == size
        assert all(share.requester == requester for share in shares)
    assert cluster.node(0).borrowed_memory_bytes == 32 * MB
    cluster.matchmaker.release_all()
    assert cluster.matchmaker.shares == []


def test_borrow_many_spills_only_when_no_single_donor_covers():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 64 * MB for n in cluster.node_ids})
    batches = cluster.matchmaker.borrow_many([(0, 32 * MB), (1, 128 * MB)])
    assert len(batches[0]) == 1
    # 128 MB exceeds any single donor's 64 MB: the second request spills.
    assert len(batches[1]) == 2
    assert sum(share.amount for share in batches[1]) == 128 * MB
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_many([(2, 80 * MB)], spill=False)


def test_borrow_many_rejects_a_non_empty_request_queue():
    # Planning consumes the whole queue: a foreign parked request would
    # be allocated under this batch's name and misalign the results, so
    # borrow_many must refuse instead.
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    cluster.monitor.queue_memory_request(2, 8 * MB)
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_many([(0, 8 * MB)])
    # The foreign request is still parked, untouched.
    assert cluster.monitor.queued_requests == 1
    assert cluster.matchmaker.shares == []


def test_batched_and_unbatched_requests_handled_counts_match():
    # Planning is not an allocation: a batched single-donor borrow must
    # bump the MN's request counter exactly as much as the unbatched
    # path does (once per executed chunk).
    batched = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    batched.matchmaker.borrow_many([(0, 8 * MB), (1, 8 * MB)])
    unbatched = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    unbatched.matchmaker.borrow_memory(0, 8 * MB)
    unbatched.matchmaker.borrow_memory(1, 8 * MB)
    assert (batched.monitor.requests_handled
            == unbatched.monitor.requests_handled)


def test_borrow_many_unwinds_the_whole_batch_on_shortfall():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 100 * MB for n in cluster.node_ids})
    # First request is satisfiable, second exceeds the whole fleet.
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_many([(0, 50 * MB), (1, 500 * MB)])
    assert cluster.matchmaker.shares == []
    assert cluster.monitor.queued_requests == 0
    for node_id in cluster.node_ids:
        assert cluster.node(node_id).borrowed_memory_bytes == 0
        assert cluster.node(node_id).agent.donated_bytes == 0


# ----------------------------------------------------------------------
# Concurrent first accesses over the fleet fabric
# ----------------------------------------------------------------------
def test_touch_shares_drives_first_accesses_concurrently():
    cluster = Cluster(ClusterConfig(num_nodes=8, topology="fat_tree",
                                    transport_backend="event"))
    batches = cluster.matchmaker.borrow_many(
        [(node, 4 * MB) for node in cluster.node_ids[:4]])
    shares = [share for batch in batches for share in batch]
    transport = cluster.event_transport()
    latencies = cluster.matchmaker.touch_shares(shares)
    assert set(latencies) == set(shares)
    assert all(latency > 0 for latency in latencies.values())
    # One drive_all advanced the shared simulator once for everyone:
    # the makespan is materially below the sum of the access latencies.
    assert transport.sim.now < 0.5 * sum(latencies.values())


def test_event_transport_requires_event_backend():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    with pytest.raises(ValueError):
        cluster.event_transport()
    with pytest.raises(ValueError):
        cluster.cross_traffic()


def test_cluster_cross_traffic_defaults_to_a_compute_ring():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star",
                                    transport_backend="event"))
    driver = cluster.cross_traffic(window=1)
    assert sorted(driver.flows) == [(0, 1), (1, 2), (2, 3), (3, 0)]
    assert cluster.event_transport().contended
    driver.stop()
    cluster.event_transport().drain_quiet()
