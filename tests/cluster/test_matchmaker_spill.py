"""Regression tests for matchmaker donor-capacity spill.

When the policy-chosen memory donor cannot cover a request, the
matchmaker must split it across the next-best donors (crossing leaves
on a fat-tree) instead of failing, and the resulting shares must tear
down like any others.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.runtime.monitor import AllocationError
from repro.runtime.tables import ResourceKind

MB = 1024 * 1024
GB = 1024 * MB


def _limit_idle_memory(cluster, idle_bytes_by_node):
    """Pin each node's donatable memory by booking local usage."""
    for node_id, idle in idle_bytes_by_node.items():
        agent = cluster.node(node_id).agent
        agent.set_local_usage(agent.memory_capacity_bytes - idle)
    cluster.monitor.collect_heartbeats()


def test_single_donor_request_still_returns_one_share():
    cluster = Cluster(ClusterConfig(num_nodes=8))
    shares = cluster.matchmaker.borrow_memory(0, 32 * MB)
    assert len(shares) == 1
    assert shares[0].amount == 32 * MB


def test_spill_splits_across_donors_when_no_single_donor_covers():
    cluster = Cluster(ClusterConfig(num_nodes=8, topology="fat_tree",
                                    leaf_radix=4))
    # Every node can only donate 200 MB; ask for 500 MB.
    _limit_idle_memory(cluster, {n: 200 * MB for n in cluster.node_ids})
    shares = cluster.matchmaker.borrow_memory(0, 500 * MB)
    assert sum(share.amount for share in shares) == 500 * MB
    assert len(shares) == 3
    donors = [share.donor for share in shares]
    assert len(set(donors)) == 3
    assert 0 not in donors
    # Every chunk is a real grant: donor-side accounting matches.
    for share in shares:
        assert (cluster.node(share.donor).donated_memory_bytes
                >= share.amount)
    assert cluster.node(0).borrowed_memory_bytes == 500 * MB


def test_spill_crosses_fat_tree_leaves_when_local_leaf_is_drained():
    cluster = Cluster(ClusterConfig(num_nodes=8, topology="fat_tree",
                                    leaf_radix=4))
    # Leaf 0 (nodes 0-3): siblings nearly drained; leaf 1 (nodes 4-7)
    # has more, but no single donor covers 600 MB, so the spill drains
    # the same-leaf donors first and then crosses to the other leaf.
    idle = {1: 64 * MB, 2: 64 * MB, 3: 64 * MB,
            4: 256 * MB, 5: 256 * MB, 6: 256 * MB, 7: 256 * MB}
    _limit_idle_memory(cluster, {0: 1 * GB, **idle})
    shares = cluster.matchmaker.borrow_memory(0, 600 * MB)
    assert sum(share.amount for share in shares) == 600 * MB
    donors = {share.donor for share in shares}
    # Distance-first: the same-leaf donors are drained first...
    assert {1, 2, 3} <= donors
    # ...and the remainder crosses to the other leaf.
    assert donors & {4, 5, 6, 7}
    cluster.matchmaker.release_all()
    assert cluster.matchmaker.shares == []
    for node_id in cluster.node_ids:
        assert cluster.node(node_id).agent.donated_bytes == 0


def test_spill_disabled_or_impossible_raises():
    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 100 * MB for n in cluster.node_ids})
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_memory(0, 200 * MB, spill=False)
    # Fleet-wide shortfall (3 donors x 100 MB < 400 MB) still raises.
    with pytest.raises(AllocationError):
        cluster.matchmaker.borrow_memory(0, 400 * MB)
    # Nothing was left half-borrowed.
    assert cluster.matchmaker.shares == []
    assert cluster.matchmaker.shares_of_kind(ResourceKind.MEMORY) == []


def test_spill_skips_donors_behind_down_links():
    from repro.runtime.tables import LinkStatus

    cluster = Cluster(ClusterConfig(num_nodes=4, topology="star"))
    _limit_idle_memory(cluster, {n: 100 * MB for n in cluster.node_ids})
    # Node 1 is unreachable: its hub link is down.  The plan must route
    # around it instead of including it and unwinding the whole spill.
    hub = next(n for n in cluster.topology.nodes
               if n not in cluster.topology.compute_nodes)
    cluster.monitor.tst.report(1, hub, LinkStatus.DOWN, now_ns=0)
    cluster.monitor.tst.report(hub, 1, LinkStatus.DOWN, now_ns=0)
    shares = cluster.matchmaker.borrow_memory(0, 200 * MB)
    assert sum(share.amount for share in shares) == 200 * MB
    assert 1 not in {share.donor for share in shares}


def test_spilled_shares_release_independently():
    cluster = Cluster(ClusterConfig(num_nodes=4))
    _limit_idle_memory(cluster, {n: 64 * MB for n in cluster.node_ids})
    shares = cluster.matchmaker.borrow_memory(0, 128 * MB)
    assert len(shares) == 2
    first, second = shares
    cluster.matchmaker.release(first)
    assert first.released and not second.released
    assert cluster.node(0).borrowed_memory_bytes == 64 * MB
    cluster.matchmaker.release(second)
    assert cluster.node(0).borrowed_memory_bytes == 0
