"""Merged-stats equivalence: partitioned executors vs the monolithic sim.

The acceptance bar for the partitioned fabric: the canonical merged
stats dump of a parallel (>= 2 partition) fat-tree run must be
byte-identical to the single-simulator run, on both timer backends, for
the in-process executor and the fork executor alike.
"""

import pytest

from repro.sim.partition import (ParallelFabricSpec, canonical_dump,
                                 plan_leaf_partitions, run_partitioned,
                                 run_sequential_baseline)
from repro.fabric.topology import build_fat_tree, build_mesh3d


def _staggered_spec(num_nodes=16, count=24, scheduler="auto", faults=()):
    """Cross-leaf traffic with no same-nanosecond injections."""
    injections = []
    time = 0
    for index in range(count):
        src = index % num_nodes
        dst = (index * 7 + 3) % num_nodes
        if dst == src:
            dst = (dst + 1) % num_nodes
        injections.append((time, src, dst, 256))
        time += 311
    return ParallelFabricSpec(num_nodes=num_nodes, scheduler=scheduler,
                              injections=tuple(injections),
                              faults=tuple(faults))


# ----------------------------------------------------------------------
# Partition planning
# ----------------------------------------------------------------------
def test_16_node_fat_tree_splits_into_leaf_and_spine_partitions():
    plan = plan_leaf_partitions(build_fat_tree(16))
    # Four leaves (radix 4) plus the spine partition.
    assert plan.num_partitions == 5
    assert plan.partitions[:4] == ((0, 1, 2, 3, 16), (4, 5, 6, 7, 17),
                                   (8, 9, 10, 11, 18), (12, 13, 14, 15, 19))
    assert plan.partitions[4] == (20, 21)  # spines, last partition
    owner = plan.node_partition()
    assert sorted(owner) == list(range(22))


def test_routerless_topologies_degenerate_to_a_single_partition():
    plan = plan_leaf_partitions(build_mesh3d())
    assert plan.num_partitions == 1
    assert plan.partitions[0] == tuple(range(8))


# ----------------------------------------------------------------------
# Byte-identical merged dumps (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_inline_partitioned_dump_matches_monolithic(scheduler):
    spec = _staggered_spec(scheduler=scheduler)
    assert plan_leaf_partitions(spec.build_topology()).num_partitions >= 2
    baseline = run_sequential_baseline(spec)
    partitioned = run_partitioned(spec, mode="inline")
    assert canonical_dump(partitioned) == canonical_dump(baseline)
    # The lookahead barrier costs zero extra simulated events.
    assert partitioned["events"] == baseline["events"]
    assert len(partitioned["deliveries"]) == len(spec.injections)


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_forked_partitioned_dump_matches_monolithic(scheduler):
    spec = _staggered_spec(scheduler=scheduler)
    baseline = canonical_dump(run_sequential_baseline(spec))
    for workers in (2, 4):
        forked = run_partitioned(spec, workers=workers, mode="fork")
        assert canonical_dump(forked) == baseline


def test_fork_and_inline_agree_with_surplus_workers():
    # More workers than partitions: the executor clamps, stays correct.
    spec = _staggered_spec(num_nodes=8, count=12)
    inline = canonical_dump(run_partitioned(spec, mode="inline"))
    forked = canonical_dump(run_partitioned(spec, workers=16, mode="fork"))
    assert forked == inline


def test_auto_mode_single_worker_runs_inline():
    spec = _staggered_spec(num_nodes=8, count=6)
    assert (canonical_dump(run_partitioned(spec, workers=1, mode="auto"))
            == canonical_dump(run_partitioned(spec, mode="inline")))


# ----------------------------------------------------------------------
# Churn faults on an inter-partition link
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode,workers", [("inline", 1), ("fork", 3)])
def test_boundary_link_fault_flap_stays_byte_identical(mode, workers):
    # Down the leaf16->spine20 link mid-run: deliveries in the window
    # arrive corrupted and ride the CRC/NAK replay path, which lives
    # entirely in the sending partition -- equivalence must survive.
    spec = _staggered_spec(faults=((1500, 16, 20, "down"),
                                   (5200, 16, 20, "up")))
    baseline = run_sequential_baseline(spec)
    faulted = sum(counters.get("packets_faulted_admin_down", 0)
                  for counters in baseline["counters"].values())
    assert faulted > 0  # the flap really hit in-flight traffic
    partitioned = run_partitioned(spec, workers=workers, mode=mode)
    assert canonical_dump(partitioned) == canonical_dump(baseline)


def test_executor_argument_validation():
    spec = _staggered_spec(num_nodes=8, count=2)
    with pytest.raises(ValueError):
        run_partitioned(spec, workers=0)
    with pytest.raises(ValueError):
        run_partitioned(spec, mode="threads")
