"""Calendar-queue scheduler: equivalence with the heap backend.

The calendar backend must dispatch *exactly* the same event stream as
the heap backend -- identical (time, seq) order, identical final clock
and event counts -- for any mix of delays.  These tests drive both
backends with randomized delay mixes (property-style, seeded) and
compare the full dispatch traces, plus targeted cases for the calendar
internals: same-day insertion during dispatch, empty-rotation gaps, the
sparse long-horizon fallback, cancellation, and the ``auto`` adoption
heuristic.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.rng import DeterministicRNG


def dispatch_trace(scheduler: str, plan):
    """Run a schedule plan and return the observed dispatch trace.

    ``plan`` is a list of (at, delay, tag, chain_delays) tuples: at time
    ``at`` schedule a callback after ``delay`` which records ``tag`` and
    chains further callbacks at each delay in ``chain_delays``.
    """
    sim = Simulator(scheduler=scheduler)
    trace = []

    def fire(tag, chain):
        trace.append((sim.now, tag))
        for index, delay in enumerate(chain):
            sim.call_after(delay, fire_single, (f"{tag}.c{index}", ()))

    def fire_single(payload):
        tag, chain = payload
        fire(tag, chain)

    for at, delay, tag, chain in plan:
        sim.schedule_at(at, fire, tag, chain)
        if delay:
            sim.schedule(delay, fire, f"{tag}.d", ())
    sim.run_until_idle()
    return trace, sim.now, sim.events_processed


def random_plan(seed: int, events: int = 300):
    """Randomized delay mix: dense short delays, bursts, and long gaps."""
    rng = DeterministicRNG(seed)
    plan = []
    at = 0
    for index in range(events):
        at += rng.choice([0, 0, 1, 7, 20, 50, 128, 1250, 65_536, 300_000])
        delay = rng.choice([0, 1, 20, 100, 1250, 4096])
        chain = tuple(
            rng.choice([1, 20, 50, 128, 1250])
            for _ in range(rng.uniform_int(0, 3))
        )
        plan.append((at, delay, f"e{index}", chain))
    return plan


@pytest.mark.parametrize("seed", range(8))
def test_randomized_delay_mixes_dispatch_identically(seed):
    plan = random_plan(seed)
    heap = dispatch_trace("heap", plan)
    calendar = dispatch_trace("calendar", plan)
    assert heap == calendar


def test_same_time_events_keep_scheduling_order_on_calendar():
    sim = Simulator(scheduler="calendar")
    order = []
    for index in range(10):
        sim.schedule(50, order.append, index)
    sim.run_until_idle()
    assert order == list(range(10))


def test_same_day_insertion_during_dispatch_stays_ordered():
    # A callback inserts a new timer 20 ns ahead -- almost always into
    # the bucket currently being dispatched, exercising the insort path.
    sim = Simulator(scheduler="calendar")
    order = []

    def parent(_v=None):
        order.append("parent")
        sim.call_after(20, lambda _v: order.append("child"))

    sim.call_after(64, parent)
    sim.call_after(70, lambda _v: order.append("sibling70"))
    sim.call_after(90, lambda _v: order.append("sibling90"))
    sim.run_until_idle()
    assert order == ["parent", "sibling70", "child", "sibling90"]
    assert sim.now == 90


def test_timer_due_now_runs_before_ready_entries_on_calendar():
    sim = Simulator(scheduler="calendar")
    order = []
    sim.schedule(10, order.append, "timer-parent")

    def parent(_v=None):
        order.append("parent")
        sim.call_soon(order.append, "child")

    sim.schedule(10, parent)
    sim.run_until_idle()
    assert order == ["timer-parent", "parent", "child"]


def test_long_horizon_sparse_fallback():
    # Delays far beyond one full rotation (8192 buckets x 128 ns ~ 1 ms)
    # must still dispatch in order via the direct-minimum fallback.
    sim = Simulator(scheduler="calendar")
    order = []
    sim.schedule(50_000_000, order.append, "far")
    sim.schedule(10_000_000, order.append, "near")
    sim.schedule(100, order.append, "soon")
    sim.run_until_idle()
    assert order == ["soon", "near", "far"]
    assert sim.now == 50_000_000


def test_cancellation_and_drain_on_calendar():
    sim = Simulator(scheduler="calendar")
    fired = []
    keep = sim.schedule(1000, fired.append, "keep")
    drop = [sim.schedule(2000 + index, fired.append, "drop") for index in range(50)]
    for handle in drop:
        sim.cancel(handle)
    assert len(sim) == 51
    removed = sim.drain_cancelled()
    assert removed == 50
    assert len(sim) == 1
    sim.run_until_idle()
    assert fired == ["keep"]
    assert not sim.is_cancelled(keep) or fired  # spent after execution
    sim.cancel(keep)  # late cancel is a no-op
    assert fired == ["keep"]


def test_mid_run_drain_count_matches_heap_backend():
    # drain_cancelled() called from a callback mid-run must report the
    # same removal count on both backends -- the calendar's current-run
    # cursor lives in a loop local, so the count cannot be a len() delta.
    counts = {}
    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler)
        for delay in range(10, 15):
            sim.schedule(delay, lambda: None)
        victim = sim.schedule(100, lambda: None)

        def actor(_v=None, sim=sim, victim=victim, scheduler=scheduler):
            sim.cancel(victim)
            counts[scheduler] = sim.drain_cancelled()

        sim.schedule(50, actor)
        sim.run_until_idle()
    assert counts == {"heap": 1, "calendar": 1}


def test_cancel_inside_current_run_is_skipped():
    sim = Simulator(scheduler="calendar")
    fired = []
    victim = sim.schedule(60, fired.append, "victim")

    def killer(_v=None):
        sim.cancel(victim)

    sim.call_after(50, killer)  # same bucket as the victim
    sim.schedule(70, fired.append, "survivor")
    sim.run_until_idle()
    assert fired == ["survivor"]


def test_peek_and_step_on_calendar():
    sim = Simulator(scheduler="calendar")
    fired = []
    assert sim.peek() is None
    sim.schedule(42, fired.append, 1)
    sim.schedule(99, fired.append, 2)
    assert sim.peek() == 42
    assert sim.step() is True
    assert fired == [1]
    assert sim.peek() == 99
    assert sim.step() is True
    assert sim.step() is False


def test_run_until_deadline_then_reschedule_earlier_day():
    # Stop at a deadline, then schedule before the day the calendar had
    # already advanced to; the new entry must still dispatch first.
    sim = Simulator(scheduler="calendar")
    order = []
    sim.schedule(500_000, order.append, "late")
    sim.run(until=1000)
    assert sim.now == 1000
    sim.schedule(100, order.append, "early")
    sim.run_until_idle()
    assert order == ["early", "late"]


def test_max_events_budget_exact_on_calendar():
    sim = Simulator(scheduler="calendar")
    fired = []
    for index in range(5):
        sim.schedule(10 + index * 10, fired.append, index)
    with pytest.raises(SimulationError):
        sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.run(max_events=2) == 50
    assert fired == [0, 1, 2, 3, 4]


def test_invalid_scheduler_configs_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="wheel")
    with pytest.raises(ValueError):
        Simulator(calendar_bucket_ns=100)  # not a power of two
    with pytest.raises(ValueError):
        Simulator(calendar_buckets=1000)  # not a power of two


def test_auto_policy_adopts_calendar_for_dense_timers():
    sim = Simulator(scheduler="auto")
    assert sim.scheduler == "heap"
    for index in range(1000):
        sim.schedule(1 + (index % 500), lambda: None)
    sim.run_until_idle()
    assert sim.scheduler == "calendar"
    assert sim.scheduler_policy == "auto"


def test_auto_policy_keeps_heap_for_sparse_timers():
    sim = Simulator(scheduler="auto")
    for index in range(1000):
        sim.schedule(1 + index * 1_000_000, lambda: None)
    sim.run_until_idle()
    assert sim.scheduler == "heap"


def test_explicit_heap_policy_never_adopts():
    sim = Simulator(scheduler="heap")
    for index in range(1000):
        sim.schedule(1 + (index % 500), lambda: None)
    sim.run_until_idle()
    assert sim.scheduler == "heap"


def test_adoption_migrates_pending_entries_and_handles():
    sim = Simulator(scheduler="auto")
    fired = []
    handles = [sim.schedule(1 + (index % 600), fired.append, index)
               for index in range(800)]
    victim = handles[400]
    sim.cancel(victim)  # cancelled before migration
    sim.run_until_idle()
    assert sim.scheduler == "calendar"
    assert len(fired) == 799
    assert 400 not in fired
