"""Compiled dispatch core: parity, determinism matrix and fallback.

Three layers of assurance for ``repro.sim._ccore``:

* randomized property tests -- a seeded storm of schedules, cancels
  and callback-driven rescheduling must produce the exact same
  dispatch trace and accounting on the C core as on the pure-Python
  reference engine, under both timer backends;
* the determinism matrix -- the star16 contended sweep (the heaviest
  deterministic workload in the suite) dumps byte-identical statistics
  for every (core, scheduler) combination;
* fallback policy -- a missing extension must degrade to the Python
  engine *silently* under ``core="auto"`` (the no-compiler scenario),
  a broken extension warns exactly once, and an explicit ``core="c"``
  raises a clear error instead of crashing.
"""

import importlib
import itertools
import random
import sys
import warnings
from dataclasses import replace

import pytest

from repro.sim import engine
from repro.sim.engine import SimulationError, Simulator

_ccore_available = engine._load_ccore() is not None

requires_ccore = pytest.mark.skipif(
    not _ccore_available,
    reason="compiled dispatch core not built (python -m repro.sim._ccore_build)")


# ----------------------------------------------------------------------
# Randomized property tests: C core vs the reference Python heap
# ----------------------------------------------------------------------
def _storm_trace(core: str, seed: int, scheduler: str) -> dict:
    """Drive one seeded schedule/cancel storm; return its full trace.

    The RNG is consumed inside callbacks too, so the streams only stay
    aligned between two runs if the engines dispatch in the exact same
    total order -- any divergence cascades into a loud trace mismatch.
    """
    sim = Simulator(scheduler=scheduler, core=core)
    rng = random.Random(seed)
    tags = itertools.count()
    trace = []
    handles = []

    def fire(tag):
        trace.append((sim.now, tag))
        roll = rng.random()
        if roll < 0.35:
            handles.append(sim.call_after(rng.randrange(1, 400), fire,
                                          next(tags)))
        elif roll < 0.45:
            handles.append(sim.schedule(rng.randrange(0, 300), fire,
                                        next(tags)))
        elif roll < 0.50:
            handles.append(sim.call_soon(fire, next(tags)))
        elif roll < 0.60 and handles:
            victim = handles.pop(rng.randrange(len(handles)))
            sim.cancel(victim)

    for _ in range(150):
        handles.append(sim.schedule(rng.randrange(0, 1000), fire, next(tags)))
    # A burst of repeated delays exercises the Python engine's FIFO
    # lanes (the C core must match their order without having any).
    for _ in range(80):
        handles.append(sim.call_after(64, fire, next(tags)))
    executed = sim.run()
    return {
        "trace": trace,
        "executed": executed,
        "now": sim.now,
        "events_processed": sim.events_processed,
        "pending": len(sim),
    }


@requires_ccore
@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
@pytest.mark.parametrize("seed", [1, 7, 2016])
def test_storm_matches_reference_engine(scheduler, seed):
    reference = _storm_trace("py", seed, scheduler)
    compiled = _storm_trace("c", seed, scheduler)
    assert compiled == reference


@requires_ccore
def test_storm_heap_and_calendar_agree_on_c_core():
    assert _storm_trace("c", 7, "heap")["trace"] == \
        _storm_trace("c", 7, "calendar")["trace"]


@requires_ccore
def test_stepwise_peek_and_accounting_parity():
    sims = [Simulator(core="py"), Simulator(core="c")]
    logs = [[], []]
    for sim, log in zip(sims, logs):
        handles = [sim.schedule(delay, log.append, tag)
                   for tag, delay in enumerate([5, 0, 9, 5, 3, 0, 7])]
        sim.cancel(handles[2])
        sim.cancel(handles[4])
        while True:
            log.append(("peek", sim.peek(), "len", len(sim)))
            if not sim.step():
                break
        log.append(("drained", sim.drain_cancelled(),
                    "events", sim.events_processed, "now", sim.now))
    assert logs[0] == logs[1]


@requires_ccore
def test_error_parity_on_bad_delays():
    for core in ("py", "c"):
        sim = Simulator(core=core)
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_after(-5, lambda value: None, None)
        with pytest.raises(SimulationError):
            sim.schedule_at(-1, lambda: None)


@requires_ccore
def test_run_until_and_max_events_budgets_match():
    results = []
    for core in ("py", "c"):
        sim = Simulator(core=core)
        fired = []
        for delay in range(1, 30):
            sim.schedule(delay * 10, fired.append, delay)
        ran = sim.run(until=145)
        # Exhausting max_events trips the livelock guard on both cores,
        # with the budget's worth of events executed before the raise.
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=5)
        ran += sim.run()
        results.append((fired[:], ran, sim.now, len(sim)))
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# Determinism matrix: (core x scheduler) over the star16 sweep
# ----------------------------------------------------------------------
def _star16_dump(scheduler: str) -> str:
    from repro.cluster import Cluster, ClusterConfig
    from repro.experiments.fig_cluster_contention import (
        ClusterContentionConfig, _FabricRun, _probe_plan)
    from repro.sim.rng import DeterministicRNG

    config = ClusterContentionConfig(
        node_counts=(16,), topology="star", probes_per_node=2,
        cross_traffic_per_node=6, scheduler=scheduler)
    cluster = Cluster(ClusterConfig(num_nodes=16, topology="star"))
    probes = _probe_plan(cluster, config, DeterministicRNG(7))
    run = _FabricRun(cluster, config, probes, contended=True,
                     rng=DeterministicRNG(7))
    return run.stats_dump()


@requires_ccore
@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_star16_dump_byte_identical_across_cores(scheduler, monkeypatch):
    monkeypatch.setenv("SIM_CORE", "py")
    pure = _star16_dump(scheduler)
    monkeypatch.setenv("SIM_CORE", "c")
    compiled = _star16_dump(scheduler)
    assert pure == compiled


# ----------------------------------------------------------------------
# Core resolution and fallback policy
# ----------------------------------------------------------------------
@pytest.fixture
def fresh_ccore_state():
    """Run with a forgotten import cache; restore it afterwards."""
    engine._reset_ccore_state()
    yield
    engine._reset_ccore_state()


def _block_ccore_import(monkeypatch, error: BaseException) -> None:
    """Make the ``_ccore`` import raise ``error`` (and only that import).

    The loader goes through ``importlib.import_module`` (deliberately:
    a from-import would mask ModuleNotFoundError), and import_module
    answers from ``sys.modules`` first -- so the cached module is
    dropped for the duration of the test (monkeypatch restores it).
    """
    monkeypatch.delitem(sys.modules, "repro.sim._ccore", raising=False)
    real_import_module = importlib.import_module

    def fake_import_module(name, package=None):
        if name == "repro.sim._ccore":
            raise error
        return real_import_module(name, package)

    monkeypatch.setattr(importlib, "import_module", fake_import_module)


def test_missing_extension_auto_falls_back_silently(fresh_ccore_state,
                                                    monkeypatch):
    # The no-compiler scenario: the extension was never built.  auto
    # must pick the Python engine without a peep and simulation must
    # behave normally.
    monkeypatch.delenv("SIM_CORE", raising=False)
    _block_ccore_import(monkeypatch, ModuleNotFoundError(
        "No module named 'repro.sim._ccore'"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        sim = Simulator(core="auto")
        assert sim.core == "py"
        seen = []
        sim.schedule(10, seen.append, "a")
        sim.schedule(5, seen.append, "b")
        sim.run()
    assert seen == ["b", "a"]
    assert sim.now == 10


def test_broken_extension_warns_once_and_falls_back(fresh_ccore_state,
                                                    monkeypatch):
    monkeypatch.delenv("SIM_CORE", raising=False)
    _block_ccore_import(monkeypatch, ImportError(
        "undefined symbol: simulated_abi_drift"))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = Simulator(core="auto")
        second = Simulator(core="auto")
    assert first.core == "py" and second.core == "py"
    runtime_warnings = [w for w in caught
                        if issubclass(w.category, RuntimeWarning)]
    assert len(runtime_warnings) == 1
    assert "_ccore" in str(runtime_warnings[0].message)


def test_explicit_c_core_unavailable_raises_clear_error(fresh_ccore_state,
                                                        monkeypatch):
    from repro.sim import _ccore_build

    monkeypatch.delenv("SIM_CORE", raising=False)
    _block_ccore_import(monkeypatch, ModuleNotFoundError(
        "No module named 'repro.sim._ccore'"))

    def no_compiler():
        raise _ccore_build.CCoreBuildError("no C compiler found")

    monkeypatch.setattr(_ccore_build, "ensure_built", no_compiler)
    with pytest.raises(SimulationError) as excinfo:
        Simulator(core="c")
    message = str(excinfo.value)
    assert "unavailable" in message
    assert "_ccore_build" in message  # tells the user how to fix it


def test_sim_core_env_is_honoured(monkeypatch):
    monkeypatch.setenv("SIM_CORE", "py")
    assert Simulator().core == "py"
    monkeypatch.setenv("SIM_CORE", "bogus")
    with pytest.raises(ValueError):
        Simulator()


@requires_ccore
def test_explicit_core_argument_beats_env(monkeypatch):
    monkeypatch.setenv("SIM_CORE", "c")
    assert Simulator(core="py").core == "py"
    monkeypatch.setenv("SIM_CORE", "py")
    assert Simulator(core="c").core == "c"


@requires_ccore
def test_sanitize_forces_python_core(monkeypatch):
    monkeypatch.setenv("SIM_CORE", "c")
    sim = Simulator(sanitize=True)
    assert sim.core == "py"
    assert sim.sanitize


@requires_ccore
def test_auto_prefers_compiled_core():
    assert Simulator(core="auto").core == "c"


@requires_ccore
def test_scheduler_reporting_matches_python_engine():
    # The C core serves both backends from one packed heap but must
    # *report* the same backend the Python engine would adopt.
    for scheduler in ("heap", "calendar"):
        assert Simulator(core="c", scheduler=scheduler).scheduler == \
            Simulator(core="py", scheduler=scheduler).scheduler
