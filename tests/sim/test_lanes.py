"""Per-delay-class FIFO timer lane tests.

The lanes are a pure scheduling-structure optimization: dispatch order
must be byte-identical to the un-laned heap/calendar queues.  The
property tests below drive randomized schedule/cancel scripts through
four configurations -- lanes on/off x heap/calendar -- and require the
exact same dispatch trace from all of them (the un-laned heap is the
reference semantics).

Every simulator here pins ``core="py"``: lanes (and the ``_lane_map``
internals these tests inspect) exist only in the pure-Python engine --
the compiled core's packed heap has no use for them (see ``_ccore.c``).
"""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.engine as engine
from repro.sim.engine import Simulator


def _run_script(script, scheduler, min_repeats, max_lanes):
    """Execute a schedule/cancel script; return the dispatch trace.

    Each script step is ``(delay, cancel_flag)``: a driver callback
    schedules one payload callback with that delay (0 goes to the ready
    deque), then -- when the flag is set -- cancels an earlier pending
    handle.  The driver re-arms itself with a small fixed delay, so the
    script itself exercises lane promotion once lanes are active.
    """
    saved = (engine._LANE_MIN_REPEATS, engine._LANE_MAX_LANES,
             engine._LANE_MIN_DEPTH)
    engine._LANE_MIN_REPEATS = min_repeats
    engine._LANE_MAX_LANES = max_lanes
    engine._LANE_MIN_DEPTH = 0  # arm heads regardless of backend depth
    try:
        sim = Simulator(scheduler=scheduler, core="py")
        trace = []
        handles = []

        def payload(index):
            trace.append((sim.now, index))

        def driver(index):
            if index >= len(script):
                return
            delay, do_cancel = script[index]
            handles.append(sim.call_after(delay, payload, index))
            if do_cancel and len(handles) >= 2:
                sim.cancel(handles[len(handles) // 2])
            sim.call_after(3, driver, index + 1)

        sim.call_after(1, driver, 0)
        sim.run_until_idle()
        assert len(sim) == 0
        return trace
    finally:
        (engine._LANE_MIN_REPEATS, engine._LANE_MAX_LANES,
         engine._LANE_MIN_DEPTH) = saved


_SCRIPT = st.lists(
    st.tuples(st.sampled_from([0, 5, 5, 7, 7, 13, 64]), st.booleans()),
    min_size=1, max_size=120)


@settings(max_examples=40, deadline=None)
@given(_SCRIPT)
def test_lanes_match_reference_heap_dispatch_order(script):
    reference = _run_script(script, "heap", 10 ** 9, 0)  # lanes disabled
    for scheduler in ("heap", "calendar"):
        laned = _run_script(script, scheduler, 2, 8)
        assert laned == reference


@settings(max_examples=25, deadline=None)
@given(_SCRIPT)
def test_lane_cap_variations_do_not_change_order(script):
    reference = _run_script(script, "heap", 10 ** 9, 0)
    # One lane only: the other delay classes keep hitting the backend.
    assert _run_script(script, "heap", 2, 1) == reference
    # Immediate promotion threshold.
    assert _run_script(script, "calendar", 1, 8) == reference


def test_lane_forms_after_repeat_threshold(monkeypatch):
    monkeypatch.setattr(engine, "_LANE_MIN_DEPTH", 0)
    sim = Simulator(scheduler="heap", core="py")
    fired = []
    for _ in range(engine._LANE_MIN_REPEATS + 8):
        sim.call_after(50, fired.append, None)
    assert 50 in sim._lane_map
    head_out, parked = sim._lane_map[50][1], len(sim._lane_map[50][0])
    assert head_out and parked > 0
    # Parked entries are invisible to the heap but counted by len().
    assert len(sim) == engine._LANE_MIN_REPEATS + 8
    assert len(sim._queue) == len(sim) - parked
    sim.run_until_idle()
    assert len(fired) == engine._LANE_MIN_REPEATS + 8
    assert len(sim) == 0


def test_lane_heads_stay_disarmed_on_a_shallow_backend():
    """The depth gate: on a shallow queue the lane machinery never
    engages -- no repeat tracking, no lane registration, no parking --
    so every entry takes the plain backend path and the dispatch loop
    does no promotion work."""
    assert engine._LANE_MIN_DEPTH > 0
    sim = Simulator(scheduler="heap", core="py")
    fired = []
    for _ in range(engine._LANE_MIN_REPEATS + 8):
        sim.call_after(50, fired.append, None)
    assert not sim._lane_map
    assert not sim._lane_seen
    assert sim._lane_count == 0
    assert len(sim._queue) == len(sim)
    sim.run_until_idle()
    assert len(fired) == engine._LANE_MIN_REPEATS + 8


def test_lane_arms_once_the_backend_is_deep():
    sim = Simulator(scheduler="heap", core="py")
    fired = []
    # Deepen the backend past the gate with unrelated one-shot timers.
    for index in range(engine._LANE_MIN_DEPTH + 1):
        sim.schedule(10_000 + index, fired.append, None)
    for _ in range(engine._LANE_MIN_REPEATS + 8):
        sim.call_after(50, fired.append, None)
    lane = sim._lane_map[50]
    assert lane[1] and len(lane[0]) > 0
    sim.run_until_idle()
    assert len(fired) == engine._LANE_MIN_DEPTH + 1 + engine._LANE_MIN_REPEATS + 8
    assert len(sim) == 0


def test_unique_delays_never_get_lanes():
    sim = Simulator(scheduler="heap", core="py")
    for delay in range(1, 2 * engine._LANE_MIN_REPEATS):
        sim.call_after(delay, lambda _: None)
    assert not sim._lane_map
    assert len(sim._lane_seen) <= engine._LANE_MAX_TRACKED


def test_cancelling_parked_head_promotes_successor():
    saved = engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH
    engine._LANE_MIN_REPEATS = 1
    engine._LANE_MIN_DEPTH = 0
    try:
        sim = Simulator(scheduler="heap", core="py")
        fired = []
        sim.call_after(10, fired.append, "warmup")  # counts the delay
        head = sim.call_after(10, fired.append, "head")
        successor = sim.call_after(10, fired.append, "successor")
        lane = sim._lane_map[10]
        assert head[engine._LANE] is lane
        assert successor in lane[0]
        sim.cancel(head)
        # The successor took over the backend slot immediately.
        assert successor[engine._LANE] is lane
        assert not lane[0]
        sim.run_until_idle()
        assert fired == ["warmup", "successor"]
        assert len(sim) == 0
    finally:
        engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH = saved


def test_drain_cancelled_compacts_lane_deques():
    saved = engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH
    engine._LANE_MIN_REPEATS = 1
    engine._LANE_MIN_DEPTH = 0
    try:
        sim = Simulator(scheduler="heap", core="py")
        fired = []
        sim.call_after(10, fired.append, 0)
        handles = [sim.call_after(10, fired.append, i) for i in range(1, 40)]
        for handle in handles[::2]:
            sim.cancel(handle)
        removed = sim.drain_cancelled()
        assert removed == len(handles[::2])
        assert sim._cancelled == 0
        sim.run_until_idle()
        assert fired == [0] + [i for i in range(1, 40) if i % 2 == 0]
    finally:
        engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH = saved


def test_lane_entries_respect_run_until_deadline():
    saved = engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH
    engine._LANE_MIN_REPEATS = 1
    engine._LANE_MIN_DEPTH = 0
    try:
        sim = Simulator(scheduler="heap", core="py")
        fired = []

        def rearm(value):
            fired.append((sim.now, value))
            sim.call_after(100, rearm, value + 1)

        sim.call_after(100, rearm, 0)
        sim.run(until=350)
        assert fired == [(100, 0), (200, 1), (300, 2)]
        assert sim.now == 350
        # The parked continuation survives the barrier and resumes.
        sim.run(until=500)
        assert fired[-1] == (500, 4)
    finally:
        engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH = saved


def test_interleaving_with_schedule_and_call_soon():
    """Un-laned schedule() entries interleave correctly with lane traffic."""
    saved = engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH
    engine._LANE_MIN_REPEATS = 1
    engine._LANE_MIN_DEPTH = 0
    try:
        for scheduler in ("heap", "calendar"):
            sim = Simulator(scheduler=scheduler, core="py")
            trace = []
            sim.call_after(10, trace.append, "lane-warm")
            sim.call_after(10, trace.append, "lane-a")
            sim.schedule(10, trace.append, "plain-between")
            sim.call_after(10, trace.append, "lane-b")
            sim.run_until_idle()
            # Global (time, seq) order: creation order at equal times.
            assert trace == ["lane-warm", "lane-a", "plain-between", "lane-b"]
    finally:
        engine._LANE_MIN_REPEATS, engine._LANE_MIN_DEPTH = saved
