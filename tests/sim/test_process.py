"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import AllOf, AnyOf, Delay, Process, SimEvent


def run_process(sim, generator, name="test"):
    process = Process(sim, generator, name=name)
    sim.run_until_idle()
    return process


def test_delay_advances_time(sim):
    def body():
        yield Delay(500)
        return sim.now

    process = run_process(sim, body())
    assert process.finished
    assert process.result == 500


def test_zero_delay_is_allowed(sim):
    def body():
        yield Delay(0)
        return "done"

    assert run_process(sim, body()).result == "done"


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-5)


def test_event_wait_receives_value(sim):
    event = SimEvent(sim, name="data")

    def waiter():
        value = yield event
        return value

    def trigger():
        yield Delay(100)
        event.succeed("payload")

    waiter_process = Process(sim, waiter())
    Process(sim, trigger())
    sim.run_until_idle()
    assert waiter_process.result == "payload"


def test_waiting_on_already_triggered_event(sim):
    event = SimEvent(sim)
    event.succeed(7)

    def body():
        value = yield event
        return value

    assert run_process(sim, body()).result == 7


def test_event_cannot_succeed_twice(sim):
    event = SimEvent(sim)
    event.succeed()
    with pytest.raises(Exception):
        event.succeed()


def test_process_waits_on_other_process(sim):
    def child():
        yield Delay(200)
        return 99

    def parent():
        result = yield Process(sim, child())
        return result + 1

    assert run_process(sim, parent()).result == 100


def test_all_of_waits_for_every_event(sim):
    def child(duration, value):
        yield Delay(duration)
        return value

    def parent():
        results = yield AllOf([Process(sim, child(100, "a")),
                               Process(sim, child(300, "b"))])
        return results, sim.now

    results, finish_time = run_process(sim, parent()).result
    assert results == ["a", "b"]
    assert finish_time == 300


def test_any_of_resumes_on_first_event(sim):
    def child(duration, value):
        yield Delay(duration)
        return value

    def parent():
        first = yield AnyOf([Process(sim, child(500, "slow")),
                             Process(sim, child(50, "fast"))])
        return first, sim.now

    value, finish_time = run_process(sim, parent()).result
    assert value == "fast"
    assert finish_time == 50


def test_bare_yield_resumes_same_timestamp(sim):
    def body():
        before = sim.now
        yield None
        return before, sim.now

    before, after = run_process(sim, body()).result
    assert before == after == 0


def test_yielding_garbage_raises_inside_process(sim):
    def body():
        try:
            yield "not a command"
        except Exception as exc:
            return type(exc).__name__
        return "no error"

    assert run_process(sim, body()).result == "SimulationError"


def test_bare_int_yield_is_a_delay(sim):
    def body():
        yield 500
        return sim.now

    assert run_process(sim, body()).result == 500


def test_negative_int_yield_raises_inside_process(sim):
    def body():
        try:
            yield -5
        except Exception as exc:
            return type(exc).__name__
        return "no error"

    assert run_process(sim, body()).result == "SimulationError"


def test_process_requires_generator(sim):
    with pytest.raises(TypeError):
        Process(sim, lambda: None)


def test_completion_event_carries_return_value(sim):
    def body():
        yield Delay(10)
        return "finished"

    process = Process(sim, body())
    sim.run_until_idle()
    assert process.completion.triggered
    assert process.completion.value == "finished"
