"""Tests for the engine's fast paths: ready queue, compaction, batching."""

import pytest

from repro.sim.engine import SimulationError, Simulator


# ----------------------------------------------------------------------
# drain_cancelled / heap compaction
# ----------------------------------------------------------------------
def test_drain_cancelled_shrinks_the_queue(sim):
    handles = [sim.schedule(1000 + index, lambda: None) for index in range(50)]
    sim.schedule(5, lambda: None)
    for handle in handles:
        sim.cancel(handle)
    assert len(sim) == 51
    removed = sim.drain_cancelled()
    assert removed == 50
    assert len(sim) == 1


def test_drain_cancelled_preserves_remaining_order(sim):
    fired = []
    sim.schedule(10, fired.append, "a")
    drop = sim.schedule(20, fired.append, "dropped")
    sim.schedule(30, fired.append, "b")
    sim.cancel(drop)
    assert sim.is_cancelled(drop)
    sim.drain_cancelled()
    sim.run_until_idle()
    assert fired == ["a", "b"]


def test_drain_cancelled_on_empty_simulator(sim):
    assert sim.drain_cancelled() == 0


def test_auto_drain_bounds_queue_growth(sim):
    # Schedule and immediately cancel far-future timers, with one
    # long-lived event keeping the sim busy; the queue must not grow
    # with the number of cancelled timers.
    sim.schedule(10_000_000, lambda: None)
    for index in range(10_000):
        sim.cancel(sim.schedule(1_000_000 + index, lambda: None))
    assert len(sim) < 2_000


def test_cancel_after_execution_is_a_noop(sim):
    fired = []
    handle = sim.schedule(5, fired.append, "ran")
    sim.run_until_idle()
    sim.cancel(handle)
    assert fired == ["ran"]
    assert sim.is_cancelled(handle)  # spent handles read as spent


def test_cancel_after_execution_keeps_accounting_clean():
    # White-box companion to the test above: the phantom-cancellation
    # counter is a Python-engine internal, so pin core="py".
    sim = Simulator(core="py")
    handle = sim.schedule(5, lambda: None)
    sim.run_until_idle()
    sim.cancel(handle)
    assert sim._cancelled == 0  # no phantom cancellation accounting


def test_call_after_rejects_negative_delay(sim):
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda _v: None)


def test_cancelled_ready_entry_does_not_fire(sim):
    fired = []
    handle = sim.schedule(0, fired.append, "cancelled")
    sim.schedule(0, fired.append, "kept")
    sim.cancel(handle)
    sim.run_until_idle()
    assert fired == ["kept"]


# ----------------------------------------------------------------------
# Ready-queue ordering semantics
# ----------------------------------------------------------------------
def test_zero_delay_events_run_in_scheduling_order_with_heap_events(sim):
    order = []

    def spawn_same_time(tag):
        order.append(tag)
        # Scheduled at the current timestamp while it is processed:
        # must run after every already-queued event at this timestamp.
        sim.schedule(0, order.append, f"{tag}.child")

    sim.schedule(100, spawn_same_time, "first")
    sim.schedule_at(100, spawn_same_time, "second")
    sim.run_until_idle()
    assert order == ["first", "second", "first.child", "second.child"]


def test_call_soon_and_call_after_interleave_by_creation_order(sim):
    order = []
    sim.call_after(10, order.append, "after10")
    sim.call_soon(order.append, "soon1")
    sim.call_soon(order.append, "soon2")
    sim.call_after(0, order.append, "after0")
    sim.run_until_idle()
    assert order == ["soon1", "soon2", "after0", "after10"]


def test_schedule_at_current_time_runs_before_later_events(sim):
    order = []
    sim.schedule(50, order.append, "later")
    sim.schedule_at(0, order.append, "now")
    sim.run_until_idle()
    assert order == ["now", "later"]


def test_run_until_does_not_execute_pending_ready_events_beyond_deadline(sim):
    fired = []
    sim.schedule(100, lambda: sim.schedule(0, fired.append, "child"))
    sim.schedule(100, fired.append, "sibling")
    # Stop exactly at the busy timestamp: the whole batch still runs.
    sim.run(until=100)
    assert fired == ["sibling", "child"]


def test_max_events_budget_exact_across_ready_and_heap(sim):
    fired = []
    sim.schedule(0, fired.append, 0)
    sim.schedule(10, fired.append, 1)
    sim.schedule(10, lambda: sim.schedule(0, fired.append, 3))
    sim.schedule(20, fired.append, 4)
    with pytest.raises(SimulationError):
        sim.run(max_events=3)
    assert fired == [0, 1]
    # The interrupted run left the remaining events intact.
    sim.run_until_idle()
    assert fired == [0, 1, 3, 4]


def test_events_processed_counts_ready_entries(sim):
    for _ in range(4):
        sim.call_soon(lambda _v: None)
    sim.schedule(10, lambda: None)
    sim.run_until_idle()
    assert sim.events_processed == 5


def test_len_counts_both_queues(sim):
    sim.schedule(0, lambda: None)
    sim.schedule(10, lambda: None)
    assert len(sim) == 2


def test_peek_sees_ready_entries(sim):
    sim.schedule(100, lambda: None)
    assert sim.peek() == 100
    sim.call_soon(lambda _v: None)
    assert sim.peek() == 0


def test_step_orders_heap_before_ready_at_same_time(sim):
    order = []
    sim.schedule(10, order.append, "heap-parent")

    def parent(_v=None):
        order.append("parent")
        sim.call_soon(order.append, "child")

    sim.schedule(10, parent)
    while sim.step():
        pass
    assert order == ["heap-parent", "parent", "child"]
