"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_initial_time_is_zero(sim):
    assert sim.now == 0
    assert sim.events_processed == 0


def test_schedule_and_run_single_callback(sim):
    fired = []
    sim.schedule(100, fired.append, "a")
    sim.run_until_idle()
    assert fired == ["a"]
    assert sim.now == 100


def test_callbacks_run_in_time_order(sim):
    order = []
    sim.schedule(300, order.append, "late")
    sim.schedule(100, order.append, "early")
    sim.schedule(200, order.append, "middle")
    sim.run_until_idle()
    assert order == ["early", "middle", "late"]


def test_same_time_callbacks_run_in_scheduling_order(sim):
    order = []
    for index in range(10):
        sim.schedule(50, order.append, index)
    sim.run_until_idle()
    assert order == list(range(10))


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_the_past_rejected(sim):
    sim.schedule(100, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_run_until_stops_at_deadline(sim):
    fired = []
    sim.schedule(100, fired.append, "early")
    sim.schedule(500, fired.append, "late")
    sim.run(until=200)
    assert fired == ["early"]
    assert sim.now == 200
    # The remaining event still runs on the next call.
    sim.run_until_idle()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_when_queue_drains_early(sim):
    sim.schedule(100, lambda: None)
    # The clock ends at the deadline regardless of whether later events
    # happen to exist in the queue.
    assert sim.run(until=200) == 200
    assert sim.now == 200


def test_run_until_in_the_past_never_moves_clock_backwards(sim):
    fired = []
    sim.schedule(100, fired.append, "first")
    sim.schedule(500, fired.append, "second")
    sim.run(until=200)
    assert sim.now == 200
    # A deadline earlier than the current time must not rewind the clock.
    sim.run(until=50)
    assert sim.now == 200
    assert fired == ["first"]
    sim.run_until_idle()
    assert fired == ["first", "second"]


def test_max_events_budget_is_exact(sim):
    fired = []
    for index in range(5):
        sim.schedule(index * 10, fired.append, index)
    # max_events=N must allow exactly N callbacks, not N+1.
    with pytest.raises(SimulationError):
        sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.events_processed == 3
    # A budget equal to the queue length completes without raising.
    assert sim.run(max_events=2) == 40
    assert fired == [0, 1, 2, 3, 4]


def test_cancel_prevents_execution(sim):
    fired = []
    call = sim.schedule(100, fired.append, "cancelled")
    sim.schedule(200, fired.append, "kept")
    sim.cancel(call)
    sim.run_until_idle()
    assert fired == ["kept"]


def test_peek_returns_next_event_time(sim):
    assert sim.peek() is None
    sim.schedule(42, lambda: None)
    assert sim.peek() == 42


def test_step_executes_exactly_one_event(sim):
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(20, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_callbacks_can_schedule_more_events(sim):
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule(10, chain, depth + 1)

    sim.schedule(0, chain, 0)
    sim.run_until_idle()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_max_events_guard_raises(sim):
    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=1000)


def test_events_processed_counter(sim):
    for index in range(7):
        sim.schedule(index, lambda: None)
    sim.run_until_idle()
    assert sim.events_processed == 7
