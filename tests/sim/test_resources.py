"""Unit tests for stores, resources and credit pools."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.process import Delay, Process
from repro.sim.resources import CreditPool, Resource, Store


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get(sim):
    store = Store(sim)
    store.put("item")
    results = []

    def consumer():
        value = yield store.get()
        results.append(value)

    Process(sim, consumer())
    sim.run_until_idle()
    assert results == ["item"]


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    results = []

    def consumer():
        value = yield store.get()
        results.append((value, sim.now))

    def producer():
        yield Delay(250)
        store.put("late")

    Process(sim, consumer())
    Process(sim, producer())
    sim.run_until_idle()
    assert results == [("late", 250)]


def test_store_capacity_blocks_putter(sim):
    store = Store(sim, capacity=1)
    progress = []

    def producer():
        yield store.put("first")
        progress.append(("first", sim.now))
        yield store.put("second")
        progress.append(("second", sim.now))

    def consumer():
        yield Delay(100)
        yield store.get()

    Process(sim, producer())
    Process(sim, consumer())
    sim.run_until_idle()
    assert progress[0] == ("first", 0)
    assert progress[1][1] == 100


def test_store_fifo_order(sim):
    store = Store(sim)
    for index in range(5):
        store.put(index)
    seen = []

    def consumer():
        for _ in range(5):
            value = yield store.get()
            seen.append(value)

    Process(sim, consumer())
    sim.run_until_idle()
    assert seen == [0, 1, 2, 3, 4]


def test_store_putters_admitted_fifo_under_capacity_pressure(sim):
    store = Store(sim, capacity=1)
    admitted = []

    def producer(name, start):
        yield Delay(start)
        yield store.put(name)
        admitted.append((name, sim.now))

    def consumer():
        for _ in range(4):
            yield Delay(100)
            yield store.get()

    # "seed" fills the store at t=0; the three late producers block in
    # arrival order and must be admitted strictly FIFO as slots drain.
    for name, start in (("seed", 0), ("a", 1), ("b", 2), ("c", 3)):
        Process(sim, producer(name, start))
    Process(sim, consumer())
    sim.run_until_idle()
    assert [name for name, _ in admitted] == ["seed", "a", "b", "c"]
    # Blocked putters complete exactly when the consumer frees a slot.
    assert [when for _, when in admitted[1:]] == [100, 200, 300]


def test_store_getters_served_fifo_while_empty(sim):
    store = Store(sim)
    served = []

    def getter(name):
        value = yield store.get()
        served.append((name, value))

    for name in ("first", "second", "third"):
        Process(sim, getter(name))
    for value in range(3):
        store.put(value)
    sim.run_until_idle()
    assert served == [("first", 0), ("second", 1), ("third", 2)]


def test_store_try_put_and_try_get(sim):
    store = Store(sim, capacity=1)
    assert store.try_put("x") is True
    assert store.try_put("y") is False
    ok, value = store.try_get()
    assert ok and value == "x"
    ok, value = store.try_get()
    assert not ok and value is None


def test_store_invalid_capacity(sim):
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_acquire_release(sim):
    resource = Resource(sim, capacity=1)
    timeline = []

    def user(name, hold):
        yield resource.acquire()
        timeline.append((name, "got", sim.now))
        yield Delay(hold)
        resource.release()

    Process(sim, user("a", 100))
    Process(sim, user("b", 50))
    sim.run_until_idle()
    assert timeline[0] == ("a", "got", 0)
    assert timeline[1] == ("b", "got", 100)


def test_resource_capacity_two_allows_overlap(sim):
    resource = Resource(sim, capacity=2)
    grants = []

    def user(name):
        yield resource.acquire()
        grants.append((name, sim.now))
        yield Delay(10)
        resource.release()

    for name in "abc":
        Process(sim, user(name))
    sim.run_until_idle()
    assert grants[0][1] == 0 and grants[1][1] == 0
    assert grants[2][1] == 10


def test_resource_release_when_idle_raises(sim):
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_available_accounting(sim):
    resource = Resource(sim, capacity=3)
    assert resource.available == 3
    resource.acquire()
    assert resource.available == 2
    resource.release()
    assert resource.available == 3


def test_resource_release_direct_handoff_keeps_unit_in_use(sim):
    resource = Resource(sim, capacity=1)
    resource.acquire()
    grants = []

    def waiter():
        yield resource.acquire()
        grants.append(sim.now)

    Process(sim, waiter())
    sim.run_until_idle()
    assert grants == []
    # Releasing with a queued waiter hands the unit over directly: it
    # never becomes available, so in_use/available must not change.
    resource.release()
    sim.run_until_idle()
    assert grants == [0]
    assert resource.in_use == 1
    assert resource.available == 0
    resource.release()
    assert resource.in_use == 0
    assert resource.available == 1


# ----------------------------------------------------------------------
# CreditPool
# ----------------------------------------------------------------------
def test_credit_take_and_replenish(sim):
    pool = CreditPool(sim, initial=2)
    assert pool.try_take() is True
    assert pool.try_take() is True
    assert pool.try_take() is False
    pool.replenish()
    assert pool.try_take() is True


def test_credit_take_blocks_until_replenished(sim):
    pool = CreditPool(sim, initial=0, maximum=4)
    got = []

    def taker():
        yield pool.take(2)
        got.append(sim.now)

    def giver():
        yield Delay(300)
        pool.replenish(2)

    Process(sim, taker())
    Process(sim, giver())
    sim.run_until_idle()
    assert got == [300]
    assert pool.stall_count == 1


def test_credit_pool_never_exceeds_maximum(sim):
    pool = CreditPool(sim, initial=2, maximum=3)
    pool.replenish(10)
    assert pool.available == 3


def test_credit_replenish_grants_waiters_before_clamping(sim):
    # Two senders are owed 4 credits in total against maximum=2.  A bulk
    # replenish must serve both before clamping; the buggy order clamped
    # to 2 first and silently destroyed the second sender's credits.
    pool = CreditPool(sim, initial=0, maximum=2)
    got = []

    def taker(name):
        yield pool.take(2)
        got.append(name)

    Process(sim, taker("a"))
    Process(sim, taker("b"))
    sim.run_until_idle()
    pool.replenish(4)
    sim.run_until_idle()
    assert got == ["a", "b"]
    assert pool.pending_waiters() == 0
    assert pool.available == 0
    assert pool.total_taken == pool.total_replenished == 4


def test_credit_take_more_than_maximum_raises(sim):
    pool = CreditPool(sim, initial=2)
    with pytest.raises(SimulationError):
        pool.take(3)


def test_credit_invalid_arguments(sim):
    with pytest.raises(ValueError):
        CreditPool(sim, initial=-1)
    pool = CreditPool(sim, initial=1)
    with pytest.raises(ValueError):
        pool.take(0)
    with pytest.raises(ValueError):
        pool.replenish(0)


def test_credit_waiters_served_fifo(sim):
    pool = CreditPool(sim, initial=0, maximum=2)
    order = []

    def taker(name):
        yield pool.take(1)
        order.append(name)

    Process(sim, taker("first"))
    Process(sim, taker("second"))
    pool.replenish(2)
    sim.run_until_idle()
    assert order == ["first", "second"]
