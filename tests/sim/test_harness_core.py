"""Harness plumbing for the compiled dispatch core (--core flag).

The benchmark harness must expose the core choice on its CLI, stamp
the core that actually ran into the results JSON, and refuse an
explicit ``--core c`` with a readable error -- not a traceback -- when
the extension cannot be imported or built.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.sim import engine

_HARNESS_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py"
_spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
harness = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_harness", harness)
_spec.loader.exec_module(harness)

requires_ccore = pytest.mark.skipif(
    engine._load_ccore() is None,
    reason="compiled dispatch core not built (python -m repro.sim._ccore_build)")


def _run_pair(tmp_path, monkeypatch, core: str) -> dict:
    # Seed SIM_CORE so monkeypatch restores whatever the environment
    # had after main() overwrites it.
    monkeypatch.setenv("SIM_CORE", "auto")
    out = tmp_path / "bench.json"
    rc = harness.main(["--workload", "pair", "--packets-per-node", "40",
                       "--core", core, "--json", str(out)])
    assert rc == 0
    return json.loads(out.read_text())["workloads"]["pair"]


def test_core_py_is_stamped_in_results(tmp_path, monkeypatch):
    result = _run_pair(tmp_path, monkeypatch, "py")
    assert result["core"] == "py"
    assert result["scheduler"] in ("heap", "calendar")


@requires_ccore
def test_core_c_is_stamped_in_results(tmp_path, monkeypatch):
    result = _run_pair(tmp_path, monkeypatch, "c")
    assert result["core"] == "c"


@requires_ccore
def test_same_core_same_events_across_cores(tmp_path, monkeypatch):
    # The simulated work is byte-identical across cores: same packets,
    # same events, same simulated time -- only the wall clock differs.
    pure = _run_pair(tmp_path, monkeypatch, "py")
    compiled = _run_pair(tmp_path, monkeypatch, "c")
    for key in ("packets", "delivered", "events", "sim_ns"):
        assert pure[key] == compiled[key]


def test_core_c_unavailable_is_a_clear_error(monkeypatch, capsys):
    monkeypatch.setenv("SIM_CORE", "auto")
    monkeypatch.setattr(engine, "_load_ccore", lambda build=False: None)
    monkeypatch.setitem(engine._CCORE_STATE, "error", "no C compiler found")
    rc = harness.main(["--workload", "pair", "--core", "c"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unavailable" in err
    assert "no C compiler found" in err
    assert "_ccore_build" in err  # the fix is spelled out
    assert "Traceback" not in err
