"""Unit tests for statistics collectors."""

import pytest

from repro.sim.stats import Counter, Gauge, Histogram, StatsRegistry


def test_counter_increments():
    counter = Counter("events")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5


def test_counter_rejects_negative_increment():
    with pytest.raises(ValueError):
        Counter().increment(-1)


def test_counter_reset():
    counter = Counter()
    counter.increment(10)
    counter.reset()
    assert counter.value == 0


def test_gauge_time_average():
    gauge = Gauge("occupancy", initial=0.0)
    gauge.update(10.0, now=100)   # 0 for the first 100 ns
    gauge.update(0.0, now=200)    # 10 for the next 100 ns
    assert gauge.time_average(now=200) == pytest.approx(5.0)


def test_gauge_min_max_tracking():
    gauge = Gauge(initial=5.0)
    gauge.update(9.0, now=10)
    gauge.update(1.0, now=20)
    assert gauge.maximum == 9.0
    assert gauge.minimum == 1.0


def test_gauge_rejects_time_travel():
    gauge = Gauge()
    gauge.update(1.0, now=100)
    with pytest.raises(ValueError):
        gauge.update(2.0, now=50)


def test_histogram_summary_statistics():
    hist = Histogram("latency")
    for value in [10, 20, 30, 40, 50]:
        hist.record(value)
    assert hist.count == 5
    assert hist.mean == pytest.approx(30.0)
    assert hist.minimum == 10
    assert hist.maximum == 50
    assert hist.percentile(50) == 30
    assert hist.percentile(100) == 50


def test_histogram_empty_is_safe():
    hist = Histogram()
    assert hist.mean == 0.0
    assert hist.percentile(99) == 0.0
    assert hist.stddev == 0.0


def test_histogram_percentile_bounds():
    hist = Histogram()
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_stddev():
    hist = Histogram()
    for value in [2, 4, 4, 4, 5, 5, 7, 9]:
        hist.record(value)
    assert hist.stddev == pytest.approx(2.138, abs=0.01)


def test_registry_reuses_named_instruments():
    registry = StatsRegistry("component")
    counter_a = registry.counter("hits")
    counter_b = registry.counter("hits")
    assert counter_a is counter_b
    registry.counter("hits").increment()
    assert registry.counter("hits").value == 1


def test_registry_snapshot_contains_all_kinds():
    registry = StatsRegistry("component")
    registry.counter("hits").increment(3)
    registry.gauge("depth").update(2.0, now=10)
    registry.histogram("latency").record(5.0)
    snapshot = registry.snapshot()
    assert snapshot["hits"] == 3
    assert snapshot["depth.current"] == 2.0
    assert snapshot["latency.count"] == 1
