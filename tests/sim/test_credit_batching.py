"""Batched credit-return semantics (CreditPool.schedule_replenish).

The coalescing rules under test:

* N ``schedule_replenish`` calls inside one flush window ride a single
  flush event (one wakeup pass), never more.
* FIFO fairness: a coalesced flush grants blocked takers in exactly the
  order they queued, and never over-grants.
* No lost credits at the ``maximum`` clamp: waiters are served before
  clamping, and pool credits never exceed ``maximum`` afterwards.
* Flush-on-idle: pending credits always have a scheduled flush, so no
  waiter is left blocked when the simulation quiesces.
"""

import pytest

from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import LinkConfig, PhysicalLink
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.resources import CreditPool


def waiter(sim, pool, log, tag, amount=1):
    def body():
        yield pool.take(amount)
        log.append((tag, sim.now))
    return Process(sim, body(), name=tag)


# ----------------------------------------------------------------------
# CreditPool.schedule_replenish
# ----------------------------------------------------------------------
def test_coalesced_replenish_is_one_flush(sim):
    pool = CreditPool(sim, initial=0, maximum=8)
    for _ in range(5):
        pool.schedule_replenish(1, delay=100)
    assert pool.pending_replenish == 5
    sim.run_until_idle()
    assert pool.pending_replenish == 0
    assert pool.available == 5
    assert pool.total_replenished == 5
    assert pool.flush_count == 1  # five returns, one wakeup pass


def test_windows_after_a_flush_arm_a_new_flush(sim):
    pool = CreditPool(sim, initial=0, maximum=8)
    pool.schedule_replenish(1, delay=50)
    sim.run_until_idle()
    pool.schedule_replenish(2, delay=50)
    sim.run_until_idle()
    assert pool.available == 3
    assert pool.flush_count == 2


def test_fifo_fairness_under_coalesced_replenish(sim):
    pool = CreditPool(sim, initial=0, maximum=8)
    log = []
    for tag in ("first", "second", "third"):
        waiter(sim, pool, log, tag)
    sim.run(until=10)
    assert log == []  # everyone blocked
    for _ in range(3):
        pool.schedule_replenish(1, delay=90)
    sim.run_until_idle()
    # One flush granted all three, oldest first, at the flush time.
    assert [tag for tag, _at in log] == ["first", "second", "third"]
    assert {at for _tag, at in log} == {100}
    assert pool.available == 0
    assert pool.pending_waiters() == 0


def test_partial_batch_grants_in_order_and_keeps_fifo(sim):
    pool = CreditPool(sim, initial=0, maximum=8)
    log = []
    waiter(sim, pool, log, "big", amount=3)
    waiter(sim, pool, log, "small", amount=1)
    pool.schedule_replenish(2, delay=10)
    sim.run_until_idle()
    # Two credits cannot serve the 3-credit head waiter; FIFO order must
    # hold, so the later 1-credit taker must NOT jump the queue.
    assert log == []
    assert pool.pending_waiters() == 2
    pool.schedule_replenish(1, delay=10)
    sim.run_until_idle()
    assert [tag for tag, _at in log] == ["big"]
    assert pool.pending_waiters() == 1


def test_no_lost_credits_at_maximum_clamp(sim):
    pool = CreditPool(sim, initial=0, maximum=4)
    log = []
    waiter(sim, pool, log, "blocked", amount=4)
    # 6 credits coalesce into one flush against a maximum of 4: the
    # blocked waiter must be served from the un-clamped total first.
    for _ in range(6):
        pool.schedule_replenish(1, delay=20)
    sim.run_until_idle()
    assert [tag for tag, _at in log] == ["blocked"]
    # 6 in, 4 granted, remainder clamped to <= maximum.
    assert pool.available == 2
    assert pool.available <= pool.maximum


def test_flush_on_idle_no_waiter_left_blocked(sim):
    pool = CreditPool(sim, initial=0, maximum=8)
    log = []
    waiter(sim, pool, log, "only")
    pool.schedule_replenish(1, delay=1000)
    # Nothing else is scheduled: the flush event itself must drain the
    # batch before the simulation quiesces.
    sim.run_until_idle()
    assert [tag for tag, _at in log] == [("only", 1000)[0]]
    assert pool.pending_replenish == 0
    assert pool.pending_waiters() == 0


def test_schedule_replenish_rejects_non_positive_amounts(sim):
    pool = CreditPool(sim, initial=1)
    with pytest.raises(ValueError):
        pool.schedule_replenish(0)
    with pytest.raises(ValueError):
        pool.schedule_replenish(-2)


# ----------------------------------------------------------------------
# DataLink-level batched credit returns
# ----------------------------------------------------------------------
def build_datalink(sim, credits=8, queue_capacity=64):
    link = PhysicalLink(sim, LinkConfig(queue_capacity=queue_capacity))
    return DataLink(sim, link, DataLinkConfig(credits=credits))


def make_packet(payload=64):
    return Packet(src=0, dst=1, kind=PacketKind.QPAIR_DATA, payload_bytes=payload)


def test_backlogged_receiver_coalesces_credit_returns(sim):
    # Large packets serialize slower than the 20 ns receive processing,
    # so a burst backlogs the receiver... actually the reverse: tiny
    # processing drains arrivals one by one.  Force a backlog by
    # injecting a burst through a wide credit window and checking that
    # the pool saw fewer flushes than credits returned.
    datalink = build_datalink(sim, credits=16)
    datalink.connect(lambda packet: None)
    for _ in range(32):
        datalink.send_and_forget(make_packet(payload=0))
    sim.run_until_idle()
    returned = datalink.stats.counter("credits_returned").value
    assert returned == 32
    assert datalink.credits.available == 16  # every credit came home
    assert datalink.credits.total_replenished == 32
    # Batching must have coalesced at least some returns into shared
    # flush passes (payload-0 packets serialize in 25 ns > 20 ns
    # processing, keeping the receive pipeline busy enough to batch).
    assert datalink.credits.flush_count < returned


def test_clean_burst_loses_no_credits_with_batching(sim):
    datalink = build_datalink(sim, credits=2)
    received = []
    datalink.connect(received.append)
    for _ in range(20):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert len(received) == 20
    assert datalink.stats.counter("buffer_overflows").value == 0
    assert datalink.credits.available == 2
    assert datalink.credits.pending_replenish == 0


def test_tiny_credit_window_still_makes_progress(sim):
    # credits=1 clamps the batch threshold to 1: every credit flushes
    # immediately and the single-credit loop never deadlocks.
    datalink = build_datalink(sim, credits=1)
    received = []
    datalink.connect(received.append)
    for _ in range(10):
        datalink.send_and_forget(make_packet())
    sim.run_until_idle()
    assert len(received) == 10
    assert datalink.credits.available == 1
