"""Unit tests for the deterministic RNG helpers."""

import pytest

from repro.sim.rng import DeterministicRNG


def test_same_seed_same_stream():
    a = DeterministicRNG(42)
    b = DeterministicRNG(42)
    assert [a.uniform_int(0, 100) for _ in range(20)] == \
           [b.uniform_int(0, 100) for _ in range(20)]


def test_different_seeds_differ():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.uniform_int(0, 10**9) for _ in range(5)] != \
           [b.uniform_int(0, 10**9) for _ in range(5)]


def test_fork_is_deterministic_and_independent():
    parent_a = DeterministicRNG(7)
    parent_b = DeterministicRNG(7)
    child_a = parent_a.fork("cache")
    child_b = parent_b.fork("cache")
    assert child_a.uniform_int(0, 10**6) == child_b.uniform_int(0, 10**6)
    other = parent_a.fork("link")
    assert other.seed != child_a.seed


def test_uniform_int_bounds():
    rng = DeterministicRNG(3)
    values = [rng.uniform_int(5, 10) for _ in range(200)]
    assert min(values) >= 5
    assert max(values) <= 10


def test_bernoulli_extremes():
    rng = DeterministicRNG(4)
    assert all(rng.bernoulli(1.0) for _ in range(10))
    assert not any(rng.bernoulli(0.0) for _ in range(10))


def test_bernoulli_rejects_bad_probability():
    with pytest.raises(ValueError):
        DeterministicRNG().bernoulli(1.5)


def test_exponential_positive_and_mean():
    rng = DeterministicRNG(5)
    samples = [rng.exponential(100.0) for _ in range(2000)]
    assert all(sample >= 0 for sample in samples)
    assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.15)


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        DeterministicRNG().exponential(0)


def test_zipf_index_in_range():
    rng = DeterministicRNG(6)
    values = [rng.zipf_index(1000, 0.99) for _ in range(500)]
    assert all(0 <= value < 1000 for value in values)


def test_zipf_skew_zero_is_uniform_range():
    rng = DeterministicRNG(8)
    values = [rng.zipf_index(100, 0.0) for _ in range(500)]
    assert all(0 <= value < 100 for value in values)


def test_zipf_rejects_empty_population():
    with pytest.raises(ValueError):
        DeterministicRNG().zipf_index(0)


def test_sample_indices_distinct():
    rng = DeterministicRNG(9)
    sample = rng.sample_indices(50, 10)
    assert len(sample) == len(set(sample)) == 10
    with pytest.raises(ValueError):
        rng.sample_indices(5, 10)


def test_choice_and_shuffle_deterministic():
    rng = DeterministicRNG(10)
    items = list(range(10))
    rng.shuffle(items)
    rng2 = DeterministicRNG(10)
    items2 = list(range(10))
    rng2.shuffle(items2)
    assert items == items2
    assert rng.choice([1, 2, 3]) == rng2.choice([1, 2, 3])
