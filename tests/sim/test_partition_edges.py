"""Partition-boundary edge cases: the lookahead barrier's sharp corners.

Three hazards the conservative-lookahead protocol must handle exactly:
a cross-partition effect landing precisely *on* the safe horizon,
zero-delay events spawned at a barrier instant, and injections raised
for a foreign partition while its clock is mid-window (the deferred
record path).
"""

from repro.core.config import VeniceConfig
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.topology import build_fat_tree
from repro.sim.engine import Simulator
from repro.sim.partition import PartitionedSim, build_partitioned_fabric


def _fabric(num_nodes=16):
    config = VeniceConfig(num_nodes=num_nodes, topology="fat_tree").fabric
    return build_partitioned_fabric(config, build_fat_tree(num_nodes))


def _monolithic(num_nodes=16):
    from repro.core.system import VeniceSystem
    system = VeniceSystem.build(VeniceConfig(num_nodes=num_nodes,
                                             topology="fat_tree"))
    return system.build_event_fabric(sim=Simulator())


def test_effect_exactly_on_horizon_dispatches_at_correct_time():
    # A boundary emission at the window's t_min lands exactly on the
    # horizon H = t_min + L (every switch shares the 50 ns forwarding
    # latency, so emit + fwd == H): the effect enters the receiver's
    # ready queue at its aligned clock and must still dispatch at the
    # correct simulated time, with the packet completing its route.
    fabric = _fabric()
    port = next(p for p in fabric.boundary_ports
                if p.name.startswith("dl16->"))
    spine = port.dst_node
    assert fabric.lookahead_ns == fabric.switches[spine]._fwd_ns
    packet = Packet(src=0, dst=12, kind=PacketKind.QPAIR_DATA,
                    payload_bytes=64, created_at=1000)
    arrivals = []
    dst_switch = fabric.switches[12]
    dst_switch.attach_local_sink(
        lambda pkt, _sim=dst_switch.sim: arrivals.append(_sim.now))
    port.sim.schedule_at(1000, port, packet)
    runner = PartitionedSim(fabric)
    runner.run_until_idle()

    mono = _monolithic()
    mono_arrivals = []
    mono.switches[12].attach_local_sink(
        lambda pkt: mono_arrivals.append(mono.sim.now))
    mono_packet = Packet(src=0, dst=12, kind=PacketKind.QPAIR_DATA,
                         payload_bytes=64, created_at=1000)
    # The port call stands in for the moment the monolithic datalink
    # would hand the packet to the spine switch.
    mono.sim.schedule_at(1000, mono.switches[spine].inject, mono_packet)
    mono.sim.run_until_idle()

    assert arrivals == mono_arrivals
    assert len(arrivals) == 1


def test_zero_delay_events_at_a_barrier_instant_run_at_that_instant():
    fabric = _fabric(num_nodes=8)
    runner = PartitionedSim(fabric)
    sim0 = fabric.sims[0]
    trace = []

    def spawn_zero_delay(tag):
        trace.append((sim0.now, tag))
        sim0.call_after(0, trace.append, (sim0.now, f"{tag}-child"))

    # t_min = 100 makes the first horizon exactly 100 + L; the second
    # event sits precisely on that barrier and spawns zero-delay work.
    horizon = 100 + fabric.lookahead_ns
    sim0.schedule_at(100, spawn_zero_delay, "window-min")
    sim0.schedule_at(horizon, spawn_zero_delay, "on-barrier")
    runner.run_until_idle()
    assert trace == [(100, "window-min"), (100, ("window-min-child")),
                     (horizon, "on-barrier"),
                     (horizon, (f"on-barrier-child"))]
    # Zero-delay children never leak across a barrier's simulated time.
    assert all(sim.now == runner.now for sim in fabric.sims)


def test_foreign_inject_mid_window_is_deferred_to_the_barrier():
    # An event running inside partition 0's window injects at a switch
    # owned by another partition (the cross-traffic relaunch shape).
    # The injection must become a barrier record and still route at
    # emit_time + forwarding latency.
    fabric = _fabric()
    runner = PartitionedSim(fabric)
    foreign_leaf = 17  # leaf of nodes 4..7, partition 1
    packet = Packet(src=4, dst=5, kind=PacketKind.QPAIR_DATA,
                    payload_bytes=64, created_at=500)
    arrivals = []
    dst_switch = fabric.switches[5]
    dst_switch.attach_local_sink(
        lambda pkt, _sim=dst_switch.sim: arrivals.append(_sim.now))

    observed = []

    def inject_from_partition_zero():
        runner.inject(foreign_leaf, packet)
        observed.append(len(runner._pending))

    fabric.sims[0].schedule_at(500, inject_from_partition_zero)
    runner.run_until_idle()
    assert observed == [1]  # really took the deferred-record path

    mono = _monolithic()
    mono_arrivals = []
    mono.switches[5].attach_local_sink(
        lambda pkt: mono_arrivals.append(mono.sim.now))
    mono_packet = Packet(src=4, dst=5, kind=PacketKind.QPAIR_DATA,
                         payload_bytes=64, created_at=500)
    mono.sim.schedule_at(500, mono.switches[foreign_leaf].inject,
                         mono_packet)
    mono.sim.run_until_idle()
    assert arrivals == mono_arrivals


def test_facade_bookkeeping_spans_all_partitions():
    fabric = _fabric(num_nodes=8)
    runner = PartitionedSim(fabric)
    for pid, sim in enumerate(fabric.sims):
        sim.schedule_at(10 * (pid + 1), lambda: None)
    assert len(runner) == len(fabric.sims)
    handle = runner.call_after(5, lambda _: None, None)
    assert len(runner) == len(fabric.sims) + 1
    runner.cancel(handle)
    assert runner.is_cancelled(handle)
    runner.run_until_idle()
    assert runner.events_processed == len(fabric.sims)
    assert len(runner) == 0
    # run(until=...) aligns every partition clock past the last event.
    runner.run(until=10_000)
    assert runner.now == 10_000
    assert all(sim.now == 10_000 for sim in fabric.sims)
