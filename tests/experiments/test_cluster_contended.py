"""Tests for the concurrent-borrower cluster sweep (cluster_contended)."""

import pytest

from repro.experiments.fig_cluster_contended import (
    ClusterContendedConfig,
    run_fig_cluster_contended,
)

SERIES = ("serialized_read_ns", "concurrent_read_ns",
          "per_borrower_slowdown", "overlap_speedup",
          "hottest_link_busy_percent", "events_processed")


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterContendedConfig(node_counts=(1, 2))
    with pytest.raises(ValueError):
        ClusterContendedConfig(topology="mesh3d")
    with pytest.raises(ValueError):
        ClusterContendedConfig(reads_per_borrower=0)
    with pytest.raises(ValueError):
        ClusterContendedConfig(scheduler="fifo")
    config = ClusterContendedConfig(node_counts=(8, 2, 8))
    assert config.node_counts == (2, 8)


def test_overlap_speedup_grows_with_borrower_count():
    report = run_fig_cluster_contended(ClusterContendedConfig(
        node_counts=(2, 4), reads_per_borrower=2))
    for name in SERIES:
        assert set(report.series[name]) == {"2_nodes", "4_nodes"}
    speedup = report.series["overlap_speedup"]
    # Overlapping N borrowers' ops must share sim time: well above 1,
    # growing with the borrower count.
    assert speedup["2_nodes"] > 1.5
    assert speedup["4_nodes"] > speedup["2_nodes"]
    # Concurrent per-op latency can only be inflated by interference,
    # never deflated below the serialized measurement.
    for label, value in report.series["per_borrower_slowdown"].items():
        assert value >= 0.999, label


def test_shared_hub_produces_slowdown_serialized_driver_cannot():
    report = run_fig_cluster_contended(ClusterContendedConfig(
        node_counts=(8,), topology="star", reads_per_borrower=4))
    # Every borrower's response leaves its donor through the star hub:
    # measured ops queue behind other measured ops, which the
    # one-op-at-a-time driver can never show.
    assert report.series["per_borrower_slowdown"]["8_nodes"] > 1.01
    assert (report.series["concurrent_read_ns"]["8_nodes"]
            > report.series["serialized_read_ns"]["8_nodes"])


def test_deterministic_across_runs():
    config = ClusterContendedConfig(node_counts=(4,), reads_per_borrower=2)
    first = run_fig_cluster_contended(config).series
    second = run_fig_cluster_contended(config).series
    assert first == second
