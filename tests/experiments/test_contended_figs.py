"""The Venice sharing experiments over the contended event fabric.

Small-config regression runs of ``fig15_contended`` / ``fig16_contended``:
the uncontended event mode must validate against the closed forms
within the stated parity tolerance, the closed-form series must be
bit-identical to a plain closed-form run (the refactor may not disturb
them), and cross-traffic must show up as extra measured latency.
"""

import pytest

from repro.experiments.fig15_remote_memory import (
    Fig15Config,
    Fig15ContendedConfig,
    run_fig15,
    run_fig15_contended,
)
from repro.experiments.fig16_accel_nic import (
    Fig16Config,
    Fig16ContendedConfig,
    run_fig16_contended,
)

#: Parity bound for whole-experiment ratios (per-op tolerance is 15 %;
#: the normalised performance ratios cancel most of the uniform delta).
PARITY_PERCENT = 12.0


def _small_fig15() -> Fig15Config:
    return Fig15Config(inmem_db_dataset_bytes=1024 * 1024,
                       inmem_db_queries=100,
                       cc_vertices=256, cc_edges=1_200, cc_iterations=1,
                       grep_dataset_bytes=512 * 1024,
                       graph500_scale=7)


def _small_fig16() -> Fig16Config:
    return Fig16Config(small_dataset_bytes=512 * 1024,
                       large_dataset_bytes=2 * 1024 * 1024,
                       block_bytes=128 * 1024,
                       stripe_lanes=1)


@pytest.fixture(scope="module")
def fig15_uncontended():
    return run_fig15_contended(Fig15ContendedConfig(
        workloads=_small_fig15(), cross_traffic=False))


def test_fig15_uncontended_event_mode_matches_closed_forms(fig15_uncontended):
    report = fig15_uncontended
    deviation = report.series["fabric"]["max_rel_deviation_percent"]
    assert 0 <= deviation <= PARITY_PERCENT
    assert report.series["fabric"]["transport_ops"] > 0
    assert report.series["fabric"]["cross_traffic_packets"] == 0


def test_fig15_closed_form_series_unchanged_by_the_refactor(fig15_uncontended):
    plain = run_fig15(_small_fig15())
    for name in ("all_local", "crma", "rdma_swap"):
        assert fig15_uncontended.series[f"closed_form_{name}"] == \
            plain.series[name]


def test_fig15_contended_shows_queueing_on_fine_grained_accesses(
        fig15_uncontended):
    contended = run_fig15_contended(Fig15ContendedConfig(
        workloads=_small_fig15()))
    assert contended.series["fabric"]["cross_traffic_packets"] > 0
    # Cross-traffic queues the per-cacheline CRMA path: the in-memory
    # DB's normalised performance drops below its uncontended value.
    assert (contended.series["event_crma"]["inmem_db"]
            < fig15_uncontended.series["event_crma"]["inmem_db"])
    # The closed-form reference is load-blind, so it is identical in
    # both reports.
    assert contended.series["closed_form_crma"] == \
        fig15_uncontended.series["closed_form_crma"]


def test_fig16_uncontended_event_mode_matches_closed_forms():
    report = run_fig16_contended(Fig16ContendedConfig(
        sizes=_small_fig16(), cross_traffic=False))
    deviation = report.series["fabric"]["max_rel_deviation_percent"]
    assert 0 <= deviation <= PARITY_PERCENT
    # Near-linear accelerator scaling survives on the event fabric.
    speedups = report.series["event_accel_speedup_2MB"]
    assert speedups["LA+1RA"] < speedups["LA+2RA"] < speedups["LA+3RA"]


def test_fig16_contended_runs_and_reports_cross_traffic():
    report = run_fig16_contended(Fig16ContendedConfig(sizes=_small_fig16()))
    assert report.series["fabric"]["cross_traffic_packets"] > 0
    assert report.series["fabric"]["events_processed"] > 0
    for prefix in ("closed_form", "event"):
        assert f"{prefix}_nic_utilization_percent_LN+3RN" in report.series
