"""Unit tests for the experiment command-line runner."""

import pytest

from repro.experiments.cli import EXPERIMENTS, available_experiments, main, run_experiment


def test_every_paper_result_has_an_experiment_id():
    ids = available_experiments()
    assert {"fig03", "fig05", "fig06", "fig14", "fig15",
            "fig16a", "fig16b", "fig17", "fig18", "cluster",
            "contention", "contention_closed", "cluster_contended",
            "fig15_contended", "fig16_contended",
            "hwcost"} <= set(ids)


def test_run_experiment_returns_a_report():
    report = run_experiment("hwcost")
    assert report.figure_id == "sec7.3"
    assert "hardware_cost" in report.series


def test_run_experiment_unknown_id():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_main_lists_experiments_when_no_args(capsys):
    assert main([]) == 0
    output = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in output


def test_main_runs_selected_experiments(capsys):
    assert main(["hwcost", "fig18"]) == 0
    output = capsys.readouterr().out
    assert "sec7.3" in output
    assert "fig18" in output


def test_main_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["not-a-figure"])
