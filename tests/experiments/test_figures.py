"""Integration tests for the experiment drivers.

Every driver runs with a reduced-size configuration so the whole module
stays fast; the assertions check the *shape* of each result (orderings,
sign of effects), which is the reproduction target.  Full-size runs live
in ``benchmarks/``.
"""

import pytest

from repro.experiments.common import ExperimentPlatform
from repro.experiments.fig03_commodity import Fig03Config, run_fig03
from repro.experiments.fig05_arch_support import Fig05Config, run_fig05
from repro.experiments.fig06_router import run_fig06
from repro.experiments.fig14_redis_memory import Fig14Config, run_fig14, run_donor_impact
from repro.experiments.fig15_remote_memory import Fig15Config, run_fig15
from repro.experiments.fig16_accel_nic import Fig16Config, run_fig16a, run_fig16b
from repro.experiments.fig17_channels import (
    Fig17Config,
    adaptive_selection_matches_best,
    run_fig17,
)
from repro.experiments.fig18_flow_control import Fig18Config, run_fig18
from repro.experiments.hardware_cost import run_hardware_cost

MB = 1024 * 1024


@pytest.fixture(scope="module")
def fig03_report():
    return run_fig03(Fig03Config(dataset_bytes=6 * MB, local_bytes=4 * MB,
                                 num_queries=800))


@pytest.fixture(scope="module")
def fig05_config():
    return Fig05Config(remote_dataset_bytes=2 * MB, kv_queries=600,
                       pagerank_vertices=4096, pagerank_edges=8000)


@pytest.fixture(scope="module")
def fig05_report(fig05_config):
    return run_fig05(fig05_config)


def test_fig03_commodity_interconnects_ordering(fig03_report):
    slowdowns = fig03_report.series["slowdown_vs_all_local"]
    # Every commodity path is much slower than all-local memory.
    assert all(value > 3.0 for value in slowdowns.values())
    # Figure 3 ordering: Ethernet > IB SRP > PCIe RDMA among swap paths,
    # and the commodity LD/ST chip is the worst of everything.
    assert slowdowns["ethernet_swap"] > slowdowns["infiniband_srp"] > \
        slowdowns["pcie_rdma"]
    assert slowdowns["pcie_ldst_commodity"] > slowdowns["ethernet_swap"]
    assert slowdowns["pcie_ldst_fixed"] < slowdowns["pcie_ldst_commodity"] / 5


def test_fig05_architectural_support_ordering(fig05_report):
    for workload in ("pagerank", "berkeleydb"):
        series = fig05_report.series[workload]
        # Remote memory always costs something.
        assert all(value > 1.0 for value in series.values())
        # On-chip integration beats off-chip for both channel types.
        assert series["on_chip_crma"] < series["off_chip_crma"]
        assert series["on_chip_qpair"] < series["off_chip_qpair"]
        # CRMA hardware support beats explicit QPair messaging.
        assert series["on_chip_crma"] < series["on_chip_qpair"]
    # Asynchrony helps PageRank but not the dependent key/value queries.
    assert fig05_report.series["pagerank"]["async_on_chip_qpair"] < \
        fig05_report.series["pagerank"]["on_chip_qpair"]
    assert fig05_report.series["berkeleydb"]["async_on_chip_qpair"] == \
        pytest.approx(fig05_report.series["berkeleydb"]["on_chip_qpair"], rel=0.02)


def test_fig06_router_overhead_shape(fig05_config):
    report = run_fig06(fig05_config)
    for workload in ("pagerank", "berkeleydb"):
        overheads = report.series[workload]
        assert all(value > 0 for value in overheads.values())
        # The faster the configuration, the more the extra hop hurts.
        assert overheads["on_chip_crma"] > overheads["on_chip_qpair"]
    # Latency-tolerant code barely notices the router.
    assert report.series["pagerank"]["async_on_chip_qpair"] < \
        report.series["pagerank"]["on_chip_crma"]


def test_fig14_memory_sweep_shape():
    report = run_fig14(Fig14Config(num_queries=1_500))
    remote_times = list(report.series["execution_time_ns_remote"].values())
    miss_rates = list(report.series["miss_rate_percent_remote"].values())
    # More memory -> monotonically lower miss rate and execution time.
    assert all(later <= earlier for earlier, later in zip(miss_rates, miss_rates[1:]))
    assert all(later < earlier for earlier, later in zip(remote_times, remote_times[1:]))
    # Local and remote supply are close at every point (within 20%).
    for label, remote_time in report.series["execution_time_ns_remote"].items():
        local_time = report.series["execution_time_ns_local"][label]
        assert remote_time == pytest.approx(local_time, rel=0.2)
    assert report.series["summary"]["speedup_70MB_to_350MB"] > 3.0


def test_fig14_donor_impact_negligible():
    impact = run_donor_impact()
    assert impact["cc_time_ns_while_donating"] == \
        pytest.approx(impact["cc_time_ns_before_donation"], rel=0.01)


def test_fig15_remote_memory_shape():
    report = run_fig15(Fig15Config(inmem_db_dataset_bytes=4 * MB, inmem_db_queries=800,
                                   grep_dataset_bytes=4 * MB, graph500_scale=9,
                                   cc_iterations=1))
    all_local = report.series["all_local"]
    crma = report.series["crma"]
    rdma = report.series["rdma_swap"]
    # The ideal configuration is the best for every workload.
    for name in all_local:
        assert all_local[name] >= crma[name]
        assert all_local[name] >= rdma[name]
    # Random access favours CRMA; streaming favours page-granularity RDMA.
    assert crma["inmem_db"] > rdma["inmem_db"]
    assert rdma["grep"] > crma["grep"]
    # Memory capacity matters enormously for the random-access database.
    assert all_local["inmem_db"] > 20.0


def test_fig16a_accelerator_scaling():
    report = run_fig16a(Fig16Config(small_dataset_bytes=4 * MB,
                                    large_dataset_bytes=16 * MB))
    # Series labels follow the configured dataset sizes.
    for series_name in ("speedup_4MB", "speedup_16MB"):
        speedups = list(report.series[series_name].values())
        # Monotonic scaling, roughly linear: 3 remote accelerators give
        # at least 2.5x over the local-only baseline.
        assert all(later > earlier for earlier, later in zip(speedups, speedups[1:]))
        assert speedups[-1] > 2.5


def test_fig16b_nic_scaling_and_utilisation():
    report = run_fig16b()
    for label in ("speedup_4B", "speedup_256B"):
        speedups = list(report.series[label].values())
        assert all(later > earlier for earlier, later in zip(speedups, speedups[1:]))
    utilization = report.series["utilization_percent_LN+3RN"]
    assert utilization["256B"] > utilization["4B"]
    assert 20.0 < utilization["4B"] < 70.0
    assert 60.0 < utilization["256B"] <= 100.0


@pytest.fixture(scope="module")
def fig17_report():
    return run_fig17(Fig17Config(dataset_bytes=2 * MB, kv_queries=600))


def test_fig17_each_channel_wins_its_scenario(fig17_report):
    assert fig17_report.series["inmem_db_random"]["crma"] == 100.0
    assert fig17_report.series["cc_contiguous"]["rdma"] == 100.0
    assert fig17_report.series["iperf_messaging"]["qpair"] == 100.0
    # And no channel is best everywhere.
    winners = {max(series, key=series.get) for series in fig17_report.series.values()}
    assert winners == {"crma", "rdma", "qpair"}


def test_fig17_adaptive_library_picks_winners():
    outcome = adaptive_selection_matches_best(Fig17Config(dataset_bytes=2 * MB,
                                                          kv_queries=400))
    assert all(outcome.values())


def test_fig18_flow_control_improvement():
    report = run_fig18(Fig18Config())
    improvements = report.series["improvement_percent"]
    assert all(value > 0 for value in improvements.values())
    assert improvements["4B_word"] >= improvements["128B_quad_cacheline"]
    # Paper range: 28-51%; allow a generous band around it.
    assert all(15.0 <= value <= 65.0 for value in improvements.values())


def test_hardware_cost_report():
    report = run_hardware_cost()
    cost = report.series["hardware_cost"]
    assert cost["fraction_of_host_die_percent"] < 3.0
    assert cost["qpair_to_crma_logic_ratio"] == pytest.approx(2.0, rel=0.3)
    assert 25.0 <= cost["sram_kb"] <= 45.0


def test_reports_render_to_text(fig03_report, fig05_report, fig17_report):
    for report in (fig03_report, fig05_report, fig17_report):
        text = report.to_text()
        assert report.figure_id in text
        assert "paper" in text
