"""Tests for the cluster-contention experiment over the event fabric."""

import pytest

from repro.experiments.cli import EXPERIMENTS
from repro.experiments.fig_cluster_contention import (
    ClusterContentionConfig,
    run_fig_cluster_contention,
)

SMALL = ClusterContentionConfig(node_counts=(2, 4, 8), probes_per_node=2,
                                cross_traffic_per_node=8)


@pytest.fixture(scope="module")
def report():
    return run_fig_cluster_contention(SMALL)


def test_registered_in_cli():
    assert "contention" in EXPERIMENTS


def test_all_series_cover_every_node_count(report):
    labels = [f"{n}_nodes" for n in SMALL.node_counts]
    for name in ("closed_form_latency_ns", "measured_uncontended_ns",
                 "measured_contended_ns", "queueing_delay_ns",
                 "hottest_link_busy_percent"):
        assert report.labels(name) == labels


def test_contended_latency_never_below_uncontended(report):
    for label in report.labels("queueing_delay_ns"):
        assert report.value("queueing_delay_ns", label) >= 0.0
        assert (report.value("measured_contended_ns", label)
                >= report.value("measured_uncontended_ns", label))


def test_event_fabric_charges_more_than_the_closed_forms(report):
    # The closed forms model wire+switch latency only; the event fabric
    # additionally pays datalink processing and credit machinery, so the
    # uncontended measurement must sit above the closed form.
    for label in report.labels("closed_form_latency_ns"):
        assert (report.value("measured_uncontended_ns", label)
                > report.value("closed_form_latency_ns", label))


def test_cross_traffic_queues_the_larger_clusters(report):
    # The multi-router shapes must exhibit visible queueing delay.
    assert report.value("queueing_delay_ns", "8_nodes") > 0.0


def test_latency_cache_is_shared_across_the_sweep(report):
    assert report.value("latency_cache", "hit_rate_percent") > 50.0


def test_star_topology_supported():
    config = ClusterContentionConfig(node_counts=(2, 4), topology="star",
                                     probes_per_node=1,
                                     cross_traffic_per_node=2)
    star_report = run_fig_cluster_contention(config)
    assert star_report.value("measured_contended_ns", "4_nodes") > 0.0


def test_rejects_bad_configs():
    with pytest.raises(ValueError):
        ClusterContentionConfig(node_counts=(1, 2))
    with pytest.raises(ValueError):
        ClusterContentionConfig(topology="mesh3d")
    with pytest.raises(ValueError):
        ClusterContentionConfig(probes_per_node=0)
