"""mn_failover experiment: determinism, zero loss, throughput, policy.

The acceptance gates of the sharded-MN PR live here: the failover run
is byte-identical across repeats and across the heap and calendar
timer backends for a fixed seed; no allocation is lost across crashes
(with the sanitizer on); the 4-shard coordinator clears the 64-node
batched-borrow sweep at >= 2x the single-MN serial cost; and the
contention-aware policy measurably beats distance-first on the
contended 16-node sweep.
"""

import json

from repro.experiments.fig_mn_failover import (
    MnFailoverConfig,
    _run_contention_once,
    _run_failover_once,
    _run_throughput_once,
    mn_failover_stats_dump,
    run_fig_mn_failover,
)


def _config(**overrides):
    return MnFailoverConfig(**overrides)


def test_failover_run_is_byte_identical_across_timer_backends():
    heap = mn_failover_stats_dump(_config(scheduler="heap"))
    calendar = mn_failover_stats_dump(_config(scheduler="calendar"))
    repeat = mn_failover_stats_dump(_config(scheduler="heap"))
    assert heap == calendar
    assert heap == repeat


def test_failover_loses_no_allocations_and_balances_the_ledger():
    # Sanitizer on: the packet-lifecycle and conservation checks run
    # against the same fleet the crashes hit.
    run = _run_failover_once(_config(sanitize=True), num_nodes=8,
                             num_shards=2)
    assert run["allocations_lost"] == 0
    assert run["ledger_balanced"] is True
    assert run["active_allocations_at_end"] == 0
    assert run["donated_bytes_at_end"] == 0
    assert run["orphaned_releases"] == 0
    # Both shard primaries crashed; each failover was measured.
    assert run["shards"]["crashes"] == 2
    assert len(run["failover_ns"]) == 2
    assert all(latency > 0 for latency in run["failover_ns"])
    # The mid-batch crash genuinely interrupted work that was then
    # replayed -- the scenario under test, not a quiet run.
    assert run["tickets_replayed"] > 0
    assert run["borrows_ok"] > 0


def test_failover_latency_bounded_by_detection_window():
    config = _config()
    run = _run_failover_once(config, num_nodes=16, num_shards=4)
    # Detection is pump-driven: the latency from crash to promotion is
    # bounded by the heartbeat timeout plus a few pump periods (plus
    # the wave gaps the workload sleeps between phases).
    bound = (config.heartbeat_timeout_ns + 4 * config.heartbeat_period_ns
             + 4 * config.wave_gap_ns)
    assert all(latency <= bound for latency in run["failover_ns"])


def test_four_shard_coordinator_clears_twice_single_mn_throughput():
    single = _run_throughput_once(_config(), num_shards=1)
    quad = _run_throughput_once(_config(), num_shards=4)
    assert quad["requests_planned"] == 64
    assert quad["throughput_x"] >= 2.0
    # Sharding must actually shrink the makespan, not just re-label it.
    assert quad["plan_makespan_ns"] < single["plan_makespan_ns"]


def test_contention_aware_beats_distance_first_when_donors_are_hot():
    config = _config()
    distance = _run_contention_once(config, contention_aware=False)
    aware = _run_contention_once(config, contention_aware=True)
    # Distance-first ties on hops and piles onto the saturated leaf;
    # the telemetry-fed policy routes around it entirely...
    assert distance["hot_donor_shares"] == 8
    assert aware["hot_donor_shares"] == 0
    # ...and that shows up as a measurably lower per-borrower slowdown.
    assert aware["per_borrower_slowdown"] < distance["per_borrower_slowdown"]


def test_report_assembles_all_series():
    report = run_fig_mn_failover(_config(node_counts=(8,),
                                         shard_counts=(1, 2)))
    for series in ("failover_mean_ns", "tickets_replayed",
                   "allocations_lost", "coordinator_throughput_x",
                   "per_borrower_slowdown", "hot_donor_shares"):
        assert series in report.series
    assert all(value == 0 for value
               in report.series["allocations_lost"].values())
    assert report.series["per_borrower_slowdown"]["contention_aware"] < \
        report.series["per_borrower_slowdown"]["distance_first"]


def test_stats_dump_is_valid_canonical_json():
    dump = mn_failover_stats_dump(_config())
    data = json.loads(dump)
    assert data["allocations_lost"] == 0
    assert json.dumps(data, sort_keys=True) == dump
