"""Tests for the churn experiment (fig_cluster_churn).

Small configs only: the full sweep runs in CI as the ``churn-smoke``
job.  What must hold at any size: the run completes with zero hangs
(every read delivers or gives up typed), the report carries every
recovery series, and the canonical stats dump is byte-identical across
repeats and across timer backends for a fixed campaign seed.
"""

import json
import os

import pytest

from repro.experiments.cli import EXPERIMENTS
from repro.experiments.fig_cluster_churn import (
    ClusterChurnConfig,
    churn_stats_dump,
    run_fig_cluster_churn,
)

SERIES = ("goodput_ops_per_ms", "throughput_degradation_percent",
          "replay_amplification", "crash_detection_ns", "reborrow_ns",
          "recovery_ns", "ops_timed_out", "reads_gave_up")


def _small_config(**overrides):
    settings = dict(node_counts=(8,), fault_scales=(1,),
                    horizon_ns=2_000_000,
                    scheduler=os.environ.get("SIM_SCHEDULER", "auto"))
    settings.update(overrides)
    return ClusterChurnConfig(**settings)


def test_registered_in_the_cli():
    assert "churn" in EXPERIMENTS


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterChurnConfig(node_counts=())
    with pytest.raises(ValueError):
        ClusterChurnConfig(node_counts=(2,))
    with pytest.raises(ValueError):
        ClusterChurnConfig(fault_scales=(0,))
    with pytest.raises(ValueError):
        ClusterChurnConfig(horizon_ns=0)
    with pytest.raises(ValueError):
        ClusterChurnConfig(deadline_ns=0)
    with pytest.raises(ValueError):
        ClusterChurnConfig(scheduler="fifo")
    config = ClusterChurnConfig(node_counts=(16, 8, 16),
                                fault_scales=(2, 1, 2))
    assert config.node_counts == (8, 16)
    assert config.fault_scales == (1, 2)


def test_small_campaign_completes_with_recovery_series():
    report = run_fig_cluster_churn(_small_config())
    for name in SERIES:
        assert name in report.series
    assert set(report.series["goodput_ops_per_ms"]) == {"8n_x0", "8n_x1"}
    churn = report.series["goodput_ops_per_ms"]["8n_x1"]
    baseline = report.series["goodput_ops_per_ms"]["8n_x0"]
    # The campaign can only cost throughput, never add it.
    assert 0 < churn <= baseline
    # Flapped links fault in-flight packets into the replay path: the
    # storm amplifies replays over the BER-only baseline.
    assert report.series["replay_amplification"]["8n_x1"] >= 1.0
    # The crash was detected on the simulated clock.
    assert report.series["crash_detection_ns"]["8n_x1"] > 0


def test_stats_dump_is_deterministic_across_repeats():
    config = _small_config()
    first = churn_stats_dump(config, num_nodes=8, scale=1)
    second = churn_stats_dump(config, num_nodes=8, scale=1)
    assert first == second


def test_stats_dump_identical_across_timer_backends():
    heap = churn_stats_dump(_small_config(scheduler="heap"),
                            num_nodes=8, scale=1)
    calendar = churn_stats_dump(_small_config(scheduler="calendar"),
                                num_nodes=8, scale=1)
    assert heap == calendar


def test_every_read_resolves_typed():
    # Zero hangs: ok + gave-up accounts for every submitted read, and
    # gave-up reads exhausted a typed retry budget rather than vanishing.
    stats = json.loads(churn_stats_dump(_small_config(),
                                        num_nodes=8, scale=1))
    assert stats["reads_ok"] > 0
    assert stats["reads_ok"] + stats["reads_gave_up"] > 0
    assert stats["engine"]["nodes_crashed"] == 1
    # Heals scheduled past the horizon are applied early by stop()
    # (uncounted), so the counter can only trail the campaign.
    assert stats["engine"]["heals_applied"] <= \
        stats["engine"]["campaign_events"]
