#!/usr/bin/env python3
"""Runtime design space: donor-selection policies and fault handling.

The paper's prototype allocator "only considers distance" and leaves
reliability to future work.  This example exercises the runtime layer
beyond that starting point: it compares three donor-selection policies
on the same burst of memory requests, then injects a link failure and a
node failure and shows the recovery plan the Monitor Node produces.

Run with:  python examples/runtime_policies.py
"""

from collections import Counter

from repro.fabric.topology import build_mesh3d
from repro.runtime import (
    BandwidthAwarePolicy,
    DistanceFirstPolicy,
    FaultHandler,
    LoadBalancedPolicy,
    MonitorNode,
    NodeAgent,
)

MB = 1024 * 1024
GB = 1024 * MB


def build_monitor(policy) -> MonitorNode:
    topology = build_mesh3d((2, 2, 2))
    monitor = MonitorNode(topology, policy=policy)
    for node in range(8):
        monitor.register_agent(NodeAgent(
            node_id=node, memory_capacity_bytes=4 * GB,
            num_accelerators=1, num_nics=1,
            neighbors=tuple(topology.neighbors(node))))
    return monitor


def main() -> None:
    print("donor choice for eight 256 MB requests from node 0, per policy\n")
    for policy in (DistanceFirstPolicy(), LoadBalancedPolicy(),
                   BandwidthAwarePolicy()):
        monitor = build_monitor(policy)
        donors = [monitor.request_memory(requester=0, size_bytes=256 * MB).donor
                  for _ in range(8)]
        spread = dict(sorted(Counter(donors).items()))
        print(f"{policy.name:>16}: donors used {spread}")

    print("\nfault handling on the distance-first runtime")
    monitor = build_monitor(DistanceFirstPolicy())
    handler = FaultHandler(monitor)
    allocation = monitor.request_memory(requester=0, size_bytes=512 * MB)
    print(f"  node 0 borrowed 512 MB from node {allocation.donor}")

    plan = handler.handle_link_down(0, allocation.donor)
    step = plan.affected()[0]
    print(f"  link (0,{allocation.donor}) failed -> {step.action.value}; "
          f"new path {step.new_path}")

    plan = handler.handle_node_failure(allocation.donor)
    step = plan.affected()[0]
    replacement = f"node {step.new_donor}" if step.new_donor is not None else "nothing"
    print(f"  node {allocation.donor} failed -> {step.action.value}; "
          f"memory now comes from {replacement}")
    print(f"  active allocations after recovery: {len(monitor.rat.active())}")


if __name__ == "__main__":
    main()
