#!/usr/bin/env python3
"""Quickstart: build a Venice rack, borrow remote memory, and measure it.

This walks the complete Figure 2 flow from the public API:

1. build the Table 1 system (eight nodes, 3D mesh, Monitor Node runtime);
2. ask the Monitor Node for remote memory on behalf of node 0;
3. hot-plug the donated region and access it transparently through the
   CRMA channel, comparing latencies against local DRAM and against a
   conventional swap-to-storage configuration;
4. release the memory again.

Run with:  python examples/quickstart.py
"""

from repro.core import VeniceConfig, VeniceSystem
from repro.mem.swap import LocalDiskSwapDevice, SwapConfig, SwapManager

MB = 1024 * 1024


def main() -> None:
    # 1. Build the paper's platform (Table 1 defaults).
    system = VeniceSystem.build(VeniceConfig())
    print(f"built a Venice system with nodes {system.node_ids} "
          f"on a {system.topology.name} topology")

    # 2. Node 0 asks the Monitor Node for 256 MB of remote memory.
    allocation, grant = system.request_remote_memory(requester=0,
                                                     size_bytes=256 * MB)
    print(f"monitor node granted 256 MB from donor node {allocation.donor} "
          f"({allocation.hops} hop away)")
    print(f"the borrowed region appears at physical address "
          f"{grant.recipient_base:#x} on node 0")

    # 3. Access local and borrowed memory through the same hierarchy.
    node0 = system.node(0)
    hierarchy = node0.build_hierarchy(
        remote_backend=system.remote_backend_for(grant))
    core = node0.build_core(hierarchy)

    local_latency = core.read(64 * MB)                       # local DRAM
    remote_latency = core.read(grant.recipient_base + 4096)  # borrowed memory
    print(f"local DRAM access:      {local_latency:6d} ns")
    print(f"remote (CRMA) access:   {remote_latency:6d} ns  "
          f"({remote_latency / max(local_latency, 1):.1f}x local)")

    # For reference: the conventional alternative, paging to storage.
    swap_core = node0.build_core(node0.build_hierarchy(
        swap=SwapManager(SwapConfig(resident_frames=1024), LocalDiskSwapDevice())))
    swap_latency = swap_core.read(node0.memory_map.highest_address() + 4096)
    print(f"swap-to-storage access: {swap_latency:6d} ns  "
          f"({swap_latency / max(remote_latency, 1):.1f}x the CRMA path)")

    # 4. Tear the sharing down; the donor gets its memory back.
    system.release_remote_memory(allocation, grant)
    donor = system.node(allocation.donor)
    print(f"released: donor node {allocation.donor} has "
          f"{donor.donated_memory_bytes // MB} MB donated, "
          f"{donor.local_memory_bytes // MB} MB local again")


if __name__ == "__main__":
    main()
