#!/usr/bin/env python3
"""Mini data-center scenario (Figure 13/14): a Redis cache borrows memory.

One Venice node runs a Redis-style key/value cache in front of a MySQL
backing store.  The node keeps only 50 MB of memory for the cache and
borrows the rest from donor nodes that are busy running CPU-bound
Connected Components but have idle memory.  The script sweeps the cache
size and reports execution time and miss rate for 10 000 client
queries, with the extra memory supplied locally (reference) and
remotely (Venice).

Run with:  python examples/remote_memory_datacenter.py [--queries N]
"""

import argparse

from repro.experiments.common import ExperimentPlatform
from repro.experiments.fig14_redis_memory import Fig14Config, run_donor_impact
from repro.workloads.rediscache import (
    MysqlBackingStore,
    RedisCacheConfig,
    RedisCacheWorkload,
)

MB = 1024 * 1024


def run_point(platform: ExperimentPlatform, config: Fig14Config,
              capacity_bytes: int, remote: bool):
    """One configuration of the sweep; returns (seconds, miss rate)."""
    workload = RedisCacheWorkload(
        RedisCacheConfig(cache_capacity_bytes=capacity_bytes,
                         key_space=config.key_space,
                         record_bytes=config.record_bytes,
                         num_queries=config.num_queries,
                         seed=config.seed),
        backing_store=MysqlBackingStore(miss_latency_ns=config.mysql_miss_latency_ns),
    )
    if remote:
        core = platform.crma_core(capacity_bytes,
                                  local_bytes=min(config.local_memory_bytes,
                                                  capacity_bytes))
    else:
        core = platform.all_local_core(capacity_bytes)
    result = workload.run(core)
    return result.total_time_s, result.metric("miss_rate")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=4000,
                        help="client queries per sweep point (default 4000)")
    args = parser.parse_args()

    platform = ExperimentPlatform()
    config = Fig14Config(num_queries=args.queries)

    print(f"{'cache memory':>14} {'supply':>8} {'exec time':>12} {'miss rate':>10}")
    for step in range(1, 6):
        capacity = step * 70 * MB
        for remote in (False, True):
            seconds, miss_rate = run_point(platform, config, capacity, remote)
            supply = "remote" if remote else "local"
            print(f"{capacity // MB:>11} MB {supply:>8} {seconds:>10.2f} s "
                  f"{miss_rate * 100:>8.1f} %")

    impact = run_donor_impact(config, platform)
    delta = (impact["cc_time_ns_while_donating"]
             - impact["cc_time_ns_before_donation"])
    print(f"\ndonor impact: Connected Components runtime changes by "
          f"{delta / 1e6:.3f} ms while donating memory (negligible, as in the paper)")


if __name__ == "__main__":
    main()
