#!/usr/bin/env python3
"""Cluster fleets: borrow resources across an N-node fat-tree fabric.

The quickstart walks one requester/donor pair; this example scales the
same flow to a fleet:

1. build a 16-node cluster over a two-level fat-tree (4 nodes per leaf
   router, 2 spine routers);
2. let the matchmaker give every node a remote-memory share, plus one
   remote accelerator and one remote NIC for node 0;
3. show how the route shape (same-leaf versus cross-leaf) sets the
   per-share latency, and how the shared latency cache absorbs the
   repeated path queries;
4. tear everything down.

Run with:  python examples/cluster_scaling.py
"""

from repro.cluster import Cluster, ClusterConfig

MB = 1024 * 1024


def main() -> None:
    # 1. A 16-node fleet over the multi-router fat-tree fabric.
    cluster = Cluster(ClusterConfig(num_nodes=16, topology="fat_tree",
                                    leaf_radix=4, num_spines=2,
                                    policy="load-balanced"))
    print(f"built {cluster!r}")

    # 2. Fleet-wide provisioning: every node borrows 32 MB.
    shares = cluster.matchmaker.provision_fleet(memory_bytes_per_node=32 * MB)
    accel = cluster.matchmaker.borrow_accelerator(0)
    nic = cluster.matchmaker.borrow_nic(0)
    print(f"matchmaker placed {len(shares)} memory shares, one accelerator "
          f"(donor {accel.donor}) and one NIC (donor {nic.donor}) for node 0")

    # 3. Route shape decides the cost of a share.
    for share in shares[:4]:
        print(f"  node {share.requester:2d} <- donor {share.donor:2d}: "
              f"{share.link_hops} links, {share.router_crossings} routers, "
              f"64 B read = {share.channel.read_latency_ns(64)} ns")
    cross_leaf = cluster.remote_read_latency_ns(0, 15, 64)
    same_leaf = cluster.remote_read_latency_ns(0, 1, 64)
    print(f"same-leaf read {same_leaf} ns versus cross-leaf read "
          f"{cross_leaf} ns ({cross_leaf / same_leaf:.2f}x)")
    cache = cluster.latency_cache
    print(f"latency cache: {cache.lookups} lookups, "
          f"{100 * cache.hit_rate:.1f}% hits, {len(cache)} entries")

    # 4. Return everything to the donors.
    cluster.matchmaker.release_all()
    print(f"released: {sum(node.donated_memory_bytes for node in cluster.nodes.values())} "
          f"bytes still donated across the fleet")


if __name__ == "__main__":
    main()
