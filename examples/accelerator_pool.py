#!/usr/bin/env python3
"""Remote accelerator pooling (Figure 16a): offload FFT across the rack.

An application on node 0 needs FFT accelerators.  It asks the Monitor
Node for remote accelerators; the management middleware returns the
donor node and mailbox for each one, and the user-level library
dispatches blocks of the dataset to whichever accelerator frees up
first.  Input and output buffers move over the RDMA channel; the
mailbox start/completion flags move over CRMA (the exclusive-mapping
fast path).

Run with:  python examples/accelerator_pool.py [--dataset-mb N]
"""

import argparse
from dataclasses import replace

from repro.core import VeniceConfig, VeniceSystem
from repro.core.sharing.remote_accelerator import (
    AcceleratorPool,
    LocalAcceleratorTarget,
    RemoteAcceleratorTarget,
)
from repro.workloads.fft_offload import FftOffloadConfig, FftOffloadWorkload

MB = 1024 * 1024


def build_pool(system: VeniceSystem, num_remote: int) -> AcceleratorPool:
    """Local accelerator plus ``num_remote`` runtime-allocated remote ones."""
    requester = system.node(0)
    targets = [LocalAcceleratorTarget(requester.primary_accelerator(),
                                      dram=requester.dram)]
    for _ in range(num_remote):
        allocation = system.monitor.request_accelerator(requester=0)
        donor = system.node(allocation.donor)
        rdma = system.rdma_channel(0, allocation.donor)
        rdma.config = replace(rdma.config, stripe_lanes=4)
        targets.append(RemoteAcceleratorTarget(
            accelerator=donor.primary_accelerator(),
            mailbox=donor.mailboxes[0],
            rdma=rdma,
            crma=system.crma_channel(0, allocation.donor),
            exclusive_mapping=True,
        ))
    return AcceleratorPool(targets)


def makespan_seconds(system: VeniceSystem, pool: AcceleratorPool,
                     dataset_bytes: int) -> float:
    workload = FftOffloadWorkload(
        FftOffloadConfig(dataset_bytes=dataset_bytes, block_bytes=512 * 1024),
        targets=list(pool))
    core = system.node(0).build_core()
    return workload.run(core).total_time_s


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset-mb", type=int, default=64,
                        help="FFT dataset size in MB (default 64)")
    args = parser.parse_args()
    dataset = args.dataset_mb * MB

    print(f"offloading a {args.dataset_mb} MB FFT dataset in 512 KB blocks\n")
    print(f"{'configuration':>16} {'accelerators':>13} {'makespan':>11} {'speedup':>9}")
    baseline = None
    for num_remote in range(0, 4):
        system = VeniceSystem.build(VeniceConfig())
        pool = build_pool(system, num_remote)
        seconds = makespan_seconds(system, pool, dataset)
        if baseline is None:
            baseline = seconds
        label = "local only" if num_remote == 0 else f"LA+{num_remote}RA"
        print(f"{label:>16} {len(pool):>13} {seconds:>9.3f} s "
              f"{baseline / seconds:>8.2f}x")

    print("\nnear-linear scaling means the Venice fabric adds insignificant "
          "overhead to each offloaded task, as Figure 16a reports")


if __name__ == "__main__":
    main()
