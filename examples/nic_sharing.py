#!/usr/bin/env python3
"""Remote NIC sharing (Figure 16b): bond borrowed NICs for more bandwidth.

A network-bound phase on node 0 borrows the NICs of donor nodes.  Each
borrowed NIC is presented by a front-end driver as a virtual NIC whose
traffic rides IP-over-QPair to the donor's back-end driver, crosses the
donor's software bridge, and leaves through the donor's physical NIC.
Linux bonding combines the local NIC and the VNICs into one interface.

The script measures iPerf-style throughput of the bonded interface for
a range of packet sizes and reports utilisation of the aggregate line
rate -- showing the paper's point that tiny packets pay heavily for the
per-packet forwarding path while 256 B packets approach line rate.

Run with:  python examples/nic_sharing.py
"""

from repro.core import VeniceConfig, VeniceSystem
from repro.core.sharing.remote_nic import RemoteNicSharing
from repro.workloads.iperf import IperfConfig, IperfWorkload


def main() -> None:
    system = VeniceSystem.build(VeniceConfig())
    local_nic = system.node(0).primary_nic()
    sharing = RemoteNicSharing(local_nic=local_nic)

    # Borrow three NICs through the Monitor Node.
    for _ in range(3):
        allocation = system.monitor.request_nic(requester=0)
        donor = system.node(allocation.donor)
        sharing.attach_remote_nic(donor.primary_nic(),
                                  qpair=system.qpair_channel(0, allocation.donor))
        print(f"borrowed the NIC of node {allocation.donor} "
              f"({allocation.hops} hop away)")

    iperf = IperfWorkload(IperfConfig(payload_sizes=(4, 16, 64, 256)))
    print(f"\n{'payload':>8} {'config':>8} {'throughput':>12} "
          f"{'vs local NIC':>13} {'utilisation':>12}")
    for payload in iperf.config.payload_sizes:
        local_gbps = local_nic.throughput_gbps(payload)
        print(f"{payload:>6} B {'local':>8} {local_gbps:>10.3f} Gb/s "
              f"{1.0:>12.2f}x {local_nic.line_rate_utilization(payload) * 100:>10.1f} %")
        for num_remote in (1, 2, 3):
            bond = sharing.bonded_interface(num_remote=num_remote)
            gbps = bond.throughput_gbps(payload)
            utilisation = bond.line_rate_utilization(payload) * 100
            print(f"{payload:>6} B {f'LN+{num_remote}RN':>8} {gbps:>10.3f} Gb/s "
                  f"{gbps / local_gbps:>12.2f}x {utilisation:>10.1f} %")
        print()


if __name__ == "__main__":
    main()
