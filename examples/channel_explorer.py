#!/usr/bin/env python3
"""Explore the three Venice transport channels and the adaptive library.

For a range of access patterns (random fine-grained, contiguous bulk,
message passing) this prints the per-operation cost over each channel,
what the adaptive communication library would pick, and the effect of
the inter-channel collaboration trick that returns QPair flow-control
credits through CRMA (Figure 18).

Run with:  python examples/channel_explorer.py
"""

from repro.core.channels.collaboration import (
    AccessDemand,
    AdaptiveChannelSelector,
    CreditFlowControlModel,
)
from repro.experiments.common import ExperimentPlatform

KB = 1024


def main() -> None:
    platform = ExperimentPlatform()
    crma = platform.crma_channel()
    rdma = platform.rdma_channel()
    qpair = platform.qpair_channel()
    selector = AdaptiveChannelSelector()

    print("per-operation latency (ns) by channel")
    print(f"{'operation':>34} {'CRMA':>10} {'RDMA':>10} {'QPair':>10} {'library picks':>15}")
    scenarios = [
        ("random 32 B cacheline read", 32,
         AccessDemand(granularity_bytes=32, random_access=True)),
        ("random 64 B record read", 64,
         AccessDemand(granularity_bytes=64, random_access=True)),
        ("4 KB page move", 4 * KB,
         AccessDemand(granularity_bytes=4 * KB, total_bytes=4 * KB)),
        ("1 MB bulk transfer", 1024 * KB,
         AccessDemand(granularity_bytes=1024 * KB, total_bytes=1024 * KB)),
        ("256 B message", 256,
         AccessDemand(granularity_bytes=256, message_passing=True)),
    ]
    for label, size, demand in scenarios:
        crma_ns = sum(crma.read_latency_ns(min(32, size))
                      for _ in range(max(1, size // 32))) if size <= 4 * KB else \
            (size // 32) * crma.read_latency_ns(32)
        rdma_ns = rdma.transfer_latency_ns(size)
        qpair_ns = qpair.message_latency_ns(size)
        choice = selector.select(demand).value
        print(f"{label:>34} {crma_ns:>10,} {rdma_ns:>10,} {qpair_ns:>10,} {choice:>15}")

    print("\ninter-channel collaboration: QPair credits returned over CRMA")
    model = CreditFlowControlModel(qpair=qpair, crma=crma, credits=4)
    print(f"{'packet size':>12} {'QPair credits':>15} {'CRMA credits':>14} {'improvement':>12}")
    for size in (4, 8, 16, 32, 64, 128):
        baseline = model.qpair_credit_bandwidth_gbps(size)
        improved = model.crma_credit_bandwidth_gbps(size)
        print(f"{size:>10} B {baseline:>13.3f} G {improved:>12.3f} G "
              f"{model.improvement_percent(size):>10.1f} %")


if __name__ == "__main__":
    main()
