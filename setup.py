"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This shim
exists so that ``pip install -e .`` works in offline environments that
lack the ``wheel`` package required for PEP 660 editable installs, and
it declares the optional compiled dispatch core so
``python setup.py build_ext --inplace`` builds it the conventional way
(``python -m repro.sim._ccore_build`` is the setuptools-free
equivalent).

The extension is strictly optional: when it fails to build (or was
never built), ``Simulator(core="auto")`` runs the byte-identical
pure-Python engine.  ``optional=True`` keeps source installs working on
compiler-less hosts.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ccore",
            sources=["src/repro/sim/_ccore.c"],
            optional=True,
        ),
    ],
)
