"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This shim
exists so that ``pip install -e .`` works in offline environments that
lack the ``wheel`` package required for PEP 660 editable installs.
"""

from setuptools import setup

setup()
