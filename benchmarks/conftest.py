"""Benchmark harness plumbing.

Each benchmark runs one experiment driver (a full table/figure
reproduction) under ``pytest-benchmark`` and registers the resulting
:class:`~repro.analysis.report.FigureReport`.  At the end of the session
every report is printed as a paper-versus-measured table, so
``pytest benchmarks/ --benchmark-only`` regenerates the paper's results
in one run.
"""

from typing import Dict, List

import pytest

_REPORTS: List = []


@pytest.fixture
def record_report():
    """Fixture: register a FigureReport for the end-of-session summary."""

    def _record(report):
        _REPORTS.append(report)
        return report

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    The experiment drivers are deterministic and take seconds, so there
    is no value in pytest-benchmark's default multi-round calibration.
    """

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return _run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("Venice reproduction: paper versus measured")
    for report in _REPORTS:
        terminalreporter.write_line("")
        for line in report.to_text().splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()
