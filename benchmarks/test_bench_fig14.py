"""Benchmark: Figure 13/14 -- the mini data-center memory-sharing study."""

from repro.experiments.fig14_redis_memory import (
    PAPER_REFERENCE_SUMMARY,
    run_donor_impact,
    run_fig14,
)


def test_bench_fig14_redis_memory_sweep(run_once, record_report):
    report = run_once(run_fig14)
    record_report(report)
    remote_times = list(report.series["execution_time_ns_remote"].values())
    local_times = list(report.series["execution_time_ns_local"].values())
    miss_rates = list(report.series["miss_rate_percent_remote"].values())
    # Execution time and miss rate collapse as memory grows.
    assert all(later < earlier for earlier, later in zip(remote_times, remote_times[1:]))
    assert all(later < earlier for earlier, later in zip(miss_rates, miss_rates[1:]))
    # Paper: ~15.7x improvement across the sweep; accept the same order
    # of magnitude.
    summary = report.series["summary"]
    assert 8.0 < summary["speedup_70MB_to_350MB"] < 30.0
    # Local and remote memory are near-identical while misses dominate,
    # and the local advantage only shows up at the last point (paper: 7%).
    for local_time, remote_time in zip(local_times[:-1], remote_times[:-1]):
        assert abs(remote_time - local_time) / local_time < 0.05
    assert 0.0 < summary["local_advantage_at_350MB_percent"] < 15.0
    assert set(summary) == set(PAPER_REFERENCE_SUMMARY)


def test_bench_fig14_donor_impact(run_once):
    impact = run_once(run_donor_impact)
    before = impact["cc_time_ns_before_donation"]
    during = impact["cc_time_ns_while_donating"]
    assert abs(during - before) / before < 0.01
