"""Benchmark: Table 1 -- platform configuration sanity.

Not a performance result, but the bench harness regenerates the
platform table the evaluation runs on and checks it against the paper's
stated parameters.
"""

from repro.analysis.report import FigureReport
from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem
from repro.fabric.packet import HEADER_BYTES


def build_table1_report() -> FigureReport:
    config = VeniceConfig.table1()
    system = VeniceSystem.build(config)
    p2p_ns = (config.fabric.link.packet_latency_ns(64 + HEADER_BYTES)
              + config.fabric.switch.forwarding_latency_ns)
    report = FigureReport(
        figure_id="table1",
        title="Platform configuration",
    )
    report.add_series("platform", {
        "nodes": float(config.num_nodes),
        "mesh_diameter_hops": float(system.topology.diameter()),
        "cpu_clock_mhz": config.node.cpu.clock_mhz,
        "memory_per_node_gb": config.node.dram.capacity_bytes / 2**30,
        "link_bandwidth_gbps": config.fabric.link.bandwidth_gbps,
        "lanes_per_node": float(config.fabric.lanes_per_node),
        "p2p_latency_us": p2p_ns / 1000.0,
    }, reference={
        "nodes": 8.0,
        "cpu_clock_mhz": 667.0,
        "memory_per_node_gb": 1.0,
        "link_bandwidth_gbps": 5.0,
        "lanes_per_node": 6.0,
        "p2p_latency_us": 1.4,
    })
    return report


def test_bench_table1_platform(run_once, record_report):
    report = run_once(build_table1_report)
    record_report(report)
    platform = report.series["platform"]
    assert platform["nodes"] == 8
    assert platform["cpu_clock_mhz"] == 667.0
    assert platform["memory_per_node_gb"] == 1.0
    assert platform["link_bandwidth_gbps"] == 5.0
    assert platform["lanes_per_node"] == 6
    assert 1.2 <= platform["p2p_latency_us"] <= 1.6
