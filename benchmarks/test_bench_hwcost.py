"""Benchmark: Section 7.3 -- hardware cost of the Venice support."""

from repro.experiments.hardware_cost import PAPER_REFERENCE, run_hardware_cost


def test_bench_hardware_cost(run_once, record_report):
    report = run_once(run_hardware_cost)
    record_report(report)
    cost = report.series["hardware_cost"]
    assert set(cost) == set(PAPER_REFERENCE)
    # Paper: 2.73 mm^2 logic, 32 KB SRAM, ~3.5 mm^2 of PHYs, ~2% of a
    # server die, QPair about twice the CRMA logic.
    assert 2.0 < cost["logic_area_mm2"] < 4.0
    assert 25.0 < cost["sram_kb"] < 45.0
    assert 3.0 < cost["phy_area_mm2"] < 4.0
    assert cost["fraction_of_host_die_percent"] < 3.0
    assert 1.5 < cost["qpair_to_crma_logic_ratio"] < 2.5
