"""Benchmark: Figure 16b -- sharing remote NICs."""

from repro.experiments.fig16_accel_nic import (
    PAPER_REFERENCE_NIC_SPEEDUP,
    PAPER_REFERENCE_NIC_UTILIZATION,
    run_fig16b,
)


def test_bench_fig16b_remote_nics(run_once, record_report):
    report = run_once(run_fig16b)
    record_report(report)
    for label in ("speedup_4B", "speedup_256B"):
        series = report.series[label]
        assert set(series) == set(PAPER_REFERENCE_NIC_SPEEDUP)
        speedups = [series["LN+1RN"], series["LN+2RN"], series["LN+3RN"]]
        assert speedups[0] > 1.0
        assert speedups[1] > speedups[0]
        assert speedups[2] > speedups[1]
    utilization = report.series["utilization_percent_LN+3RN"]
    assert set(utilization) == set(PAPER_REFERENCE_NIC_UTILIZATION)
    # Paper: ~40% of available bandwidth for 4B packets, ~85% for 256B.
    assert 25.0 < utilization["4B"] < 65.0
    assert 65.0 < utilization["256B"] <= 100.0
    assert utilization["256B"] > utilization["4B"] + 15.0
