"""Benchmark: Figure 18 -- credit flow control over CRMA."""

from repro.experiments.fig18_flow_control import PAPER_REFERENCE, run_fig18


def test_bench_fig18_flow_control_improvement(run_once, record_report):
    report = run_once(run_fig18)
    record_report(report)
    improvements = report.series["improvement_percent"]
    assert set(improvements) == set(PAPER_REFERENCE)
    # Positive improvement for every packet size, in (or near) the
    # paper's 28-51% band, and never worse for smaller packets.
    assert all(value > 10.0 for value in improvements.values())
    assert all(value < 70.0 for value in improvements.values())
    assert improvements["4B_word"] >= improvements["128B_quad_cacheline"]
    # The improved scheme's absolute bandwidth is also higher everywhere.
    for label in improvements:
        assert report.series["crma_credit_bandwidth_gbps"][label] > \
            report.series["qpair_credit_bandwidth_gbps"][label]
