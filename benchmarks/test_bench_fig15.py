"""Benchmark: Figure 15 -- remote memory via CRMA versus RDMA swap."""

from repro.experiments.fig15_remote_memory import PAPER_REFERENCE, run_fig15


def test_bench_fig15_remote_memory_modes(run_once, record_report):
    report = run_once(run_fig15)
    record_report(report)
    all_local = report.series["all_local"]
    crma = report.series["crma"]
    rdma = report.series["rdma_swap"]
    assert set(all_local) == set(PAPER_REFERENCE["all_local"])

    # Memory is a critical resource: for the random-access in-memory DB
    # the ideal configuration is orders of magnitude above local swap.
    assert all_local["inmem_db"] > 50.0
    # All-local is the upper bound everywhere.
    for name in all_local:
        assert all_local[name] >= crma[name]
        assert all_local[name] >= rdma[name]
    # Access locality decides the best sharing mode (paper's orderings):
    # random access favours CRMA, streaming favours RDMA page swapping.
    assert crma["inmem_db"] > rdma["inmem_db"]
    assert crma["graph500"] > rdma["graph500"]
    assert rdma["grep"] > crma["grep"]
    assert rdma["cc"] > crma["cc"]
    # The gap between the two modes is non-trivial (paper: up to 6.8x).
    assert crma["inmem_db"] / rdma["inmem_db"] > 2.0
