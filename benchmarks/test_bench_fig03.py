"""Benchmark: Figure 3 -- remote memory over commodity interconnects."""

from repro.experiments.fig03_commodity import PAPER_REFERENCE, run_fig03


def test_bench_fig03_commodity_interconnects(run_once, record_report):
    report = run_once(run_fig03)
    record_report(report)
    slowdowns = report.series["slowdown_vs_all_local"]
    # Paper shape: every commodity path is at least several times slower
    # than all-local memory, with the Figure 3 ordering.
    assert slowdowns["ethernet_swap"] > slowdowns["infiniband_srp"] \
        > slowdowns["pcie_rdma"] > 5.0
    assert slowdowns["pcie_ldst_commodity"] == max(slowdowns.values())
    assert slowdowns["pcie_ldst_fixed"] < slowdowns["pcie_ldst_commodity"] / 5
    assert set(slowdowns) == set(PAPER_REFERENCE)
