"""Benchmark: N-node cluster scaling sweep (2 -> 64 nodes)."""

from repro.experiments.fig_cluster_scaling import run_fig_cluster_scaling


def test_bench_cluster_scaling(run_once, record_report):
    report = run_once(run_fig_cluster_scaling)
    record_report(report)
    latency = report.series["remote_read_latency_ns"]
    assert set(latency) == {f"{n}_nodes" for n in (2, 4, 8, 16, 32, 64)}
    # The directly connected pair is the floor; every fat-tree cluster
    # pays at least one router crossing on top of it.
    assert all(latency[label] >= latency["2_nodes"] for label in latency)
    # Latency grows monotonically with hop count on the largest cluster.
    by_hops = list(report.series["remote_read_latency_ns_by_hops"].values())
    assert all(later >= earlier for earlier, later in zip(by_hops, by_hops[1:]))
    # The shared latency cache carries the sweep.
    assert report.series["latency_cache"]["hit_rate_percent"] > 90.0
