"""Benchmark: Figure 6 -- overhead of a one-level external router."""

from repro.experiments.fig06_router import (
    PAPER_REFERENCE_BERKELEYDB,
    PAPER_REFERENCE_PAGERANK,
    run_fig06,
)


def test_bench_fig06_router_overhead(run_once, record_report):
    report = run_once(run_fig06)
    record_report(report)
    pagerank = report.series["pagerank"]
    berkeleydb = report.series["berkeleydb"]
    assert set(pagerank) == set(PAPER_REFERENCE_PAGERANK)
    assert set(berkeleydb) == set(PAPER_REFERENCE_BERKELEYDB)
    for series in (pagerank, berkeleydb):
        # Every configuration pays something for the extra hop, and the
        # best-performing configuration (on-chip CRMA) pays the most.
        assert all(value > 0 for value in series.values())
        assert series["on_chip_crma"] == max(
            series[name] for name in series if name != "async_on_chip_qpair")
    # Latency-tolerant software is nearly immune (paper: ~2%).
    assert report.series["pagerank"]["async_on_chip_qpair"] < \
        report.series["pagerank"]["on_chip_crma"] / 2
