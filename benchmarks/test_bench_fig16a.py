"""Benchmark: Figure 16a -- sharing remote accelerators."""

from repro.experiments.fig16_accel_nic import PAPER_REFERENCE_ACCEL, run_fig16a


def test_bench_fig16a_remote_accelerators(run_once, record_report):
    report = run_once(run_fig16a)
    record_report(report)
    for series_name in ("speedup_8MB", "speedup_512MB"):
        series = report.series[series_name]
        assert set(series) == set(PAPER_REFERENCE_ACCEL)
        speedups = [series["LA+1RA"], series["LA+2RA"], series["LA+3RA"]]
        # Near-linear scaling: each added remote accelerator helps, and
        # three remote accelerators approach 4x.
        assert speedups[0] > 1.5
        assert speedups[1] > speedups[0]
        assert speedups[2] > speedups[1]
        assert speedups[2] > 3.0
