#!/usr/bin/env python
"""Events/sec benchmark harness for the simulation engine.

Drives the full event-driven fabric (PHY + datalink + switch stacks
built by :meth:`VeniceSystem.build_event_fabric`) with deterministic
traffic over three topologies -- a directly connected pair, an 8-node
star, and a 16-node fat-tree -- and reports engine throughput as
*events per second of wall clock* plus total wall time per workload.

The workloads are budget-based (a fixed number of packets injected, the
run ends when the event queue drains), so the simulated work is
byte-identical across engine versions; only the wall clock changes.

Usage::

    PYTHONPATH=src python benchmarks/harness.py                 # print table
    PYTHONPATH=src python benchmarks/harness.py --json BENCH_engine.json \
        --baseline old.json                                      # write report
    PYTHONPATH=src python benchmarks/harness.py --workload fat_tree \
        --min-events-per-sec 150000                              # CI smoke gate

See ``benchmarks/README.md`` for the BENCH_engine.json schema.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem
from repro.fabric.packet import Packet, PacketKind
from repro.sim.rng import DeterministicRNG

SCHEMA = "bench-engine/v1"

#: Workload id -> (VeniceConfig factory kwargs, packets injected per
#: compute node per round, rounds).  Rounds stagger injections in
#: simulated time so flow control engages without livelocking.
WORKLOADS: Dict[str, dict] = {
    "pair": dict(num_nodes=2, topology="direct_pair",
                 packets_per_node=1600, rounds=4),
    "star": dict(num_nodes=8, topology="star",
                 packets_per_node=300, rounds=4),
    "fat_tree": dict(num_nodes=16, topology="fat_tree",
                     packets_per_node=160, rounds=4),
}

#: Gap between injection rounds, ns (lets queues partially drain so the
#: workload exercises both contended and draining regimes).
ROUND_GAP_NS = 200_000

PAYLOAD_BYTES = 64


@dataclass
class WorkloadResult:
    """One workload's measured engine throughput."""

    workload: str
    packets: int
    delivered: int
    events: int
    sim_ns: int
    wall_s: float
    events_per_sec: float

    def to_dict(self) -> dict:
        return {
            "packets": self.packets,
            "delivered": self.delivered,
            "events": self.events,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
        }


def build_fabric(workload: str):
    """System + event fabric + delivery-counting sinks for one workload."""
    spec = WORKLOADS[workload]
    kwargs = {"num_nodes": spec["num_nodes"], "topology": spec["topology"]}
    system = VeniceSystem.build(VeniceConfig(**kwargs))
    fabric = system.build_event_fabric()
    delivered: List[int] = [0]
    for switch in fabric.switches.values():
        switch.attach_local_sink(
            lambda packet: delivered.__setitem__(0, delivered[0] + 1))
    return system, fabric, delivered


def inject_traffic(system, fabric, workload: str, packets_per_node: int,
                   seed: int = 2016) -> int:
    """Schedule deterministic all-to-all traffic; returns packets injected.

    Each compute node sends to destinations chosen by a seeded RNG, in
    ``rounds`` bursts separated by ``ROUND_GAP_NS`` of simulated time.
    """
    spec = WORKLOADS[workload]
    rounds = spec["rounds"]
    rng = DeterministicRNG(seed)
    compute = system.topology.compute_nodes
    per_round = max(1, packets_per_node // rounds)
    injected = 0
    for round_index in range(rounds):
        at = round_index * ROUND_GAP_NS
        for src in compute:
            for _ in range(per_round):
                dst = rng.choice([node for node in compute if node != src])
                packet = Packet(src=src, dst=dst, kind=PacketKind.QPAIR_DATA,
                                payload_bytes=PAYLOAD_BYTES)
                fabric.sim.schedule_at(at, fabric.switches[src].inject, packet)
                injected += 1
    return injected


def run_workload(workload: str, packets_per_node: Optional[int] = None,
                 seed: int = 2016) -> WorkloadResult:
    """Build, inject and run one workload under the wall-clock timer."""
    spec = WORKLOADS[workload]
    per_node = packets_per_node or spec["packets_per_node"]
    system, fabric, delivered = build_fabric(workload)
    injected = inject_traffic(system, fabric, workload, per_node, seed=seed)
    start = time.perf_counter()
    fabric.sim.run_until_idle()
    wall = time.perf_counter() - start
    events = fabric.sim.events_processed
    return WorkloadResult(
        workload=workload,
        packets=injected,
        delivered=delivered[0],
        events=events,
        sim_ns=fabric.sim.now,
        wall_s=wall,
        events_per_sec=events / wall if wall > 0 else 0.0,
    )


def run_all(packets_per_node: Optional[int] = None,
            workloads: Optional[List[str]] = None,
            repeats: int = 1) -> Dict[str, WorkloadResult]:
    """Run the selected workloads, keeping the best of ``repeats`` runs."""
    results: Dict[str, WorkloadResult] = {}
    for workload in workloads or list(WORKLOADS):
        best: Optional[WorkloadResult] = None
        for _ in range(max(1, repeats)):
            result = run_workload(workload, packets_per_node)
            if best is None or result.events_per_sec > best.events_per_sec:
                best = result
        results[workload] = best
    return results


def make_report(results: Dict[str, WorkloadResult],
                baseline: Optional[dict] = None,
                label: str = "current") -> dict:
    """Assemble the BENCH_engine.json document."""
    report = {
        "schema": SCHEMA,
        "label": label,
        "workloads": {name: result.to_dict()
                      for name, result in results.items()},
    }
    if baseline is not None:
        base_workloads = baseline.get("workloads", baseline)
        report["baseline"] = {
            "label": baseline.get("label", "baseline"),
            "workloads": base_workloads,
        }
        speedup = {}
        for name, result in results.items():
            base = base_workloads.get(name, {}).get("events_per_sec")
            if base:
                speedup[name] = round(result.events_per_sec / base, 2)
        report["speedup_events_per_sec"] = speedup
    return report


def print_table(report: dict) -> None:
    rows = [("workload", "events", "wall_s", "events/sec", "speedup")]
    speedups = report.get("speedup_events_per_sec", {})
    for name, data in report["workloads"].items():
        rows.append((name, str(data["events"]), f"{data['wall_s']:.3f}",
                     f"{data['events_per_sec']:,.0f}",
                     f"{speedups[name]:.2f}x" if name in speedups else "-"))
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", action="append", choices=list(WORKLOADS),
                        help="workload(s) to run (default: all)")
    parser.add_argument("--packets-per-node", type=int, default=None,
                        help="override per-node packet budget (all workloads)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per workload; the best events/sec is kept")
    parser.add_argument("--label", default="current",
                        help="label recorded in the JSON report")
    parser.add_argument("--json", metavar="PATH",
                        help="write the report as JSON to PATH")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline JSON to compute speedups against")
    parser.add_argument("--min-events-per-sec", type=float, default=None,
                        help="exit non-zero if any selected workload falls "
                             "below this floor (CI smoke gate)")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)

    results = run_all(packets_per_node=args.packets_per_node,
                      workloads=args.workload, repeats=args.repeats)
    report = make_report(results, baseline=baseline, label=args.label)
    print_table(report)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.min_events_per_sec is not None:
        slow = {name: result.events_per_sec
                for name, result in results.items()
                if result.events_per_sec < args.min_events_per_sec}
        if slow:
            for name, eps in slow.items():
                print(f"FAIL: {name} ran at {eps:,.0f} events/sec, below the "
                      f"floor of {args.min_events_per_sec:,.0f}", file=sys.stderr)
            return 1
        print(f"floor check passed (>= {args.min_events_per_sec:,.0f} events/sec)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
