#!/usr/bin/env python
"""Events/sec benchmark harness for the simulation engine.

Drives the full event-driven fabric (PHY + datalink + switch stacks
built by :meth:`VeniceSystem.build_event_fabric`) with deterministic
traffic over five workloads -- a directly connected pair, an 8-node
star, a 16-node fat-tree (all open-loop, pre-scheduled injections), a
closed-loop request/response workload (QPair-style: each delivered
request turns into a response, each response completes a round-trip
and launches the next request, with datalink credit feedback end to
end), a transport-channel workload (``channel_ops``: CRMA reads,
QPair round trips and messages, RDMA page streams executed as packets
through the event transport backend), and an overlapped-op workload
(``concurrent_ops``: six requesters submit CRMA/QPair/RDMA ops as
``PendingOp`` handles and each wave is driven with one ``drive_all``,
so measured packets from different requesters contend through the star
hub) -- and reports engine throughput as *events per second of wall
clock* plus total wall time per workload.

The workloads are budget-based (a fixed number of packets injected,
round-trips completed, or channel ops issued; the run ends when the
event queue drains), so the simulated work is byte-identical across
engine versions; only the wall clock changes.

Usage::

    PYTHONPATH=src python benchmarks/harness.py                 # print table
    PYTHONPATH=src python benchmarks/harness.py --json BENCH_engine.json \
        --baseline old.json                                      # write report
    PYTHONPATH=src python benchmarks/harness.py --workload fat_tree \
        --scheduler calendar --min-events-per-sec 150000         # CI smoke gate
    PYTHONPATH=src python benchmarks/harness.py --profile        # cProfile top-20
    PYTHONPATH=src python benchmarks/harness.py --sanitize       # sanitizer on

See ``benchmarks/README.md`` for the BENCH_engine.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import VeniceConfig
from repro.core.system import VeniceSystem
from repro.fabric.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRNG

SCHEMA = "bench-engine/v1"

#: Workload id -> spec.  Open-loop workloads pre-schedule
#: ``packets_per_node`` injections per compute node in ``rounds``
#: bursts; the closed-loop workload keeps ``window`` requests in
#: flight per node until ``requests_per_node`` round-trips complete.
WORKLOADS: Dict[str, dict] = {
    "pair": dict(num_nodes=2, topology="direct_pair", mode="open",
                 packets_per_node=1600, rounds=4),
    "star": dict(num_nodes=8, topology="star", mode="open",
                 packets_per_node=300, rounds=4),
    "fat_tree": dict(num_nodes=16, topology="fat_tree", mode="open",
                     packets_per_node=160, rounds=4),
    "closed_loop": dict(num_nodes=8, topology="star", mode="closed",
                        requests_per_node=250, window=4),
    "channel_ops": dict(num_nodes=2, topology="direct_pair", mode="channel",
                        ops=3000),
    "concurrent_ops": dict(num_nodes=8, topology="star", mode="concurrent",
                           ops=3000, requesters=6),
    "churn": dict(num_nodes=8, topology="fat_tree", mode="churn",
                  ops=2000),
    "mn_shard": dict(num_nodes=8, topology="fat_tree", mode="mn_shard",
                     ops=1500, shards=2),
    "parallel_fat_tree": dict(num_nodes=64, leaf_radix=4, num_spines=2,
                              mode="parallel", packets_per_node=48, rounds=4,
                              workers=4),
}

#: Gap between injection rounds, ns (lets queues partially drain so the
#: workload exercises both contended and draining regimes).
ROUND_GAP_NS = 200_000

PAYLOAD_BYTES = 64

#: Stagger between the initial requests of a closed-loop client, ns.
CLIENT_STAGGER_NS = 1_000


@dataclass
class WorkloadResult:
    """One workload's measured engine throughput."""

    workload: str
    packets: int
    delivered: int
    events: int
    sim_ns: int
    wall_s: float
    events_per_sec: float
    scheduler: str = "auto"
    core: str = "py"
    mean_rtt_ns: Optional[float] = None
    sanitize: bool = False
    workers: Optional[int] = None

    def to_dict(self) -> dict:
        data = {
            "packets": self.packets,
            "delivered": self.delivered,
            "events": self.events,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            # Provenance: which timer backend and dispatch core produced
            # these numbers -- throughput differs per backend and per
            # core, so cross-configuration comparisons must be
            # detectable in the JSON.
            "scheduler": self.scheduler,
            "core": self.core,
        }
        if self.mean_rtt_ns is not None:
            data["mean_rtt_ns"] = round(self.mean_rtt_ns, 1)
        if self.workers is not None:
            # Partitioned runs: how many worker processes the lookahead
            # barrier spread the partitions over (1 = in-process).
            data["workers"] = self.workers
        if self.sanitize:
            # Only stamped when on: sanitized numbers must never be
            # compared against production ones silently, and omitting
            # the key keeps sanitize-off reports byte-identical to
            # reports from before the sanitizer existed.
            data["sanitize"] = True
        return data


def build_fabric(workload: str, scheduler: str = "auto",
                 sanitize: Optional[bool] = None):
    """System + event fabric + delivery-counting sinks for one workload."""
    spec = WORKLOADS[workload]
    system = VeniceSystem.build(VeniceConfig(num_nodes=spec["num_nodes"],
                                             topology=spec["topology"]))
    fabric = system.build_event_fabric(
        sim=Simulator(scheduler=scheduler, sanitize=sanitize))
    # Sink cost is part of the measured wall clock: a bound list append
    # is the cheapest per-delivery accounting available in pure Python.
    delivered: List[Packet] = []
    for switch in fabric.switches.values():
        switch.attach_local_sink(delivered.append)
    return system, fabric, delivered


def inject_traffic(system, fabric, workload: str, packets_per_node: int,
                   seed: int = 2016) -> int:
    """Schedule deterministic all-to-all traffic; returns packets injected.

    Each compute node sends to destinations chosen by a seeded RNG, in
    ``rounds`` bursts separated by ``ROUND_GAP_NS`` of simulated time.
    """
    spec = WORKLOADS[workload]
    rounds = spec["rounds"]
    rng = DeterministicRNG(seed)
    compute = system.topology.compute_nodes
    per_round = max(1, packets_per_node // rounds)
    injected = 0
    for round_index in range(rounds):
        at = round_index * ROUND_GAP_NS
        for src in compute:
            for _ in range(per_round):
                dst = rng.choice([node for node in compute if node != src])
                packet = Packet(src=src, dst=dst, kind=PacketKind.QPAIR_DATA,
                                payload_bytes=PAYLOAD_BYTES)
                fabric.sim.schedule_at(at, fabric.switches[src].inject, packet)
                injected += 1
    return injected


class ClosedLoopDriver:
    """QPair-style request/response traffic over the event fabric.

    Every compute node is a client keeping ``window`` requests in
    flight towards seeded-random servers.  A request delivered at its
    server injects a response back at the same timestamp; the response
    arriving at the client completes one round-trip and immediately
    launches the next request.  Load is therefore *closed-loop*: the
    injection rate is set by measured round-trip completions (and the
    datalink credit machinery backpressures the whole loop), not by a
    pre-computed schedule.
    """

    def __init__(self, system, fabric, requests_per_node: int, window: int,
                 seed: int = 2016, payload_bytes: int = PAYLOAD_BYTES):
        self.fabric = fabric
        self.payload_bytes = payload_bytes
        self.completed = 0
        self.responses_sent = 0
        self.rtt_total_ns = 0
        self._rng = DeterministicRNG(seed)
        self._inject_time: Dict[int, int] = {}
        compute = list(system.topology.compute_nodes)
        self._peers = {src: [node for node in compute if node != src]
                       for src in compute}
        self._remaining = {src: requests_per_node for src in compute}
        self.total_requests = requests_per_node * len(compute)
        for switch in fabric.switches.values():
            switch.attach_local_sink(self._make_sink(switch.node_id))
        # Stagger the initial windows so the first wave does not collide
        # on a single timestamp at every switch.
        for index, src in enumerate(compute):
            for slot in range(window):
                at = index * CLIENT_STAGGER_NS + slot * (CLIENT_STAGGER_NS // 2)
                fabric.sim.schedule_at(at, self._launch, src)

    def _make_sink(self, node_id: int):
        def sink(packet: Packet, _node=node_id) -> None:
            if packet.kind is PacketKind.QPAIR_DATA:
                # Server side: turn the request into a response.
                response = Packet(src=_node, dst=packet.src,
                                  kind=PacketKind.QPAIR_ACK,
                                  payload_bytes=self.payload_bytes,
                                  payload=packet.packet_id)
                self.responses_sent += 1
                self.fabric.switches[_node].inject(response)
            elif packet.kind is PacketKind.QPAIR_ACK:
                # Client side: round-trip complete, launch the next one.
                started = self._inject_time.pop(packet.payload, None)
                if started is not None:
                    self.completed += 1
                    self.rtt_total_ns += self.fabric.sim.now - started
                self._launch(_node)
        return sink

    def _launch(self, src: int) -> None:
        if self._remaining[src] <= 0:
            return
        self._remaining[src] -= 1
        request = Packet(src=src, dst=self._rng.choice(self._peers[src]),
                         kind=PacketKind.QPAIR_DATA,
                         payload_bytes=self.payload_bytes)
        self._inject_time[request.packet_id] = self.fabric.sim.now
        self.fabric.switches[src].inject(request)

    @property
    def mean_rtt_ns(self) -> float:
        return self.rtt_total_ns / self.completed if self.completed else 0.0


class ChannelOpsDriver:
    """Transport-channel operations over the event backend.

    Exercises the full channel stack -- CRMA read round trips, QPair
    request/response and one-way messages, RDMA page streams -- as
    packets on a pair system's shared event fabric, the path the
    ``fig15_contended`` / ``fig16_contended`` experiments execute per
    workload access.  The op mix is deterministic and budget-based, so
    the event count is identical across engine versions.
    """

    #: (label, packets injected per op) in issue rotation order.
    OP_MIX = (("crma_read", 2), ("qpair_round_trip", 2),
              ("rdma_page", 1), ("qpair_message", 1))

    def __init__(self, system, ops: int):
        self.system = system
        self.ops = ops
        self.crma = system.crma_channel(0, 1)
        self.rdma = system.rdma_channel(0, 1)
        self.qpair = system.qpair_channel(0, 1)
        self.sim = system.event_transport().sim
        self._issue = (
            lambda: self.crma.read_latency_ns(64),
            lambda: self.qpair.round_trip_latency_ns(16, 64),
            lambda: self.rdma.transfer_latency_ns(4096),
            lambda: self.qpair.message_latency_ns(64),
        )
        self.packets = sum(self.OP_MIX[index % len(self.OP_MIX)][1]
                           for index in range(ops))
        self.completed = 0
        self.latency_total_ns = 0

    def run(self) -> None:
        issue = self._issue
        count = len(issue)
        for index in range(self.ops):
            self.latency_total_ns += issue[index % count]()
            self.completed += 1

    @property
    def mean_rtt_ns(self) -> float:
        return self.latency_total_ns / self.completed if self.completed else 0.0


class ConcurrentOpsDriver:
    """Overlapping transport ops from several requesters on one fabric.

    The submit/drive counterpart of :class:`ChannelOpsDriver`: per wave,
    every requester submits its next op (CRMA read, QPair round trip,
    RDMA page stream or QPair message, rotating deterministically) as a
    :class:`~repro.core.channels.backend.PendingOp` and one
    ``drive_all`` advances the shared simulator for the whole wave, so
    the measured packets of different requesters queue behind each
    other through the star hub -- the path the ``cluster_contended``
    sweep exercises per borrower access.  Budget-based: the op count
    (hence the event count) is identical across engine versions.
    """

    #: Packets injected per op, in submit rotation order (the response
    #: of a round trip counts; an RDMA 4 KiB page is one chunk).
    OP_PACKETS = (2, 2, 1, 1)

    def __init__(self, system, ops: int, requesters: int):
        self.system = system
        self.ops = ops
        self.transport = system.event_transport()
        self.sim = self.transport.sim
        compute = system.node_ids
        self._lanes = []
        for index in range(min(requesters, len(compute))):
            src = compute[index]
            dst = compute[(index + 1) % len(compute)]
            self._lanes.append((
                system.crma_channel(src, dst),
                system.qpair_channel(src, dst),
                system.rdma_channel(src, dst),
            ))
        self.packets = sum(self.OP_PACKETS[index % len(self.OP_PACKETS)]
                           for index in range(ops))
        self.completed = 0
        self.latency_total_ns = 0

    def _submit(self, lane: int, op_index: int):
        crma, qpair, rdma = self._lanes[lane]
        kind = op_index % 4
        if kind == 0:
            return crma.submit_read(64)
        if kind == 1:
            return qpair.submit_round_trip(16, 64)
        if kind == 2:
            return rdma.submit_transfer(4096)
        return qpair.submit_message(64)

    def run(self) -> None:
        lanes = len(self._lanes)
        index = 0
        while index < self.ops:
            batch = []
            for lane in range(lanes):
                if index >= self.ops:
                    break
                batch.append(self._submit(lane, index))
                index += 1
            self.transport.drive_all(batch)
            for op in batch:
                self.latency_total_ns += op.latency_ns
            self.completed += len(batch)

    @property
    def mean_rtt_ns(self) -> float:
        return self.latency_total_ns / self.completed if self.completed else 0.0


class ChurnOpsDriver:
    """Deadline-guarded reads under a seeded fault campaign.

    The recovery counterpart of :class:`ConcurrentOpsDriver`: every
    compute node of an event-backed fat-tree cluster borrows remote
    memory through the batched matchmaker, then issues waves of CRMA
    reads carrying per-op deadlines and an exponential-backoff retry
    policy while a :class:`~repro.runtime.churn.ChurnEngine` flaps
    links, fails a router and crashes a node against the same fabric
    (heartbeat detection and recovery run on the simulated clock).
    This is the hot path of the ``churn`` experiment: admin-down
    corruption feeding the datalink replay machinery, timeout firing
    and handler cancellation, retry resubmission, and the heartbeat
    pump.  Budget-based and fully seeded, so the simulated work is
    byte-identical across engine versions; only the wall clock changes.
    """

    #: Simulated idle gap between read waves, ns (moves the clock
    #: across the campaign so faults land between waves too).
    WAVE_GAP_NS = 15_000
    READ_DEADLINE_NS = 200_000

    def __init__(self, ops: int, scheduler: str = "auto",
                 sanitize: Optional[bool] = None, seed: int = 2016):
        from repro.cluster import Cluster, ClusterConfig
        from repro.core.channels.backend import RetryPolicy
        from repro.runtime.churn import ChurnConfig, ChurnEngine
        from repro.runtime.fault import FaultHandler

        self.ops = ops
        self.cluster = Cluster(ClusterConfig(
            num_nodes=8, topology="fat_tree", transport_backend="event",
            scheduler=scheduler, sanitize=sanitize))
        self.shares = [share for batch in self.cluster.matchmaker.borrow_many(
            [(node, 1 << 20) for node in self.cluster.node_ids])
            for share in batch]
        self.transport = self.cluster.event_transport()
        self.sim = self.transport.sim
        self.retry = RetryPolicy(max_attempts=3, backoff_ns=50_000)
        self.engine = ChurnEngine(
            self.transport, self.cluster.monitor,
            FaultHandler(self.cluster.monitor),
            ChurnConfig(seed=seed, horizon_ns=4_000_000, link_flaps=2,
                        router_failures=1, node_crashes=1,
                        flap_duration_ns=400_000, router_down_ns=500_000,
                        crash_down_ns=1_200_000))
        self.completed = 0
        self.gave_up = 0
        self.latency_total_ns = 0

    def run(self) -> None:
        transport = self.transport
        sim = self.sim
        self.engine.start()
        index = 0
        while index < self.ops:
            batch = []
            for share in self.shares:
                if index >= self.ops:
                    break
                batch.append(transport.submit_with_retry(
                    lambda share=share: share.channel.submit_read(
                        PAYLOAD_BYTES, deadline_ns=self.READ_DEADLINE_NS),
                    self.retry, label=f"churn-n{share.requester}"))
                index += 1
            transport.drive_all(batch)
            for op in batch:
                if op.done:
                    self.completed += 1
                    self.latency_total_ns += op.latency_ns
                else:
                    self.gave_up += 1
            sim.run(until=sim.now + self.WAVE_GAP_NS)
        self.engine.stop()
        sim.run_until_idle()
        if sim.sanitize:
            transport.check_packet_lifecycle()

    @property
    def mean_rtt_ns(self) -> float:
        return self.latency_total_ns / self.completed if self.completed else 0.0


class MnShardOpsDriver:
    """Batched borrows through the sharded Monitor Node under crashes.

    The sharding counterpart of :class:`ChurnOpsDriver`: an 8-node
    event-backed fat-tree cluster runs with its Monitor Node split into
    two replicated leaf shards behind the coordinator, and every wave
    re-borrows remote memory for the whole fleet through the batched
    split-phase matchmaker (queue, plan across shards, execute), reads
    once per share, and releases -- while a seeded ``mn_crash``
    campaign kills shard primaries mid-run.  This is the hot path of
    the ``mn_failover`` experiment: coordinator routing and per-shard
    planning, replication of commits/releases to the standby, crash
    detection on the heartbeat pump, standby promotion and exactly-once
    in-flight ticket replay.  Budget-based and fully seeded, so the
    simulated work is byte-identical across engine versions; only the
    wall clock changes.
    """

    #: Simulated idle gap between borrow waves, ns (moves the clock
    #: across the campaign so crashes land between waves too).
    WAVE_GAP_NS = 15_000

    def __init__(self, ops: int, scheduler: str = "auto",
                 sanitize: Optional[bool] = None, seed: int = 2016,
                 shards: int = 2):
        from repro.cluster import Cluster, ClusterConfig
        from repro.runtime.churn import ChurnConfig, ChurnEngine
        from repro.runtime.fault import FaultHandler
        from repro.runtime.shard import ShardUnavailableError

        self._shard_error = ShardUnavailableError
        self.ops = ops
        self.cluster = Cluster(ClusterConfig(
            num_nodes=8, topology="fat_tree", monitor_shards=shards,
            transport_backend="event", scheduler=scheduler,
            sanitize=sanitize))
        self.transport = self.cluster.event_transport()
        self.sim = self.transport.sim
        monitor = self.cluster.monitor
        self.engine = ChurnEngine(
            self.transport, monitor,
            FaultHandler(monitor, reallocate_on_node_failure=False),
            ChurnConfig(seed=seed, horizon_ns=4_000_000, link_flaps=0,
                        router_failures=0, node_crashes=0,
                        mn_crashes=shards, mn_crash_down_ns=1_200_000))
        self.completed = 0
        self.deferred_waves = 0
        self.latency_total_ns = 0

    def run(self) -> None:
        matchmaker = self.cluster.matchmaker
        monitor = self.cluster.monitor
        transport = self.transport
        sim = self.sim
        self.engine.start()
        requests = [(node, 1 << 20) for node in self.cluster.node_ids]
        index = 0
        while index < self.ops:
            if monitor.queued_requests == 0:
                matchmaker.queue_requests(requests)
            try:
                batches = matchmaker.borrow_queued()
            except self._shard_error:
                # A primary is down; the next heartbeat pump promotes
                # the standby and replays the in-flight tickets.
                self.deferred_waves += 1
                sim.run(until=sim.now + self.WAVE_GAP_NS)
                continue
            batch_ops = []
            for batch in batches:
                for share in batch:
                    if index >= self.ops:
                        break
                    batch_ops.append(share.channel.submit_read(PAYLOAD_BYTES))
                    index += 1
            transport.drive_all(batch_ops)
            for op in batch_ops:
                self.completed += 1
                self.latency_total_ns += op.latency_ns
            for batch in reversed(batches):
                for share in reversed(batch):
                    matchmaker.release(share)
            sim.run(until=sim.now + self.WAVE_GAP_NS)
        self.engine.stop()
        sim.run_until_idle()
        if sim.sanitize:
            transport.check_packet_lifecycle()

    @property
    def mean_rtt_ns(self) -> float:
        return self.latency_total_ns / self.completed if self.completed else 0.0


def build_parallel_spec(workload: str, packets_per_node: Optional[int] = None,
                        seed: int = 2016, scheduler: str = "auto"):
    """Deterministic open-loop spec for the partitioned fat-tree runs.

    Same shape as :func:`inject_traffic` -- per-node bursts separated by
    ``ROUND_GAP_NS`` with seeded destinations -- but emitted as a
    picklable :class:`~repro.sim.partition.ParallelFabricSpec` so the
    identical workload can run monolithically, inline-partitioned or
    forked over worker processes.  Injections inside a burst are
    staggered a few ns apart so the merged dump stays order-robust.
    """
    from repro.sim.partition import ParallelFabricSpec

    spec = WORKLOADS[workload]
    num_nodes = spec["num_nodes"]
    rounds = spec["rounds"]
    per_round = max(1, (packets_per_node or spec["packets_per_node"]) // rounds)
    rng = DeterministicRNG(seed)
    peers = {src: [node for node in range(num_nodes) if node != src]
             for src in range(num_nodes)}
    injections = []
    for round_index in range(rounds):
        at = round_index * ROUND_GAP_NS
        stagger = 0
        for src in range(num_nodes):
            for _ in range(per_round):
                injections.append((at + stagger, src, rng.choice(peers[src]),
                                   PAYLOAD_BYTES))
                stagger += 3
    return ParallelFabricSpec(num_nodes=num_nodes,
                              leaf_radix=spec["leaf_radix"],
                              num_spines=spec["num_spines"],
                              scheduler=scheduler,
                              injections=tuple(injections))


def _resolved_core(sanitize: Optional[bool]) -> str:
    """The dispatch core a Simulator would resolve to right now.

    Used for runs whose simulators live out of reach (partition
    workers): same precedence as the Simulator itself -- ``SIM_CORE``
    env, else auto, with sanitize forcing the Python engine.
    """
    from repro.sim import engine

    return engine._resolve_core(None, sanitize)


def run_workload(workload: str, packets_per_node: Optional[int] = None,
                 seed: int = 2016, scheduler: str = "auto",
                 sanitize: bool = False,
                 parallel: Optional[int] = None) -> WorkloadResult:
    """Build, inject and run one workload under the wall-clock timer.

    ``sanitize=True`` runs the workload with the runtime sanitizer on
    (dispatch-order, credit-conservation and lifecycle checks); with the
    default ``False`` the ``SIM_SANITIZE`` environment variable still
    applies, matching the Simulator's own precedence.
    """
    spec = WORKLOADS[workload]
    # True opts in; None defers to SIM_SANITIZE so an env-sanitized
    # bench run is honestly stamped in its results.
    san = True if sanitize else None
    driver = None
    if spec["mode"] == "parallel":
        from repro.sim.partition import run_partitioned

        workers = parallel if parallel is not None else spec["workers"]
        parallel_spec = build_parallel_spec(workload, packets_per_node,
                                            seed=seed, scheduler=scheduler)
        mode = "fork" if workers > 1 else "inline"
        start = time.perf_counter()
        dump = run_partitioned(parallel_spec, workers=workers, mode=mode)
        wall = time.perf_counter() - start
        deliveries = dump["deliveries"]
        return WorkloadResult(
            workload=workload,
            packets=len(parallel_spec.injections),
            delivered=len(deliveries),
            events=dump["events"],
            sim_ns=max((record[0] for record in deliveries), default=0),
            wall_s=wall,
            events_per_sec=dump["events"] / wall if wall > 0 else 0.0,
            scheduler=scheduler,
            core=_resolved_core(san),
            sanitize=bool(san),
            workers=workers,
        )
    if spec["mode"] == "mn_shard":
        shard_driver = MnShardOpsDriver(ops=packets_per_node or spec["ops"],
                                        scheduler=scheduler, sanitize=san,
                                        seed=seed, shards=spec["shards"])
        start = time.perf_counter()
        shard_driver.run()
        wall = time.perf_counter() - start
        sim = shard_driver.sim
        return WorkloadResult(
            workload=workload,
            packets=shard_driver.ops,
            delivered=shard_driver.completed,
            events=sim.events_processed,
            sim_ns=sim.now,
            wall_s=wall,
            events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
            scheduler=sim.scheduler,
            core=sim.core,
            mean_rtt_ns=shard_driver.mean_rtt_ns,
            sanitize=sim.sanitize,
        )
    if spec["mode"] == "churn":
        churn_driver = ChurnOpsDriver(ops=packets_per_node or spec["ops"],
                                      scheduler=scheduler, sanitize=san,
                                      seed=seed)
        start = time.perf_counter()
        churn_driver.run()
        wall = time.perf_counter() - start
        sim = churn_driver.sim
        return WorkloadResult(
            workload=workload,
            packets=churn_driver.ops,
            delivered=churn_driver.completed,
            events=sim.events_processed,
            sim_ns=sim.now,
            wall_s=wall,
            events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
            scheduler=sim.scheduler,
            core=sim.core,
            mean_rtt_ns=churn_driver.mean_rtt_ns,
            sanitize=sim.sanitize,
        )
    if spec["mode"] == "concurrent":
        system = VeniceSystem.build(
            VeniceConfig(num_nodes=spec["num_nodes"],
                         topology=spec["topology"]),
            transport_backend="event", scheduler=scheduler, sanitize=san)
        concurrent_driver = ConcurrentOpsDriver(
            system, ops=packets_per_node or spec["ops"],
            requesters=spec["requesters"])
        start = time.perf_counter()
        concurrent_driver.run()
        wall = time.perf_counter() - start
        sim = concurrent_driver.sim
        return WorkloadResult(
            workload=workload,
            packets=concurrent_driver.packets,
            delivered=concurrent_driver.completed,
            events=sim.events_processed,
            sim_ns=sim.now,
            wall_s=wall,
            events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
            scheduler=sim.scheduler,
            core=sim.core,
            mean_rtt_ns=concurrent_driver.mean_rtt_ns,
            sanitize=sim.sanitize,
        )
    if spec["mode"] == "channel":
        system = VeniceSystem.build(
            VeniceConfig(num_nodes=spec["num_nodes"],
                         topology=spec["topology"]),
            transport_backend="event", scheduler=scheduler, sanitize=san)
        channel_driver = ChannelOpsDriver(system,
                                          ops=packets_per_node or spec["ops"])
        start = time.perf_counter()
        channel_driver.run()
        wall = time.perf_counter() - start
        sim = channel_driver.sim
        return WorkloadResult(
            workload=workload,
            packets=channel_driver.packets,
            delivered=channel_driver.completed,
            events=sim.events_processed,
            sim_ns=sim.now,
            wall_s=wall,
            events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
            scheduler=sim.scheduler,
            core=sim.core,
            mean_rtt_ns=channel_driver.mean_rtt_ns,
            sanitize=sim.sanitize,
        )
    if spec["mode"] == "closed":
        system = VeniceSystem.build(VeniceConfig(num_nodes=spec["num_nodes"],
                                                 topology=spec["topology"]))
        fabric = system.build_event_fabric(
            sim=Simulator(scheduler=scheduler, sanitize=san))
        driver = ClosedLoopDriver(
            system, fabric,
            requests_per_node=packets_per_node or spec["requests_per_node"],
            window=spec["window"], seed=seed)
    else:
        system, fabric, delivered = build_fabric(workload, scheduler=scheduler,
                                                 sanitize=san)
        injected = inject_traffic(system, fabric, workload,
                                  packets_per_node or spec["packets_per_node"],
                                  seed=seed)
    start = time.perf_counter()
    fabric.sim.run_until_idle()
    wall = time.perf_counter() - start
    events = fabric.sim.events_processed
    return WorkloadResult(
        workload=workload,
        packets=(driver.total_requests + driver.responses_sent
                 if driver is not None else injected),
        delivered=driver.completed if driver is not None else len(delivered),
        events=events,
        sim_ns=fabric.sim.now,
        wall_s=wall,
        events_per_sec=events / wall if wall > 0 else 0.0,
        scheduler=fabric.sim.scheduler,
        core=fabric.sim.core,
        mean_rtt_ns=driver.mean_rtt_ns if driver is not None else None,
        sanitize=fabric.sim.sanitize,
    )


def run_all(packets_per_node: Optional[int] = None,
            workloads: Optional[List[str]] = None,
            repeats: int = 1, scheduler: str = "auto",
            sanitize: bool = False,
            parallel: Optional[int] = None) -> Dict[str, WorkloadResult]:
    """Run the selected workloads, keeping the best of ``repeats`` runs."""
    results: Dict[str, WorkloadResult] = {}
    for workload in workloads or list(WORKLOADS):
        best: Optional[WorkloadResult] = None
        for _ in range(max(1, repeats)):
            result = run_workload(workload, packets_per_node,
                                  scheduler=scheduler, sanitize=sanitize,
                                  parallel=parallel)
            if best is None or result.events_per_sec > best.events_per_sec:
                best = result
        results[workload] = best
    return results


def profile_workloads(workloads: Optional[List[str]] = None,
                      scheduler: str = "auto", top: int = 20) -> None:
    """Print the cProfile top-N cumulative hotspots per workload.

    Future perf PRs start from data: this is the same view the round-1
    and round-2 hot-path overhauls were driven by.
    """
    import cProfile
    import pstats

    for workload in workloads or list(WORKLOADS):
        profiler = cProfile.Profile()
        profiler.enable()
        result = run_workload(workload, scheduler=scheduler)
        profiler.disable()
        print(f"\n=== {workload}: top {top} by cumulative time "
              f"({result.events} events, scheduler={result.scheduler}) ===")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(top)


def make_report(results: Dict[str, WorkloadResult],
                baseline: Optional[dict] = None,
                label: str = "current") -> dict:
    """Assemble the BENCH_engine.json document.

    ``speedup_events_per_sec`` is the ratio of events/sec values; when
    the two sides executed different event counts for the same
    simulated work (an engine that needs fewer events per packet-hop),
    ``speedup_wall`` -- the wall-time ratio on the identical packet
    budget -- is the apples-to-apples throughput comparison and is
    emitted alongside.
    """
    report = {
        "schema": SCHEMA,
        "label": label,
        "workloads": {name: result.to_dict()
                      for name, result in results.items()},
    }
    if baseline is not None:
        base_workloads = baseline.get("workloads", baseline)
        report["baseline"] = {
            "label": baseline.get("label", "baseline"),
            "workloads": base_workloads,
        }
        speedup = {}
        speedup_wall = {}
        for name, result in results.items():
            base = base_workloads.get(name, {})
            base_eps = base.get("events_per_sec")
            if base_eps:
                speedup[name] = round(result.events_per_sec / base_eps, 2)
            base_wall = base.get("wall_s")
            if base_wall and result.wall_s > 0:
                speedup_wall[name] = round(base_wall / result.wall_s, 2)
        report["speedup_events_per_sec"] = speedup
        report["speedup_wall"] = speedup_wall
    return report


def print_table(report: dict) -> None:
    rows = [("workload", "events", "wall_s", "events/sec", "speedup", "wall-speedup")]
    speedups = report.get("speedup_events_per_sec", {})
    wall_speedups = report.get("speedup_wall", {})
    for name, data in report["workloads"].items():
        rows.append((name, str(data["events"]), f"{data['wall_s']:.3f}",
                     f"{data['events_per_sec']:,.0f}",
                     f"{speedups[name]:.2f}x" if name in speedups else "-",
                     f"{wall_speedups[name]:.2f}x" if name in wall_speedups else "-"))
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", action="append", choices=list(WORKLOADS),
                        help="workload(s) to run (default: all)")
    parser.add_argument("--packets-per-node", type=int, default=None,
                        help="override per-node packet/request budget")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per workload; the best events/sec is kept")
    parser.add_argument("--scheduler", choices=("auto", "heap", "calendar"),
                        default="auto",
                        help="timer backend for the simulator (default: auto)")
    parser.add_argument("--core", choices=("auto", "c", "py"), default=None,
                        help="dispatch core: 'c' requires the compiled "
                             "extension (repro.sim._ccore) and fails with a "
                             "clear error when it cannot be built; 'auto' "
                             "prefers it and falls back to 'py' silently. "
                             "Default: leave SIM_CORE (or auto) in charge")
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="worker processes for partitioned workloads "
                             "(parallel_fat_tree; 1 = in-process sequential "
                             "partitions, default: the workload's spec)")
    parser.add_argument("--label", default="current",
                        help="label recorded in the JSON report")
    parser.add_argument("--json", metavar="PATH",
                        help="write the report as JSON to PATH")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline JSON to compute speedups against")
    parser.add_argument("--min-events-per-sec", type=float, default=None,
                        help="exit non-zero if any selected workload falls "
                             "below this floor (CI smoke gate)")
    parser.add_argument("--profile", action="store_true",
                        help="print cProfile top-20 cumulative hotspots per "
                             "workload instead of the benchmark table")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the runtime sanitizer on (dispatch-"
                             "order, credit-conservation and packet-lifecycle "
                             "checks); results are stamped \"sanitize\": true "
                             "-- see benchmarks/README.md for the overhead")
    args = parser.parse_args(argv)

    if args.core is not None:
        if args.core == "c":
            # Pre-flight instead of crashing mid-run: resolve (building
            # on demand) once, and report why the extension is missing.
            from repro.sim import engine as sim_engine

            if sim_engine._load_ccore(build=True) is None:
                reason = sim_engine._CCORE_STATE["error"] or "import failed"
                print(f"error: --core c requested but the compiled dispatch "
                      f"core is unavailable: {reason} (build it with "
                      f"`python -m repro.sim._ccore_build`, or use --core "
                      f"auto to fall back to the Python engine)",
                      file=sys.stderr)
                return 2
        # Workloads build their simulators many layers down (and
        # partition workers in other processes): the environment is the
        # plumbing, exactly like SIM_SCHEDULER / SIM_SANITIZE.
        os.environ["SIM_CORE"] = args.core

    if args.profile:
        profile_workloads(workloads=args.workload, scheduler=args.scheduler)
        return 0

    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)

    results = run_all(packets_per_node=args.packets_per_node,
                      workloads=args.workload, repeats=args.repeats,
                      scheduler=args.scheduler, sanitize=args.sanitize,
                      parallel=args.parallel)
    report = make_report(results, baseline=baseline, label=args.label)
    print_table(report)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.min_events_per_sec is not None:
        slow = {name: result.events_per_sec
                for name, result in results.items()
                if result.events_per_sec < args.min_events_per_sec}
        if slow:
            for name, eps in slow.items():
                print(f"FAIL: {name} ran at {eps:,.0f} events/sec, below the "
                      f"floor of {args.min_events_per_sec:,.0f}", file=sys.stderr)
            return 1
        print(f"floor check passed (>= {args.min_events_per_sec:,.0f} events/sec)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
