"""Benchmark: Figure 5 -- impact of architectural support for remote access."""

from repro.experiments.fig05_arch_support import (
    CONFIGURATIONS,
    PAPER_REFERENCE_BERKELEYDB,
    PAPER_REFERENCE_PAGERANK,
    run_fig05,
)


def test_bench_fig05_architectural_support(run_once, record_report):
    report = run_once(run_fig05)
    record_report(report)
    pagerank = report.series["pagerank"]
    berkeleydb = report.series["berkeleydb"]
    assert set(pagerank) == set(CONFIGURATIONS) == set(PAPER_REFERENCE_PAGERANK)
    assert set(berkeleydb) == set(PAPER_REFERENCE_BERKELEYDB)
    for series in (pagerank, berkeleydb):
        # On-chip beats off-chip; CRMA beats QPair messaging.
        assert series["on_chip_crma"] < series["off_chip_crma"]
        assert series["on_chip_qpair"] < series["off_chip_qpair"]
        assert series["on_chip_crma"] < series["on_chip_qpair"]
        # Remote-access penalties stay in the paper's "tolerable" band
        # for the hardware-supported path (roughly 2-4x).
        assert 1.2 < series["on_chip_crma"] < 4.0
    # Asynchrony hides latency for PageRank but not for BerkeleyDB.
    assert pagerank["async_on_chip_qpair"] < 0.6 * pagerank["on_chip_qpair"]
    assert abs(berkeleydb["async_on_chip_qpair"] - berkeleydb["on_chip_qpair"]) < 0.1
