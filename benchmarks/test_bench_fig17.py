"""Benchmark: Figure 17 -- multi-modality (no channel replaces the others)."""

from repro.experiments.fig17_channels import (
    PAPER_REFERENCE,
    adaptive_selection_matches_best,
    run_fig17,
)


def test_bench_fig17_channel_comparison(run_once, record_report):
    report = run_once(run_fig17)
    record_report(report)
    assert set(report.series) == set(PAPER_REFERENCE)
    # Each scenario is won by the channel the paper identifies.
    assert report.series["inmem_db_random"]["crma"] == 100.0
    assert report.series["cc_contiguous"]["rdma"] == 100.0
    assert report.series["iperf_messaging"]["qpair"] == 100.0
    # The winners are decisive: the runner-up is well below 100.
    for scenario, series in report.series.items():
        runner_up = sorted(series.values())[-2]
        assert runner_up < 80.0
    # And all three channels are needed (different winners per scenario).
    winners = {max(series, key=series.get) for series in report.series.values()}
    assert winners == {"crma", "rdma", "qpair"}


def test_bench_fig17_adaptive_library(run_once):
    outcome = run_once(adaptive_selection_matches_best)
    assert all(outcome.values())
