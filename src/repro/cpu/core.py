"""In-order timing core.

:class:`TimingCore` advances a per-core virtual clock as a workload
invokes its execution primitives:

* :meth:`TimingCore.compute` -- burn CPU cycles (instruction execution
  between memory operations).
* :meth:`TimingCore.read` / :meth:`TimingCore.write` -- blocking memory
  accesses through the node's :class:`MemoryHierarchy`.
* :meth:`TimingCore.read_async` / :meth:`TimingCore.drain` -- the
  asynchronous issue mode used by latency-tolerant software (the
  Scale-out-NUMA-style rewritten applications of Section 4.2.1):
  up to ``max_outstanding`` independent accesses overlap, and the core
  only stalls when the window is full or at an explicit drain point.
* :meth:`TimingCore.stall` -- explicit stall for software overheads
  (system calls, driver paths, user-level library costs).

The core is analytic rather than event-driven: each primitive adds the
appropriate latency to the core's clock.  This keeps multi-million
operation workloads tractable while preserving the latency composition
that the paper's experiments measure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cpu.hierarchy import MemoryHierarchy
from repro.sim.stats import StatsRegistry


@dataclass
class CpuConfig:
    """Core timing parameters (defaults follow Table 1's Cortex-A9)."""

    clock_mhz: float = 667.0
    #: Average cycles per (non-memory) instruction.
    cycles_per_instruction: float = 1.0
    #: Maximum outstanding asynchronous remote operations.
    max_outstanding: int = 16

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.clock_mhz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.cycle_ns


@dataclass
class ExecutionResult:
    """Summary of one core's execution of a workload."""

    total_time_ns: int
    compute_time_ns: int
    memory_time_ns: int
    stall_time_ns: int
    accesses: int
    cache_hits: int
    remote_accesses: int
    swap_accesses: int

    @property
    def total_time_s(self) -> float:
        return self.total_time_ns / 1e9

    @property
    def memory_fraction(self) -> float:
        if self.total_time_ns == 0:
            return 0.0
        return self.memory_time_ns / self.total_time_ns


class TimingCore:
    """Single in-order core driving a memory hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy,
                 config: Optional[CpuConfig] = None, name: str = "core"):
        self.hierarchy = hierarchy
        self.config = config or CpuConfig()
        self.name = name
        self.stats = StatsRegistry(name)
        self._now = 0.0
        self._compute_ns = 0.0
        self._memory_ns = 0.0
        self._stall_ns = 0.0
        # Completion times of outstanding async operations (min-heap).
        self._outstanding: List[float] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> int:
        return int(self._now)

    def reset(self) -> None:
        """Reset the clock and accumulated time (keeps hierarchy state)."""
        self._now = 0.0
        self._compute_ns = 0.0
        self._memory_ns = 0.0
        self._stall_ns = 0.0
        self._outstanding.clear()

    # ------------------------------------------------------------------
    # Execution primitives
    # ------------------------------------------------------------------
    def compute(self, instructions: float) -> None:
        """Execute ``instructions`` back-to-back ALU instructions."""
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        elapsed = self.config.cycles_to_ns(instructions * self.config.cycles_per_instruction)
        self._now += elapsed
        self._compute_ns += elapsed
        self.stats.counter("instructions").increment(int(instructions))

    def stall(self, nanoseconds: float) -> None:
        """Stall the core for a fixed software/driver overhead."""
        if nanoseconds < 0:
            raise ValueError("stall time must be non-negative")
        self._now += nanoseconds
        self._stall_ns += nanoseconds

    def read(self, address: int) -> int:
        """Blocking load; returns the access latency in ns."""
        return self._blocking_access(address, is_write=False)

    def write(self, address: int) -> int:
        """Blocking store; returns the access latency in ns."""
        return self._blocking_access(address, is_write=True)

    def _blocking_access(self, address: int, is_write: bool) -> int:
        outcome = self.hierarchy.access(address, is_write=is_write)
        self._now += outcome.latency_ns
        self._memory_ns += outcome.latency_ns
        self._count_access(outcome)
        return outcome.latency_ns

    def read_async(self, address: int) -> int:
        """Non-blocking load used by latency-tolerant code.

        The access is issued immediately; if the outstanding-operation
        window is full the core first stalls until the oldest operation
        completes.  Returns the latency of the individual access.
        """
        return self._async_access(address, is_write=False)

    def write_async(self, address: int) -> int:
        """Non-blocking store (posted write)."""
        return self._async_access(address, is_write=True)

    def _async_access(self, address: int, is_write: bool) -> int:
        if len(self._outstanding) >= self.config.max_outstanding:
            oldest = heapq.heappop(self._outstanding)
            if oldest > self._now:
                stall = oldest - self._now
                self._now = oldest
                self._memory_ns += stall
        outcome = self.hierarchy.access(address, is_write=is_write)
        self._count_access(outcome)
        heapq.heappush(self._outstanding, self._now + outcome.latency_ns)
        return outcome.latency_ns

    def drain(self) -> None:
        """Wait for every outstanding asynchronous operation."""
        if not self._outstanding:
            return
        last = max(self._outstanding)
        if last > self._now:
            self._memory_ns += last - self._now
            self._now = last
        self._outstanding.clear()

    def _count_access(self, outcome) -> None:
        self.stats.counter("accesses").increment()
        if outcome.cache_hit:
            self.stats.counter("cache_hits").increment()
        if outcome.served_by == "remote":
            self.stats.counter("remote_accesses").increment()
        elif outcome.served_by == "swap":
            self.stats.counter("swap_accesses").increment()

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------
    def result(self) -> ExecutionResult:
        """Snapshot of elapsed time and access counts (drains async ops)."""
        self.drain()
        return ExecutionResult(
            total_time_ns=int(self._now),
            compute_time_ns=int(self._compute_ns),
            memory_time_ns=int(self._memory_ns),
            stall_time_ns=int(self._stall_ns),
            accesses=self.stats.counter("accesses").value,
            cache_hits=self.stats.counter("cache_hits").value,
            remote_accesses=self.stats.counter("remote_accesses").value,
            swap_accesses=self.stats.counter("swap_accesses").value,
        )
