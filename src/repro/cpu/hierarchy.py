"""Per-node memory hierarchy: cache -> (local DRAM | remote | swap).

The hierarchy decides, per access, whether a cache miss is served by
local DRAM, by a remote node over a transport channel (when the address
falls in a hot-plugged region), or by the swap subsystem (when the
address lies beyond the node's visible physical memory).  This is where
the three memory-supply strategies the paper compares meet:

* all-local (ideal)           -- every miss hits local DRAM.
* hot-plugged remote (CRMA)   -- misses to borrowed regions cross the
  fabric at cacheline granularity.
* swap (local disk / RDMA / commodity block device) -- accesses beyond
  visible memory fault and move whole pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import Dram, DramConfig
from repro.mem.memory_map import PhysicalMemoryMap, RegionKind
from repro.mem.prefetch import StreamPrefetcher
from repro.mem.swap import SwapManager
from repro.sim.stats import StatsRegistry


class RemoteMemoryBackend:
    """Latency provider for accesses to hot-plugged remote regions.

    Implemented by the CRMA channel (and by commodity-interconnect
    load/store paths) -- anything that can satisfy a cacheline-sized
    remote read or write and report its latency.
    """

    def remote_read_latency_ns(self, size_bytes: int) -> int:
        raise NotImplementedError

    def remote_write_latency_ns(self, size_bytes: int) -> int:
        raise NotImplementedError


class LocalOnlyBackend(RemoteMemoryBackend):
    """Backend that refuses remote accesses (all-local configurations)."""

    def remote_read_latency_ns(self, size_bytes: int) -> int:
        raise RuntimeError("no remote memory backend configured")

    def remote_write_latency_ns(self, size_bytes: int) -> int:
        raise RuntimeError("no remote memory backend configured")


@dataclass
class AccessOutcome:
    """Result of one hierarchy access."""

    latency_ns: int
    cache_hit: bool
    served_by: str  # "cache" | "dram" | "remote" | "swap"


class MemoryHierarchy:
    """Cache + DRAM + optional remote backend + optional swap manager."""

    def __init__(self, memory_map: PhysicalMemoryMap,
                 cache: Optional[Cache] = None,
                 dram: Optional[Dram] = None,
                 remote_backend: Optional[RemoteMemoryBackend] = None,
                 swap: Optional[SwapManager] = None,
                 prefetcher: Optional[StreamPrefetcher] = None,
                 enable_prefetch: bool = True,
                 name: str = "memhier"):
        self.memory_map = memory_map
        self.cache = cache or Cache(CacheConfig())
        self.dram = dram or Dram(DramConfig())
        self.remote_backend = remote_backend
        self.swap = swap
        self.prefetcher = prefetcher if prefetcher is not None else (
            StreamPrefetcher() if enable_prefetch else None)
        self.name = name
        self.stats = StatsRegistry(name)

    @property
    def line_bytes(self) -> int:
        return self.cache.config.line_bytes

    def visible_capacity(self) -> int:
        return self.memory_map.visible_capacity()

    def access(self, address: int, is_write: bool = False) -> AccessOutcome:
        """Perform one demand access and return its latency and source."""
        result = self.cache.access(address, is_write=is_write)
        latency = result.latency_ns
        if result.hit:
            self.stats.counter("cache_hits").increment()
            return AccessOutcome(latency_ns=latency, cache_hit=True, served_by="cache")

        # Handle the writeback of the evicted dirty line first.
        if result.writeback_address is not None:
            latency += self._fill_latency(result.writeback_address, is_write=True)

        served_by, fill_ns = self._classify_and_fill(address, is_write)
        if self.prefetcher is not None and served_by in ("dram", "remote"):
            # Sequential-stream fills pipeline behind the prefetcher; the
            # demand miss only observes a fraction of the fill latency,
            # bounded below by the cacheline's link/DRAM occupancy.
            factor = self.prefetcher.observe_miss(result.line_address)
            if factor > 1:
                floor = self.dram.access_latency_ns(self.line_bytes)
                fill_ns = max(fill_ns // factor, floor)
                self.stats.counter("prefetch_covered_fills").increment()
        latency += fill_ns
        self.stats.counter(f"fills_{served_by}").increment()
        return AccessOutcome(latency_ns=latency, cache_hit=False, served_by=served_by)

    def _classify_and_fill(self, address: int, is_write: bool) -> tuple:
        line = self.line_bytes
        visible = self.memory_map.visible_capacity()
        if address >= self.memory_map.highest_address() or (
            address >= visible and not self.memory_map.is_remote(address)
        ):
            if self.swap is None:
                raise RuntimeError(
                    f"{self.name}: address {address:#x} exceeds visible memory and no "
                    "swap manager is configured"
                )
            swap_ns = self.swap.access(address, is_write=is_write)
            # After the page is resident the line is filled from DRAM.
            return "swap", swap_ns + self.dram.access_latency_ns(line)

        region = self.memory_map.lookup(address)
        if region.kind == RegionKind.REMOTE_MAPPED:
            if self.remote_backend is None:
                raise RuntimeError(
                    f"{self.name}: address {address:#x} is remote-mapped but no remote "
                    "backend is configured"
                )
            if is_write:
                return "remote", self.remote_backend.remote_write_latency_ns(line)
            return "remote", self.remote_backend.remote_read_latency_ns(line)

        return "dram", self.dram.access_latency_ns(line)

    def _fill_latency(self, address: int, is_write: bool) -> int:
        """Latency contribution of a writeback to ``address``."""
        try:
            _, latency = self._classify_and_fill(address, is_write)
        except RuntimeError:
            # Writebacks to since-unmapped regions are dropped by the
            # sharing protocol's cleanup; charge nothing.
            return 0
        return latency

    # Convenience read-only metrics ------------------------------------
    @property
    def cache_miss_rate(self) -> float:
        return self.cache.miss_rate

    @property
    def swap_fault_count(self) -> int:
        return self.swap.fault_count if self.swap is not None else 0
