"""Processor substrate: a simple in-order timing core and the memory
hierarchy it issues accesses into.

The Venice experiments are dominated by memory-system and fabric
latency, so the core model is intentionally simple: it executes
abstract operation streams (compute bursts and memory accesses),
stalling on blocking accesses and optionally overlapping independent
remote accesses when the workload permits asynchronous issue (the
Scale-out-NUMA-style latency-tolerance baseline in Figure 5).
"""

from repro.cpu.core import CpuConfig, TimingCore, ExecutionResult
from repro.cpu.hierarchy import MemoryHierarchy, RemoteMemoryBackend, LocalOnlyBackend

__all__ = [
    "CpuConfig",
    "TimingCore",
    "ExecutionResult",
    "MemoryHierarchy",
    "RemoteMemoryBackend",
    "LocalOnlyBackend",
]
