"""Semi-custom PCIe interconnect baselines.

Section 4.1 also evaluates a PCIe-based interconnect in two modes:

* **PCIe RDMA** -- remote memory used as swap space with page transfers
  performed by DMA engines over the PCIe fabric
  (:class:`PcieRdmaSwapDevice`);
* **PCIe LD/ST (CRMA)** -- direct load/store access to remote memory via
  on-demand cacheline fills (:class:`PcieLoadStoreBackend`).  The paper
  notes this configuration "suffers from a crippling, but fixable,
  limit due to the commodity PCIe chip": the commodity non-transparent
  bridge serialises non-posted reads and adds an enormous per-read
  penalty, giving the 191x slowdown of Figure 3; with the chip
  limitation fixed the estimated slowdown drops to ~13x.  Both variants
  are modelled here via the ``commodity_chip_limit`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.hierarchy import RemoteMemoryBackend
from repro.interconnects.base import InterconnectProfile, round_trip_latency_ns
from repro.mem.swap import SwapDevice


@dataclass
class PcieProfile(InterconnectProfile):
    """Default PCIe Gen3 x8 non-transparent-bridge constants."""

    name: str = "PCIe-NTB"
    bandwidth_gbps: float = 64.0
    request_software_ns: int = 8_000    # block-layer + DMA descriptor setup
    response_software_ns: int = 9_500   # completion interrupt + unmap
    adapter_ns: int = 700               # root complex + switch + NTB crossing
    wire_ns: int = 300
    protocol_overhead_bytes: int = 24   # TLP header + DLLP

    #: Raw load/store (no software) one-way TLP latency through the NTB
    #: path (root complexes, switches and the bridge on both hosts), ns.
    load_store_hop_ns: int = 6_500
    #: Extra per-read stall imposed by the commodity chip's serialised
    #: handling of non-posted (read) transactions, ns.
    commodity_read_penalty_ns: int = 245_000


_DMA_DESCRIPTOR_BYTES = 64


class PcieRdmaSwapDevice(SwapDevice):
    """Swap backend: page transfers by DMA over the PCIe fabric."""

    name = "pcie-rdma"

    def __init__(self, profile: PcieProfile = None):
        self.profile = profile or PcieProfile()

    def read_page_latency_ns(self, page_bytes: int) -> int:
        return round_trip_latency_ns(self.profile, _DMA_DESCRIPTOR_BYTES, page_bytes)

    def write_page_latency_ns(self, page_bytes: int) -> int:
        return round_trip_latency_ns(self.profile, page_bytes, _DMA_DESCRIPTOR_BYTES)


class PcieLoadStoreBackend(RemoteMemoryBackend):
    """Direct load/store remote access through a PCIe non-transparent bridge.

    Parameters
    ----------
    commodity_chip_limit:
        When ``True`` (the measured configuration in Figure 3), every
        remote read pays the commodity chip's serialised non-posted-read
        penalty.  When ``False`` the penalty disappears, modelling the
        "fixable" variant whose slowdown the paper estimates at ~13x.
    """

    def __init__(self, profile: PcieProfile = None, commodity_chip_limit: bool = True):
        self.profile = profile or PcieProfile()
        self.commodity_chip_limit = commodity_chip_limit

    def _transfer_ns(self, size_bytes: int) -> int:
        return self.profile.serialization_ns(size_bytes)

    def remote_read_latency_ns(self, size_bytes: int) -> int:
        """Cacheline fill: request TLP out, completion TLP with data back."""
        latency = 2 * self.profile.load_store_hop_ns + 2 * self.profile.adapter_ns
        latency += 2 * self.profile.wire_ns + self._transfer_ns(size_bytes)
        if self.commodity_chip_limit:
            latency += self.profile.commodity_read_penalty_ns
        return latency

    def remote_write_latency_ns(self, size_bytes: int) -> int:
        """Posted write: the store retires once the TLP is accepted."""
        return (self.profile.load_store_hop_ns + self.profile.adapter_ns
                + self.profile.wire_ns + self._transfer_ns(size_bytes))
