"""InfiniBand SRP remote-memory baseline.

The second legacy configuration in Section 4.1 uses InfiniBand's SCSI
RDMA Protocol (SRP) to present donor memory as a virtual block device.
The HCA offloads the transport, so the per-operation software cost is
much lower than the Ethernet/TCP path, but every page still traverses
the SCSI block layer and the PCIe-attached HCA on both ends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interconnects.base import InterconnectProfile, round_trip_latency_ns
from repro.mem.swap import SwapDevice


@dataclass
class InfinibandProfile(InterconnectProfile):
    """Default QDR/FDR-class InfiniBand + SRP constants."""

    name: str = "InfiniBand-SRP"
    bandwidth_gbps: float = 40.0
    request_software_ns: int = 14_000   # SCSI midlayer + SRP initiator
    response_software_ns: int = 17_000  # target-side SRP service + completion IRQ
    adapter_ns: int = 1_200             # HCA + PCIe crossing
    wire_ns: int = 800                  # switch hop + cable
    protocol_overhead_bytes: int = 70


_SRP_COMMAND_BYTES = 96


class InfinibandSrpSwapDevice(SwapDevice):
    """Swap backend: remote memory behind an SRP virtual block device."""

    name = "infiniband-srp"

    def __init__(self, profile: InfinibandProfile = None):
        self.profile = profile or InfinibandProfile()

    def read_page_latency_ns(self, page_bytes: int) -> int:
        return round_trip_latency_ns(self.profile, _SRP_COMMAND_BYTES, page_bytes)

    def write_page_latency_ns(self, page_bytes: int) -> int:
        return round_trip_latency_ns(self.profile, page_bytes, _SRP_COMMAND_BYTES)
