"""Commodity-interconnect baselines used in the Figure 3 feasibility study.

The paper measures remote-memory access over a legacy x86 cluster with
four configurations:

* 10 Gb Ethernet with remote memory as a swap partition behind a vDisk
  driver (:class:`~repro.interconnects.ethernet.EthernetSwapDevice`);
* InfiniBand with the SCSI RDMA Protocol providing a virtual block
  device (:class:`~repro.interconnects.infiniband.InfinibandSrpSwapDevice`);
* a semi-custom PCIe interconnect doing page swapping with DMAs
  (:class:`~repro.interconnects.pcie.PcieRdmaSwapDevice`); and
* the same PCIe interconnect doing direct load/store cacheline fills
  (:class:`~repro.interconnects.pcie.PcieLoadStoreBackend`), both with
  the crippling commodity-chip limitation the paper notes and with that
  limitation fixed.

Each model composes a per-operation latency out of software-stack,
adapter/IO-bus, wire and protocol components so experiments can reason
about where the time goes.
"""

from repro.interconnects.base import InterconnectProfile, round_trip_latency_ns
from repro.interconnects.ethernet import EthernetProfile, EthernetSwapDevice
from repro.interconnects.infiniband import InfinibandProfile, InfinibandSrpSwapDevice
from repro.interconnects.pcie import (
    PcieProfile,
    PcieRdmaSwapDevice,
    PcieLoadStoreBackend,
)

__all__ = [
    "InterconnectProfile",
    "round_trip_latency_ns",
    "EthernetProfile",
    "EthernetSwapDevice",
    "InfinibandProfile",
    "InfinibandSrpSwapDevice",
    "PcieProfile",
    "PcieRdmaSwapDevice",
    "PcieLoadStoreBackend",
]
