"""Shared latency composition for commodity interconnects.

A remote operation over a commodity interconnect pays, in order:

1. the sender's software stack (system call, protocol processing,
   driver, descriptor posting);
2. the host adapter / IO-bus crossing (PCIe hop to the NIC/HCA);
3. serialization of the message onto the wire at link bandwidth;
4. wire propagation (and possibly a switch);
5. the receiver's adapter and software stack (interrupt or polling);

and the same again for the response.  :class:`InterconnectProfile`
captures those components so every baseline is built from the same
recipe with different constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class InterconnectProfile:
    """Latency/bandwidth components of one commodity interconnect."""

    name: str
    #: Link bandwidth in Gbps.
    bandwidth_gbps: float
    #: Per-operation software-stack overhead on the requesting side, ns.
    request_software_ns: int
    #: Per-operation software-stack overhead on the serving side, ns
    #: (interrupt handling, kernel block layer, protocol processing).
    response_software_ns: int
    #: Host adapter + IO bus crossing latency (one way), ns.
    adapter_ns: int
    #: Wire / switch propagation latency (one way), ns.
    wire_ns: int
    #: Fixed per-message protocol overhead in bytes (headers, CRC, DLLP).
    protocol_overhead_bytes: int = 64

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        for field_name in ("request_software_ns", "response_software_ns",
                           "adapter_ns", "wire_ns", "protocol_overhead_bytes"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{self.name}: {field_name} must be non-negative")

    def serialization_ns(self, payload_bytes: int) -> int:
        """Time to put ``payload_bytes`` (plus protocol overhead) on the wire."""
        total_bytes = payload_bytes + self.protocol_overhead_bytes
        return int(total_bytes * 8 / self.bandwidth_gbps)

    def one_way_ns(self, payload_bytes: int, software: bool = True) -> int:
        """One-way message latency for a payload of ``payload_bytes``."""
        latency = self.adapter_ns + self.wire_ns + self.serialization_ns(payload_bytes)
        if software:
            latency += self.request_software_ns
        return latency


def round_trip_latency_ns(profile: InterconnectProfile, request_bytes: int,
                          response_bytes: int) -> int:
    """End-to-end request/response latency over ``profile``.

    Both directions cross the adapters and wire; the requester pays its
    software stack once at issue and the responder pays its stack once
    per request (service + response posting).
    """
    request_ns = profile.one_way_ns(request_bytes, software=True)
    service_ns = profile.response_software_ns
    response_ns = profile.one_way_ns(response_bytes, software=False) + profile.adapter_ns
    return request_ns + service_ns + response_ns
