"""10 Gb Ethernet remote-memory baseline.

The legacy configuration in Section 4.1 exposes a donor node's memory
as a swap partition through a vDisk driver: every page fault becomes a
block request carried over TCP/IP and 10 GbE.  The latency is dominated
by the software stack (socket layer, TCP, interrupt handling) rather
than the wire, which is exactly why the paper finds it an order of
magnitude too slow for fine-grained sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnects.base import InterconnectProfile, round_trip_latency_ns
from repro.mem.swap import SwapDevice


@dataclass
class EthernetProfile(InterconnectProfile):
    """Default 10 GbE + TCP/IP constants.

    The ~21 us request software path and ~24 us response path reflect
    kernel TCP/IP transmit/receive costs plus the vDisk block-layer
    round trip on mid-2010s Xeon-class servers.
    """

    name: str = "10GbE-TCP-vDisk"
    bandwidth_gbps: float = 10.0
    request_software_ns: int = 30_000
    response_software_ns: int = 36_000
    adapter_ns: int = 3_000
    wire_ns: int = 2_000
    protocol_overhead_bytes: int = 78  # Ethernet + IP + TCP headers


#: Block-request descriptor size for the vDisk protocol.
_BLOCK_REQUEST_BYTES = 128


class EthernetSwapDevice(SwapDevice):
    """Swap backend: remote memory behind a vDisk over 10 GbE."""

    name = "ethernet-vdisk"

    def __init__(self, profile: EthernetProfile = None):
        self.profile = profile or EthernetProfile()

    def read_page_latency_ns(self, page_bytes: int) -> int:
        """Page-in: small request out, full page back."""
        return round_trip_latency_ns(self.profile, _BLOCK_REQUEST_BYTES, page_bytes)

    def write_page_latency_ns(self, page_bytes: int) -> int:
        """Page-out: full page out, small acknowledgement back."""
        return round_trip_latency_ns(self.profile, page_bytes, _BLOCK_REQUEST_BYTES)
