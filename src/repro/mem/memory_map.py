"""Physical memory map with hot-plug / hot-remove regions.

Figure 10 of the paper shows the mechanism Venice uses for direct
remote memory access: a donor hot-removes a region (making it invisible
to its own OS), the recipient hot-plugs a new region at the top of its
physical address space, and the Venice hardware routes accesses to that
region over the CRMA channel.  :class:`PhysicalMemoryMap` implements the
address-range bookkeeping for both sides of that flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class MemoryMapError(RuntimeError):
    """Raised on invalid hot-plug/hot-remove/lookup operations."""


class RegionKind(enum.Enum):
    """Classification of a physical address range."""

    LOCAL = "local"               #: backed by local DRAM, visible to the OS
    REMOVED = "removed"           #: hot-removed (donated), invisible to the OS
    REMOTE_MAPPED = "remote"      #: hot-plugged, backed by a remote donor via CRMA
    SWAP_BACKED = "swap"          #: overflow area backed by the swap subsystem


@dataclass
class MemoryRegion:
    """A contiguous physical address range with uniform backing."""

    start: int
    size: int
    kind: RegionKind
    #: Donor node id for REMOTE_MAPPED regions / recipient for REMOVED.
    peer_node: Optional[int] = None
    #: Base address of the corresponding region on the peer node.
    peer_base: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")
        if self.start < 0:
            raise ValueError(f"region start must be non-negative, got {self.start}")

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.start < other.end and other.start < self.end


class PhysicalMemoryMap:
    """Per-node physical address-space bookkeeping."""

    def __init__(self, local_capacity: int, node_id: int = 0):
        if local_capacity <= 0:
            raise ValueError("local capacity must be positive")
        self.node_id = node_id
        self._regions: List[MemoryRegion] = [
            MemoryRegion(start=0, size=local_capacity, kind=RegionKind.LOCAL,
                         label="boot-local")
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def regions(self) -> List[MemoryRegion]:
        return list(self._regions)

    def lookup(self, address: int) -> MemoryRegion:
        """Region containing ``address`` (REMOVED regions do not match)."""
        for region in self._regions:
            if region.contains(address) and region.kind != RegionKind.REMOVED:
                return region
        raise MemoryMapError(f"address {address:#x} is not mapped on node {self.node_id}")

    def visible_capacity(self) -> int:
        """Bytes visible to the OS (local + hot-plugged remote)."""
        return sum(
            region.size for region in self._regions
            if region.kind in (RegionKind.LOCAL, RegionKind.REMOTE_MAPPED)
        )

    def local_capacity(self) -> int:
        return sum(region.size for region in self._regions
                   if region.kind == RegionKind.LOCAL)

    def remote_capacity(self) -> int:
        return sum(region.size for region in self._regions
                   if region.kind == RegionKind.REMOTE_MAPPED)

    def donated_capacity(self) -> int:
        return sum(region.size for region in self._regions
                   if region.kind == RegionKind.REMOVED)

    def highest_address(self) -> int:
        return max(region.end for region in self._regions)

    def is_remote(self, address: int) -> bool:
        """True when ``address`` falls in a hot-plugged remote region."""
        try:
            return self.lookup(address).kind == RegionKind.REMOTE_MAPPED
        except MemoryMapError:
            return False

    # ------------------------------------------------------------------
    # Hot-remove (donor side)
    # ------------------------------------------------------------------
    def hot_remove(self, size: int, recipient_node: int) -> MemoryRegion:
        """Carve ``size`` bytes from the top of local memory for donation.

        The removed range stays at its original physical address on the
        donor (the Venice interface services remote requests to it) but
        becomes invisible to the donor's own software.
        """
        if size <= 0:
            raise MemoryMapError(f"hot-remove size must be positive, got {size}")
        for region in reversed(self._regions):
            if region.kind == RegionKind.LOCAL and region.size >= size:
                # Split: keep the low part local, donate the high part.
                donated = MemoryRegion(
                    start=region.end - size, size=size, kind=RegionKind.REMOVED,
                    peer_node=recipient_node,
                    label=f"donated-to-{recipient_node}",
                )
                region.size -= size
                if region.size == 0:
                    self._regions.remove(region)
                self._regions.append(donated)
                return donated
        raise MemoryMapError(
            f"node {self.node_id} cannot hot-remove {size} bytes: insufficient local memory"
        )

    def hot_add_back(self, region: MemoryRegion) -> None:
        """Return a previously donated region to local use (un-share)."""
        if region not in self._regions or region.kind != RegionKind.REMOVED:
            raise MemoryMapError("region is not a donated region of this node")
        region.kind = RegionKind.LOCAL
        region.peer_node = None
        region.label = "reclaimed"

    # ------------------------------------------------------------------
    # Hot-plug (recipient side)
    # ------------------------------------------------------------------
    def hot_plug_remote(self, size: int, donor_node: int, donor_base: int,
                        label: str = "") -> MemoryRegion:
        """Map a remote region at the top of this node's address space."""
        if size <= 0:
            raise MemoryMapError(f"hot-plug size must be positive, got {size}")
        start = self.highest_address()
        region = MemoryRegion(
            start=start, size=size, kind=RegionKind.REMOTE_MAPPED,
            peer_node=donor_node, peer_base=donor_base,
            label=label or f"borrowed-from-{donor_node}",
        )
        self._regions.append(region)
        return region

    def hot_unplug(self, region: MemoryRegion) -> None:
        """Remove a hot-plugged remote region (stop-sharing cleanup)."""
        if region not in self._regions or region.kind != RegionKind.REMOTE_MAPPED:
            raise MemoryMapError("region is not a hot-plugged remote region of this node")
        self._regions.remove(region)

    def translate_to_donor(self, address: int) -> tuple:
        """Translate a local remote-mapped address to ``(donor, donor_addr)``."""
        region = self.lookup(address)
        if region.kind != RegionKind.REMOTE_MAPPED:
            raise MemoryMapError(f"address {address:#x} is not remote-mapped")
        offset = address - region.start
        return region.peer_node, region.peer_base + offset
