"""Memory-system substrate: caches, DRAM, the physical memory map with
hot-plug/hot-remove support, and the page-granularity swap subsystem.

These models provide the local memory hierarchy of every node.  Remote
memory (the paper's contribution) is layered on top by
:mod:`repro.core.sharing.remote_memory`, which maps hot-plugged regions
onto CRMA or RDMA channels.
"""

from repro.mem.cache import Cache, CacheConfig, AccessResult
from repro.mem.dram import Dram, DramConfig
from repro.mem.memory_map import (
    MemoryRegion,
    RegionKind,
    PhysicalMemoryMap,
    MemoryMapError,
)
from repro.mem.swap import SwapDevice, SwapManager, SwapConfig, LocalDiskSwapDevice

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "Dram",
    "DramConfig",
    "MemoryRegion",
    "RegionKind",
    "PhysicalMemoryMap",
    "MemoryMapError",
    "SwapDevice",
    "SwapManager",
    "SwapConfig",
    "LocalDiskSwapDevice",
]
