"""Local DRAM timing model.

The prototype nodes carry a 1 GB SODIMM.  The model charges a fixed
access latency per cacheline-sized request plus a bandwidth-derived
transfer time for larger (DMA / page) requests.  It is deliberately a
closed-form timing model rather than a bank-level simulator: every
experiment in the paper contrasts local DRAM latency against *fabric*
latency, which is an order of magnitude larger, so bank-level detail
does not change any conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import StatsRegistry


@dataclass
class DramConfig:
    """Timing and capacity of a node's local DRAM."""

    capacity_bytes: int = 1 * 1024 * 1024 * 1024
    #: Closed-row access latency for a cacheline request, ns.
    access_latency_ns: int = 60
    #: Sustained bandwidth for streaming transfers, GB/s.
    bandwidth_gbps: float = 25.6
    #: Additional latency charged per DMA descriptor (setup cost), ns.
    dma_setup_ns: int = 200

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("DRAM capacity must be positive")
        if self.bandwidth_gbps <= 0:
            raise ValueError("DRAM bandwidth must be positive")


class Dram:
    """Closed-form DRAM latency/bandwidth model."""

    def __init__(self, config: Optional[DramConfig] = None, name: str = "dram"):
        self.config = config or DramConfig()
        self.name = name
        self.stats = StatsRegistry(name)
        # Lazily-bound counter handles: a Dram is built per CRMA channel
        # (one per allocation on the sharded-MN path), so the counters
        # keep their created-on-first-access semantics while repeat
        # accesses skip the registry lookup.
        self._ctr_accesses = self._ctr_bytes = None

    def access_latency_ns(self, size_bytes: int) -> int:
        """Latency of a demand access of ``size_bytes`` (cacheline fill)."""
        if size_bytes <= 0:
            raise ValueError(f"access size must be positive, got {size_bytes}")
        if self._ctr_accesses is None:
            self._ctr_accesses = self.stats.counter("accesses")
            self._ctr_bytes = self.stats.counter("bytes")
        self._ctr_accesses.increment()
        self._ctr_bytes.increment(size_bytes)
        transfer_ns = int(size_bytes * 8 / self.config.bandwidth_gbps)
        return self.config.access_latency_ns + transfer_ns

    def dma_latency_ns(self, size_bytes: int) -> int:
        """Latency of a DMA transfer of ``size_bytes`` to/from DRAM."""
        if size_bytes <= 0:
            raise ValueError(f"DMA size must be positive, got {size_bytes}")
        self.stats.counter("dma_transfers").increment()
        self.stats.counter("bytes").increment(size_bytes)
        transfer_ns = int(size_bytes * 8 / self.config.bandwidth_gbps)
        return self.config.dma_setup_ns + self.config.access_latency_ns + transfer_ns

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes
