"""Page-granularity swap subsystem.

Several configurations in the paper supply extra memory capacity by
paging: to a local disk (the conventional baseline in Figure 15), to
remote memory presented as a virtual block device over 10 GbE or
InfiniBand SRP (Figure 3), or to remote memory over the Venice RDMA
channel (Section 5.2.1, Figure 15).  :class:`SwapManager` models the
kernel side -- a resident-set of page frames with LRU replacement and
dirty-page writeback -- against a pluggable :class:`SwapDevice` backend
that supplies the per-page transfer latencies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import StatsRegistry

#: Default page size (4 KiB, as on the prototype's Linux kernel).
PAGE_BYTES = 4096


@dataclass
class SwapConfig:
    """Parameters of the swap manager."""

    page_bytes: int = PAGE_BYTES
    #: Number of page frames that fit in local memory for this workload.
    resident_frames: int = 1024
    #: Kernel overhead per page fault (trap, page-table walk, driver), ns.
    fault_overhead_ns: int = 3000
    #: Pages fetched per cluster read when faults are sequential (Linux
    #: swap readahead).  1 disables readahead.
    readahead_pages: int = 8

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.resident_frames <= 0:
            raise ValueError("page size and resident frames must be positive")
        if self.readahead_pages <= 0:
            raise ValueError("readahead_pages must be at least 1")


class SwapDevice:
    """Backend that stores evicted pages (disk, remote memory, ...)."""

    name = "abstract"

    def read_page_latency_ns(self, page_bytes: int) -> int:
        """Latency to fetch one page from the device."""
        raise NotImplementedError

    def write_page_latency_ns(self, page_bytes: int) -> int:
        """Latency to write one page out to the device."""
        raise NotImplementedError

    def read_cluster_latency_ns(self, page_bytes: int, count: int) -> int:
        """Latency to fetch ``count`` contiguous pages in one request.

        The default issues a single larger read, which amortises the
        device's fixed per-request cost across the cluster -- the effect
        Linux swap readahead relies on.
        """
        if count <= 0:
            raise ValueError("cluster size must be positive")
        return self.read_page_latency_ns(page_bytes * count)

    def supports_write_overlap(self) -> bool:
        """True when writebacks overlap with the fetch (double buffering).

        The Venice RDMA swap driver uses double buffering of DMA
        descriptors (Section 5.2.1), letting the dirty-page writeback
        proceed concurrently with the demand fetch.
        """
        return False


class LocalDiskSwapDevice(SwapDevice):
    """Conventional swap-to-local-storage baseline.

    Latency defaults model the slow flash-class storage attached to the
    prototype's Zynq boards (sub-millisecond random reads, slower
    writes, modest bandwidth); the paper's "local memory swap space"
    reference point in Figure 15 uses this backend.  Pass faster
    SSD-class numbers for a modern server baseline.
    """

    name = "local-disk"

    def __init__(self, read_latency_us: float = 280.0,
                 write_latency_us: float = 420.0,
                 bandwidth_mbps: float = 320.0):
        if read_latency_us <= 0 or write_latency_us <= 0 or bandwidth_mbps <= 0:
            raise ValueError("latencies and bandwidth must be positive")
        self.read_latency_ns = int(read_latency_us * 1000)
        self.write_latency_ns = int(write_latency_us * 1000)
        self.bandwidth_mbps = bandwidth_mbps

    def _transfer_ns(self, page_bytes: int) -> int:
        return int(page_bytes * 8 * 1000 / self.bandwidth_mbps)

    def read_page_latency_ns(self, page_bytes: int) -> int:
        return self.read_latency_ns + self._transfer_ns(page_bytes)

    def write_page_latency_ns(self, page_bytes: int) -> int:
        return self.write_latency_ns + self._transfer_ns(page_bytes)


class SwapManager:
    """LRU resident set with dirty-page writeback over a swap device."""

    def __init__(self, config: Optional[SwapConfig] = None,
                 device: Optional[SwapDevice] = None, name: str = "swap"):
        self.config = config or SwapConfig()
        self.device = device or LocalDiskSwapDevice()
        self.name = name
        self.stats = StatsRegistry(name)
        # page_id -> dirty flag, LRU order (oldest first).
        self._resident: OrderedDict = OrderedDict()
        # Last demand-faulted page and the page just past the last
        # readahead cluster, used to detect sequential fault streams.
        self._last_faulted_page: Optional[int] = None
        self._readahead_frontier: Optional[int] = None

    def page_of(self, address: int) -> int:
        """Page identifier containing ``address``."""
        if address < 0:
            raise ValueError(f"negative address: {address}")
        return address // self.config.page_bytes

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._resident

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def fault_count(self) -> int:
        return self.stats.counter("faults").value

    @property
    def fault_rate(self) -> float:
        accesses = self.stats.counter("accesses").value
        return self.fault_count / accesses if accesses else 0.0

    def access(self, address: int, is_write: bool = False) -> int:
        """Touch the page containing ``address``; return latency in ns.

        A resident page costs nothing extra (the caller accounts for the
        DRAM access).  A non-resident page triggers a fault: the LRU
        victim is evicted (with a device write if dirty), the demanded
        page is fetched, and the total stall time is returned.
        """
        self.stats.counter("accesses").increment()
        page_id = self.page_of(address)
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            if is_write:
                self._resident[page_id] = True
            self.stats.counter("resident_hits").increment()
            return 0

        self.stats.counter("faults").increment()
        latency = self.config.fault_overhead_ns

        # Sequential faults trigger readahead: the demanded page and the
        # following pages of the cluster are brought in with one larger
        # device request (Linux swap readahead behaviour).  A fault is
        # part of a sequential stream when it lands on the page right
        # after the previous fault, or on the page just past the last
        # readahead cluster.
        sequential = (
            (self._last_faulted_page is not None
             and page_id == self._last_faulted_page + 1)
            or (self._readahead_frontier is not None
                and page_id == self._readahead_frontier)
        )
        self._last_faulted_page = page_id
        cluster = self.config.readahead_pages if sequential else 1
        cluster = min(cluster, self.config.resident_frames)
        self._readahead_frontier = page_id + cluster

        writeback_ns = 0
        evictions_needed = max(0, len(self._resident) + cluster
                               - self.config.resident_frames)
        for _ in range(evictions_needed):
            victim_page, victim_dirty = self._resident.popitem(last=False)
            if victim_dirty:
                writeback_ns += self.device.write_page_latency_ns(self.config.page_bytes)
                self.stats.counter("writebacks").increment()
        fetch_ns = self.device.read_cluster_latency_ns(self.config.page_bytes, cluster)
        self.stats.counter("pages_in").increment(cluster)
        if cluster > 1:
            self.stats.counter("readahead_clusters").increment()
        if writeback_ns and self.device.supports_write_overlap():
            latency += max(fetch_ns, writeback_ns)
        else:
            latency += fetch_ns + writeback_ns
        # Install the readahead pages as clean, least-recently used so
        # the demanded page outlives them under pressure.
        for ahead in range(cluster - 1, 0, -1):
            ahead_page = page_id + ahead
            if ahead_page not in self._resident:
                self._resident[ahead_page] = False
        self._resident[page_id] = is_write
        self._resident.move_to_end(page_id)
        return latency

    def prefault(self, pages: int) -> None:
        """Mark the first ``pages`` pages resident (warm-up helper)."""
        for page_id in range(min(pages, self.config.resident_frames)):
            self._resident[page_id] = False

    def flush(self) -> int:
        """Write back all dirty resident pages; return total latency."""
        total = 0
        for page_id, dirty in list(self._resident.items()):
            if dirty:
                total += self.device.write_page_latency_ns(self.config.page_bytes)
                self._resident[page_id] = False
                self.stats.counter("writebacks").increment()
        return total
