"""Sequential stream prefetcher.

The prototype's Cortex-A9/PL310 cache hierarchy prefetches sequential
streams, which matters a great deal for the paper's streaming workloads
(Grep, CC, the edge-list scans): successive cache-line fills from a
remote region can be pipelined over the fabric instead of each paying
the full round trip.  The model detects ascending unit-stride line
streams and, while a stream is active, reports a *pipelining factor*:
the number of outstanding fills the prefetcher keeps in flight.  The
memory hierarchy divides the miss latency of stream hits by this factor
(bounded below by the link occupancy, which pipelining cannot remove).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.stats import StatsRegistry


@dataclass
class PrefetcherConfig:
    """Stream-detection and aggressiveness parameters."""

    #: Number of distinct streams tracked simultaneously.
    num_streams: int = 4
    #: Sequential misses needed before a stream is considered trained.
    training_threshold: int = 2
    #: Outstanding prefetches kept in flight once trained (pipelining factor).
    degree: int = 4

    def __post_init__(self) -> None:
        if self.num_streams <= 0 or self.training_threshold <= 0 or self.degree <= 0:
            raise ValueError("prefetcher parameters must be positive")


class StreamPrefetcher:
    """Unit-stride ascending stream detector."""

    def __init__(self, config: Optional[PrefetcherConfig] = None, name: str = "prefetch"):
        self.config = config or PrefetcherConfig()
        self.name = name
        self.stats = StatsRegistry(name)
        # stream id (allocation order) -> (next expected line, train count)
        self._streams: Dict[int, list] = {}
        self._next_stream_id = 0

    def observe_miss(self, line_address: int) -> int:
        """Record a demand miss; return the pipelining factor for it.

        Returns 1 (no benefit) for misses that do not belong to a trained
        stream, and ``config.degree`` for misses the prefetcher had
        already covered.
        """
        if line_address < 0:
            raise ValueError("line address must be non-negative")
        # Hit on an existing stream?
        for stream_id, state in self._streams.items():
            expected, trained = state
            if line_address == expected:
                state[0] = line_address + 1
                state[1] = trained + 1
                # Only misses arriving after the stream was already
                # trained were actually covered by in-flight prefetches.
                if trained >= self.config.training_threshold:
                    self.stats.counter("stream_hits").increment()
                    return self.config.degree
                self.stats.counter("training_hits").increment()
                return 1
        # Allocate a new stream (replace the oldest).
        self._streams[self._next_stream_id] = [line_address + 1, 1]
        self._next_stream_id += 1
        while len(self._streams) > self.config.num_streams:
            oldest = min(self._streams)
            del self._streams[oldest]
        self.stats.counter("stream_allocations").increment()
        return 1

    @property
    def active_streams(self) -> int:
        return len(self._streams)

    def reset(self) -> None:
        self._streams.clear()
