"""Whole-system composition: nodes + topology + channels + runtime.

:class:`VeniceSystem` is the top of the public API.  It builds the node
set over the configured topology, wires the Monitor-Node runtime, and
hands out transport channels and sharing grants between node pairs.  It
also knows how to construct the event-driven fabric (switches, links,
datalinks with programmed routing tables) for experiments that need to
observe contention rather than just closed-form latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.channels.backend import (
    ClosedFormBackend,
    EventBackend,
    EventTransport,
    TransportBackend,
)
from repro.core.channels.crma import CrmaChannel, CrmaRemoteBackend
from repro.core.channels.path import FabricPath
from repro.core.channels.qpair import QPairChannel
from repro.core.channels.rdma import RdmaChannel, RdmaSwapDevice
from repro.core.config import ChannelPlacement, VeniceConfig
from repro.core.node import VeniceNode
from repro.core.sharing.remote_memory import RemoteMemoryGrant, share_memory, stop_sharing
from repro.fabric.datalink import DataLink
from repro.fabric.network import Switch
from repro.fabric.phy import PhysicalLink
from repro.fabric.router import RouterConfig
from repro.fabric.topology import (
    Topology,
    build_direct_pair,
    build_fat_tree,
    build_mesh3d,
    build_star,
    dimension_order_route,
)
from repro.runtime.monitor import Allocation, MonitorNode
from repro.sim.engine import Simulator


@dataclass
class EventFabric:
    """Handles to the event-driven fabric built by ``build_event_fabric``."""

    sim: Simulator
    switches: Dict[int, Switch]
    links: Dict[Tuple[int, int], PhysicalLink]
    datalinks: Dict[Tuple[int, int], DataLink]

    def inject(self, node_id: int, packet) -> None:
        """Hand a packet to a node's switch (partition-aware hook point).

        The monolithic fabric injects synchronously; the partitioned
        fabric (:mod:`repro.sim.partition`) overrides this to defer
        injections raised while a foreign partition is mid-window.
        """
        self.switches[node_id].inject(packet)


class VeniceSystem:
    """A rack of Venice nodes plus the Monitor-Node runtime.

    ``transport_backend`` selects how the system's channels cost their
    operations: ``"closed_form"`` (default -- the uncontended formulas
    every seed experiment and the cached cluster sweeps use) or
    ``"event"`` (each operation runs as credit-flow-controlled packets
    over one shared event-driven fabric; all channels of the system
    contend on the same :class:`~repro.sim.engine.Simulator`).
    """

    def __init__(self, config: VeniceConfig, topology: Topology,
                 nodes: Dict[int, VeniceNode], monitor: MonitorNode,
                 transport_backend: str = "closed_form",
                 scheduler: str = "auto",
                 sanitize: Optional[bool] = None):
        if transport_backend not in ("closed_form", "event"):
            raise ValueError(
                f"unknown transport backend {transport_backend!r}; "
                "choose 'closed_form' or 'event'")
        self.config = config
        self.topology = topology
        self.nodes = nodes
        self.monitor = monitor
        self.transport_backend = transport_backend
        self.scheduler = scheduler
        #: ``None`` defers to the ``SIM_SANITIZE`` environment variable
        #: when the system builds its simulators.
        self.sanitize = sanitize
        self.grants: List[RemoteMemoryGrant] = []
        #: Lazily built shared event executor (event backend only).
        self._event_transport: Optional[EventTransport] = None
        self._event_transport_partitioned = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, config: Optional[VeniceConfig] = None,
              transport_backend: str = "closed_form",
              scheduler: str = "auto",
              sanitize: Optional[bool] = None) -> "VeniceSystem":
        """Build a system from a configuration (Table 1 defaults)."""
        config = config or VeniceConfig()
        topology = cls._build_topology(config)
        nodes = {
            node_id: VeniceNode(node_id, config.node,
                                neighbors=tuple(topology.neighbors(node_id)))
            for node_id in topology.compute_nodes
        }
        monitor = MonitorNode(topology)
        for node_id in sorted(nodes):
            monitor.register_agent(nodes[node_id].agent)
        return cls(config=config, topology=topology, nodes=nodes,
                   monitor=monitor, transport_backend=transport_backend,
                   scheduler=scheduler, sanitize=sanitize)

    @staticmethod
    def _build_topology(config: VeniceConfig) -> Topology:
        if config.topology == "mesh3d":
            topology = build_mesh3d(config.mesh_dims)
        elif config.topology == "direct_pair":
            topology = build_direct_pair()
        elif config.topology == "fat_tree":
            topology = build_fat_tree(config.num_nodes,
                                      leaf_radix=config.fat_tree_leaf_radix,
                                      num_spines=config.fat_tree_spines)
        else:
            topology = build_star(config.num_nodes)
        topology.validate()
        return topology

    # ------------------------------------------------------------------
    # Node / path access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> VeniceNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} does not exist in this system") from None

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.nodes)

    def path_between(self, src: int, dst: int,
                     placement: Optional[ChannelPlacement] = None,
                     through_router: bool = False) -> FabricPath:
        """Fabric path description between two compute nodes.

        Router nodes on the topology's shortest path (star hubs,
        fat-tree leaves and spines) are charged as external-router
        crossings; the remaining node-level links are the path's hops.
        ``through_router`` inserts one additional external router on top
        (the Figure 6 knob).
        """
        if src == dst:
            raise ValueError("a fabric path requires two distinct nodes")
        links, crossings = self.topology.route_shape(src, dst)
        path = FabricPath(
            fabric=self.config.fabric,
            hops=max(1, links - crossings),
            placement=placement or ChannelPlacement.ON_CHIP,
        )
        total_routers = crossings + (1 if through_router else 0)
        if total_routers:
            path = path.with_router(RouterConfig(), count=total_routers)
        return path

    # ------------------------------------------------------------------
    # Transport backend
    # ------------------------------------------------------------------
    def event_transport(self, parallel: int = 1) -> EventTransport:
        """The system's shared event-fabric executor (built on first use).

        One simulator and one fabric serve every event-backed channel of
        this system, so their packets -- and any registered cross-traffic
        -- contend on the same links and switches.

        ``parallel > 1`` builds the fabric partitioned per leaf router
        (:mod:`repro.sim.partition`): each partition gets its own
        simulator and the transport drives them through the
        conservative-lookahead barrier.  Transport callbacks live in
        this process, so the executor is the deterministic in-process
        one; process-parallel fan-out is available for spec-driven
        workloads via :func:`repro.sim.partition.run_partitioned`.
        The fabric shape is fixed on first use -- later calls must
        request the same ``parallel``.
        """
        if parallel < 1:
            raise ValueError(f"parallel must be positive, got {parallel}")
        wants_partitions = parallel > 1
        if self._event_transport is None:
            if wants_partitions:
                from repro.sim.partition import (
                    PartitionedEventFabric, build_partitioned_fabric)
                fabric = PartitionedEventFabric(build_partitioned_fabric(
                    self.config.fabric, self.topology,
                    scheduler=self.scheduler, sanitize=self.sanitize))
            else:
                fabric = self.build_event_fabric(
                    sim=Simulator(scheduler=self.scheduler,
                                  sanitize=self.sanitize))
            self._event_transport = EventTransport(fabric)
            self._event_transport_partitioned = wants_partitions
        elif wants_partitions and not self._event_transport_partitioned:
            # parallel=1 (the default internal callers use) accepts an
            # existing fabric of either shape; asking to partition an
            # already-built monolithic fabric cannot be honoured.
            raise ValueError(
                "event transport already built unpartitioned; request "
                "parallel before the first channel/transport use")
        return self._event_transport

    def channel_backend(self, src: int, dst: int,
                        path: FabricPath) -> TransportBackend:
        """Transport backend for a channel between two compute nodes."""
        if self.transport_backend == "event":
            return EventBackend(self.event_transport(), src=src, dst=dst,
                                path=path)
        return ClosedFormBackend(path)

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def crma_channel(self, recipient: int, donor: int,
                     placement: Optional[ChannelPlacement] = None,
                     through_router: bool = False,
                     path: Optional[FabricPath] = None) -> CrmaChannel:
        """CRMA channel from ``recipient`` towards ``donor``'s memory."""
        path = path or self.path_between(recipient, donor, placement, through_router)
        return CrmaChannel(config=self.config.crma, path=path,
                           donor_dram=self.node(donor).dram,
                           name=f"crma{recipient}->{donor}",
                           backend=self.channel_backend(recipient, donor, path))

    def rdma_channel(self, recipient: int, donor: int,
                     placement: Optional[ChannelPlacement] = None,
                     through_router: bool = False,
                     path: Optional[FabricPath] = None) -> RdmaChannel:
        """RDMA channel from ``recipient`` towards ``donor``'s memory."""
        path = path or self.path_between(recipient, donor, placement, through_router)
        return RdmaChannel(config=self.config.rdma, path=path,
                           donor_dram=self.node(donor).dram,
                           name=f"rdma{recipient}->{donor}",
                           backend=self.channel_backend(recipient, donor, path))

    def qpair_channel(self, local: int, remote: int,
                      placement: Optional[ChannelPlacement] = None,
                      through_router: bool = False,
                      path: Optional[FabricPath] = None) -> QPairChannel:
        """QPair channel between two nodes."""
        path = path or self.path_between(local, remote, placement, through_router)
        return QPairChannel(config=self.config.qpair, path=path,
                            name=f"qpair{local}<->{remote}",
                            backend=self.channel_backend(local, remote, path))

    # ------------------------------------------------------------------
    # Memory sharing front door
    # ------------------------------------------------------------------
    def request_remote_memory(self, requester: int, size_bytes: int,
                              channel_factory=None, donor: Optional[int] = None
                              ) -> Tuple[Allocation, RemoteMemoryGrant]:
        """Full Figure 2 flow: MN allocation + hot-remove/hot-plug + RAMT.

        ``channel_factory`` (donor id -> :class:`CrmaChannel`) lets
        callers such as the cluster matchmaker supply channels over their
        own paths; the donor is only known after the MN picks it.
        ``donor`` pins the MN's choice (the matchmaker's spill path).
        """
        allocation = self.monitor.request_memory(requester, size_bytes,
                                                 donor=donor)
        if channel_factory is not None:
            channel = channel_factory(allocation.donor)
        else:
            channel = self.crma_channel(recipient=requester, donor=allocation.donor)
        grant = share_memory(
            donor_map=self.node(allocation.donor).memory_map,
            recipient_map=self.node(requester).memory_map,
            size=size_bytes,
            channel=channel,
        )
        self.grants.append(grant)
        return allocation, grant

    def release_remote_memory(self, allocation: Allocation,
                              grant: RemoteMemoryGrant) -> None:
        """Tear down a sharing relationship and notify the runtime."""
        stop_sharing(grant, donor_map=self.node(grant.donor_node).memory_map,
                     recipient_map=self.node(grant.recipient_node).memory_map)
        self.monitor.release(allocation)
        self.grants.remove(grant)

    def remote_backend_for(self, grant: RemoteMemoryGrant) -> CrmaRemoteBackend:
        """Remote-memory backend serving a grant's hot-plugged region."""
        return CrmaRemoteBackend(grant.channel)

    def swap_device_between(self, recipient: int, donor: int) -> RdmaSwapDevice:
        """Remote memory on ``donor`` exposed as an RDMA-backed swap device."""
        return RdmaSwapDevice(self.rdma_channel(recipient, donor))

    # ------------------------------------------------------------------
    # Event-driven fabric (for contention/integration experiments)
    # ------------------------------------------------------------------
    def build_event_fabric(self, sim: Optional[Simulator] = None) -> EventFabric:
        """Instantiate switches, links and datalinks over the topology.

        Routing tables are programmed with dimension-order routes (falling
        back to shortest paths off-mesh).  Router nodes of star/fat-tree
        topologies get switches too, so packets relay through them; only
        compute nodes are routing destinations.  The local sink of every
        switch is left unconnected; callers attach their own packet
        consumers.
        """
        # Simulator defines __len__, so an idle simulator is falsy --
        # test for None, never truthiness.
        if sim is None:
            sim = Simulator(sanitize=self.sanitize)
        # Router nodes (star hubs, fat-tree leaves/spines) can have more
        # neighbours than the compute nodes' embedded radix-7 switch; give
        # every switch enough ports for its topology degree + local ejection.
        base_switch = self.config.fabric.switch
        switches: Dict[int, Switch] = {}
        for node_id in self.topology.nodes:
            degree = self.topology.graph.degree(node_id)
            if degree + 1 > base_switch.radix:
                switch_config = replace(base_switch, radix=degree + 1)
            else:
                switch_config = base_switch
            switches[node_id] = Switch(sim, node_id, switch_config)
        links: Dict[Tuple[int, int], PhysicalLink] = {}
        datalinks: Dict[Tuple[int, int], DataLink] = {}
        port_counters = {node_id: 1 for node_id in switches}  # port 0 = local
        for node_a, node_b in self.topology.links:
            for src, dst in ((node_a, node_b), (node_b, node_a)):
                link = PhysicalLink(sim, self.config.fabric.link,
                                    name=f"link{src}->{dst}")
                datalink = DataLink(sim, link, self.config.fabric.datalink,
                                    name=f"dl{src}->{dst}")
                datalink.connect(switches[dst].inject)
                links[(src, dst)] = link
                datalinks[(src, dst)] = datalink
                port = port_counters[src]
                port_counters[src] += 1
                switches[src].attach_output(port, datalink)
                # Program routes through this port for every destination
                # whose dimension-order path leaves ``src`` towards ``dst``.
                for destination in self.topology.compute_nodes:
                    if destination == src:
                        continue
                    route = dimension_order_route(self.topology, src, destination)
                    if len(route) > 1 and route[1] == dst:
                        switches[src].routing_table.install(destination, port)
        return EventFabric(sim=sim, switches=switches, links=links, datalinks=datalinks)
