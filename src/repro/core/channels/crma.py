"""CRMA: Cacheline Remote Memory Access channel.

The CRMA channel captures ordinary load/store cache misses whose
physical address falls in a RAMT window, packetises them, and services
them from the donor node's DRAM (Section 5.1.2).  Once a sharing
connection is set up, software accesses remote memory exactly as if it
were local -- the defining transparency property of Venice.

Two classes are provided:

* :class:`CrmaChannel` -- the channel itself: RAMT/TLTLB state plus the
  per-operation latency model over a :class:`FabricPath`.
* :class:`CrmaRemoteBackend` -- adapter implementing the
  :class:`~repro.cpu.hierarchy.RemoteMemoryBackend` protocol so a
  node's :class:`~repro.cpu.hierarchy.MemoryHierarchy` can route misses
  to hot-plugged regions through the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.address import AddressMappingError, RemoteAddressMappingTable, TransportTlb
from repro.core.channels.backend import (
    ClosedFormBackend,
    PendingOp,
    TransportBackend,
    TransportError,
)
from repro.core.channels.path import FabricPath
from repro.core.config import CrmaConfig
from repro.cpu.hierarchy import RemoteMemoryBackend
from repro.fabric.packet import PacketKind
from repro.mem.dram import Dram, DramConfig
from repro.sim.stats import StatsRegistry

#: Payload bytes of a CRMA read request / write acknowledgement packet
#: (address + metadata; the fabric adds its own header).
_REQUEST_PAYLOAD_BYTES = 8


class CrmaChannel:
    """Load/store remote-memory channel between a requester and a donor."""

    def __init__(self, config: Optional[CrmaConfig] = None,
                 path: Optional[FabricPath] = None,
                 donor_dram: Optional[Dram] = None,
                 name: str = "crma",
                 backend: Optional[TransportBackend] = None):
        self.config = config or CrmaConfig()
        self.path = path or FabricPath()
        self.backend = backend or ClosedFormBackend(self.path)
        self.donor_dram = donor_dram or Dram(DramConfig())
        self.name = name
        self.stats = StatsRegistry(name)
        self.ramt = RemoteAddressMappingTable(capacity=self.config.ramt_entries,
                                              name=f"{name}.ramt")
        self.tlb = TransportTlb(capacity=self.config.tltlb_entries)

    # ------------------------------------------------------------------
    # Mapping management (set up by the sharing layer / runtime)
    # ------------------------------------------------------------------
    def map_region(self, local_base: int, size: int, remote_node: int,
                   remote_base: int):
        """Install a RAMT window for a newly hot-plugged remote region."""
        entry = self.ramt.install(local_base=local_base, size=size,
                                  remote_node=remote_node, remote_base=remote_base)
        self.stats.counter("regions_mapped").increment()
        return entry

    def unmap_region(self, entry) -> None:
        """Invalidate a RAMT window (stop-sharing cleanup) and flush the TLB."""
        self.ramt.invalidate(entry)
        self.tlb.flush()
        self.stats.counter("regions_unmapped").increment()

    def translate(self, address: int) -> Tuple[int, int]:
        """Translate a captured local address to (donor node, donor address)."""
        entry = self.tlb.lookup(address)
        if entry is None:
            entry = self.ramt.lookup(address)
            if entry is None:
                raise AddressMappingError(
                    f"{self.name}: address {address:#x} not covered by any RAMT window"
                )
            self.tlb.fill(address, entry)
        return entry.translate(address)

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def read_latency_ns(self, size_bytes: int) -> int:
        """Latency of one remote cacheline fill of ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError("read size must be positive")
        self.stats.counter("reads").increment()
        self.stats.counter("read_bytes").increment(size_bytes)
        transport = self.backend.round_trip_ns(
            _REQUEST_PAYLOAD_BYTES, size_bytes,
            server_ns=self.donor_dram.access_latency_ns(size_bytes),
            request_kind=PacketKind.CRMA_READ,
            response_kind=PacketKind.CRMA_READ_RESP)
        return (self.config.request_processing_ns
                + transport
                + self.config.response_processing_ns)

    def submit_read(self, size_bytes: int,
                    deadline_ns: Optional[int] = None) -> PendingOp:
        """Submit one remote cacheline fill without driving the fabric.

        Event-backend only: the read's request packet is injected and a
        :class:`~repro.core.channels.backend.PendingOp` handle returned,
        so any number of requesters' reads can be driven together with
        :meth:`~repro.core.channels.backend.EventTransport.drive_all`
        and genuinely contend on shared links.  ``op.latency_ns`` then
        matches what :meth:`read_latency_ns` would have returned.
        ``deadline_ns`` bounds the transport time: past it the op fails
        with :class:`~repro.core.channels.backend.OpTimeoutError`
        instead of waiting forever on a faulted fabric.
        """
        if size_bytes <= 0:
            raise ValueError("read size must be positive")
        submit = getattr(self.backend, "submit_round_trip", None)
        if submit is None:
            raise TransportError(
                f"{self.name}: submitted (overlappable) reads require "
                "the event transport backend")
        self.stats.counter("reads").increment()
        self.stats.counter("read_bytes").increment(size_bytes)
        op = submit(_REQUEST_PAYLOAD_BYTES, size_bytes,
                    server_ns=self.donor_dram.access_latency_ns(size_bytes),
                    request_kind=PacketKind.CRMA_READ,
                    response_kind=PacketKind.CRMA_READ_RESP,
                    deadline_ns=deadline_ns)
        op.overhead_ns += (self.config.request_processing_ns
                           + self.config.response_processing_ns)
        return op

    def write_latency_ns(self, size_bytes: int) -> int:
        """Latency of one remote write (posted: retires once packetised)."""
        if size_bytes <= 0:
            raise ValueError("write size must be positive")
        self.stats.counter("writes").increment()
        self.stats.counter("write_bytes").increment(size_bytes)
        # The store retires when the packet has been accepted by the
        # channel: RAMT lookup + packetisation + link serialization.
        return (self.config.request_processing_ns
                + self.backend.posted_send_ns(size_bytes,
                                              packet_kind=PacketKind.CRMA_WRITE))

    def small_write_latency_ns(self, size_bytes: int) -> int:
        """End-to-end delivery latency of a small CRMA write.

        Used by the inter-channel collaboration mechanism: credit
        updates written through CRMA become visible at the receiver
        after one full one-way traversal.
        """
        if size_bytes <= 0:
            raise ValueError("write size must be positive")
        return (self.config.request_processing_ns
                + self.backend.one_way_ns(size_bytes,
                                          packet_kind=PacketKind.CRMA_WRITE)
                + self.donor_dram.config.access_latency_ns)


class CrmaRemoteBackend(RemoteMemoryBackend):
    """Adapter: serve a memory hierarchy's remote misses via CRMA."""

    def __init__(self, channel: CrmaChannel):
        self.channel = channel

    def remote_read_latency_ns(self, size_bytes: int) -> int:
        return self.channel.read_latency_ns(size_bytes)

    def remote_write_latency_ns(self, size_bytes: int) -> int:
        return self.channel.write_latency_ns(size_bytes)
