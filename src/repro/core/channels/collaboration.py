"""Inter-channel collaboration (Section 5.1.3).

Two mechanisms are modelled:

* :class:`AdaptiveChannelSelector` -- the adaptive communication
  library that picks a channel based on the communication demand
  (access pattern and granularity), so applications do not need to know
  which channel is most efficient.
* :class:`CreditFlowControlModel` -- the credit-packets-over-CRMA
  optimisation (Figure 9 / Figure 18): instead of returning QPair
  flow-control credits as QPair messages (which pay the full message
  overhead and therefore throttle the window), credits are written into
  a dedicated, overwriteable memory region through the CRMA channel,
  shortening the credit-return latency and raising effective QPair
  bandwidth.  Because packets of one logical flow may then arrive over
  two channels, sequence numbers are required for ordering -- the
  "lesson learned the hard way" the paper mentions.

Both mechanisms cost transport through the channels' configured
:class:`~repro.core.channels.backend.TransportBackend`: handed
event-backed channels, the credit model's message latencies, small
CRMA writes and per-message occupancies are measured on the shared
event fabric (including any contention) instead of computed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.channels.crma import CrmaChannel
from repro.core.channels.qpair import QPairChannel
from repro.core.channels.rdma import RdmaChannel


class ChannelChoice(enum.Enum):
    """Which transport channel the adaptive library selects."""

    CRMA = "crma"
    RDMA = "rdma"
    QPAIR = "qpair"


@dataclass
class AccessDemand:
    """Description of one communication demand presented to the library."""

    #: Bytes moved per operation.
    granularity_bytes: int
    #: True when the addresses are random / pointer-chasing rather than
    #: a contiguous block.
    random_access: bool = False
    #: True for explicit message passing between two software threads.
    message_passing: bool = False
    #: Total volume of the transfer (0 when unknown / open-ended).
    total_bytes: int = 0

    def __post_init__(self) -> None:
        if self.granularity_bytes <= 0:
            raise ValueError("granularity must be positive")
        if self.total_bytes < 0:
            raise ValueError("total volume must be non-negative")


class AdaptiveChannelSelector:
    """Pick the most efficient channel for a communication demand.

    The policy mirrors the paper's findings (Figure 17): CRMA is most
    efficient for random or fine-grained access, RDMA for large
    contiguous block movement, and QPair for message passing.
    """

    def __init__(self, fine_grain_threshold_bytes: int = 256,
                 bulk_threshold_bytes: int = 64 * 1024):
        if fine_grain_threshold_bytes <= 0 or bulk_threshold_bytes <= 0:
            raise ValueError("thresholds must be positive")
        if bulk_threshold_bytes < fine_grain_threshold_bytes:
            raise ValueError("bulk threshold must not be below the fine-grain threshold")
        self.fine_grain_threshold_bytes = fine_grain_threshold_bytes
        self.bulk_threshold_bytes = bulk_threshold_bytes

    def select(self, demand: AccessDemand) -> ChannelChoice:
        """Channel choice for ``demand``."""
        if demand.message_passing:
            return ChannelChoice.QPAIR
        if demand.random_access or demand.granularity_bytes <= self.fine_grain_threshold_bytes:
            return ChannelChoice.CRMA
        if (demand.granularity_bytes >= self.bulk_threshold_bytes
                or demand.total_bytes >= self.bulk_threshold_bytes):
            return ChannelChoice.RDMA
        # Mid-sized contiguous transfers: QPair's hardware queue
        # management moves them without CPU involvement.
        return ChannelChoice.QPAIR


class CreditFlowControlModel:
    """Effective QPair bandwidth under two credit-return schemes.

    ``qpair_credit_bandwidth`` returns credits as QPair messages (the
    traditional design); ``crma_credit_bandwidth`` returns them as small
    CRMA writes into an overwriteable credit region.  The improvement
    reported by :meth:`improvement_percent` is what Figure 18 plots
    against packet size.
    """

    #: Size of one credit-update packet, bytes.
    CREDIT_PACKET_BYTES = 8

    def __init__(self, qpair: QPairChannel, crma: CrmaChannel,
                 credits: Optional[int] = None,
                 credit_generation_ns: int = 900):
        if credit_generation_ns < 0:
            raise ValueError("credit generation cost must be non-negative")
        self.qpair = qpair
        self.crma = crma
        self.credits = credits if credits is not None else qpair.config.queue_depth
        if self.credits <= 0:
            raise ValueError("credit count must be positive")
        #: Receiver-side cost of producing a flow-control packet in the
        #: traditional design (the credit is assembled and queued behind
        #: data traffic on the shared QPair send path).  Credits written
        #: through CRMA are generated directly by the channel hardware
        #: into the overwriteable credit region and skip this step.
        self.credit_generation_ns = credit_generation_ns

    def qpair_credit_return_latency_ns(self) -> float:
        """Latency for a credit update sent back as a QPair message."""
        return (self.credit_generation_ns
                + self.qpair.message_latency_ns(self.CREDIT_PACKET_BYTES))

    def crma_credit_return_latency_ns(self) -> float:
        """Latency for a credit update written back through CRMA."""
        return self.crma.small_write_latency_ns(self.CREDIT_PACKET_BYTES)

    def qpair_credit_bandwidth_gbps(self, payload_bytes: int) -> float:
        return self.qpair.credit_limited_bandwidth_gbps(
            payload_bytes, self.qpair_credit_return_latency_ns(), self.credits)

    def crma_credit_bandwidth_gbps(self, payload_bytes: int) -> float:
        return self.qpair.credit_limited_bandwidth_gbps(
            payload_bytes, self.crma_credit_return_latency_ns(), self.credits)

    def improvement_percent(self, payload_bytes: int) -> float:
        """Bandwidth improvement (%) from returning credits over CRMA."""
        baseline = self.qpair_credit_bandwidth_gbps(payload_bytes)
        improved = self.crma_credit_bandwidth_gbps(payload_bytes)
        if baseline <= 0:
            return 0.0
        return (improved - baseline) / baseline * 100.0

    def sweep(self, payload_sizes) -> Dict[int, float]:
        """Improvement per payload size (the Figure 18 series)."""
        return {size: self.improvement_percent(size) for size in payload_sizes}
