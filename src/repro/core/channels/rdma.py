"""RDMA channel: software-initiated bulk DMA transfers.

Where CRMA serves individual cacheline requests, the RDMA channel moves
large memory regions: state machines and control registers divide the
region into chunks for packetisation (Section 5.1.2).  Its main uses in
the paper are remote memory as swap space (the high-performance virtual
block device of Section 5.2.1, with double-buffered descriptors) and
bulk data movement to remote accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.channels.backend import (
    ClosedFormBackend,
    PendingOp,
    TransportBackend,
    TransportError,
)
from repro.core.channels.path import FabricPath
from repro.core.config import RdmaConfig
from repro.fabric.packet import PacketKind
from repro.mem.dram import Dram, DramConfig
from repro.mem.swap import SwapDevice
from repro.sim.stats import StatsRegistry


class RdmaChannel:
    """Chunked, pipelined bulk transfers between two nodes."""

    def __init__(self, config: Optional[RdmaConfig] = None,
                 path: Optional[FabricPath] = None,
                 donor_dram: Optional[Dram] = None,
                 name: str = "rdma",
                 backend: Optional[TransportBackend] = None):
        self.config = config or RdmaConfig()
        self.path = path or FabricPath()
        self.backend = backend or ClosedFormBackend(self.path)
        self.donor_dram = donor_dram or Dram(DramConfig())
        self.name = name
        self.stats = StatsRegistry(name)

    def chunk_count(self, size_bytes: int) -> int:
        """Number of fabric packets needed for a transfer of ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError("transfer size must be positive")
        return -(-size_bytes // self.config.max_chunk_bytes)

    def transfer_latency_ns(self, size_bytes: int) -> int:
        """End-to-end latency of one DMA transfer of ``size_bytes``.

        The transfer pays the descriptor setup, then the chunks stream
        over the link.  With double buffering, successive chunks overlap
        the link with the donor's DRAM accesses, so the steady-state
        cost per chunk is the larger of the two; without it, chunk
        handling serialises.
        """
        chunks = self.chunk_count(size_bytes)
        chunk_bytes = min(size_bytes, self.config.max_chunk_bytes)
        last_chunk_bytes = size_bytes - (chunks - 1) * self.config.max_chunk_bytes

        stream_ns = self.backend.stream_ns(
            chunk_bytes=chunk_bytes,
            chunks=chunks,
            last_chunk_bytes=last_chunk_bytes,
            per_chunk_server_ns=self.donor_dram.dma_latency_ns(chunk_bytes),
            lanes=max(1, self.config.stripe_lanes),
            double_buffering=self.config.double_buffering,
            packet_kind=PacketKind.RDMA_CHUNK)
        total = (self.config.descriptor_setup_ns
                 + stream_ns
                 + self.config.completion_ns)
        self.stats.counter("transfers").increment()
        self.stats.counter("bytes").increment(size_bytes)
        return int(total)

    def submit_transfer(self, size_bytes: int,
                        deadline_ns: Optional[int] = None) -> PendingOp:
        """Submit one chunked DMA transfer without driving the fabric.

        Event-backend only; the chunks are offered to the fabric now and
        the returned handle resolves (under ``drive_all``) to the same
        latency :meth:`transfer_latency_ns` would have measured, letting
        bulk transfers from concurrent requesters share the wire.
        """
        submit = getattr(self.backend, "submit_stream", None)
        if submit is None:
            raise TransportError(
                f"{self.name}: submitted (overlappable) transfers "
                "require the event transport backend")
        chunks = self.chunk_count(size_bytes)
        chunk_bytes = min(size_bytes, self.config.max_chunk_bytes)
        last_chunk_bytes = size_bytes - (chunks - 1) * self.config.max_chunk_bytes
        self.stats.counter("transfers").increment()
        self.stats.counter("bytes").increment(size_bytes)
        op = submit(
            chunk_bytes=chunk_bytes,
            chunks=chunks,
            last_chunk_bytes=last_chunk_bytes,
            per_chunk_server_ns=self.donor_dram.dma_latency_ns(chunk_bytes),
            lanes=max(1, self.config.stripe_lanes),
            double_buffering=self.config.double_buffering,
            packet_kind=PacketKind.RDMA_CHUNK,
            deadline_ns=deadline_ns)
        op.overhead_ns += (self.config.descriptor_setup_ns
                           + self.config.completion_ns)
        return op

    def streaming_bandwidth_gbps(self, chunk_bytes: Optional[int] = None) -> float:
        """Sustained bandwidth of back-to-back chunked transfers."""
        chunk = chunk_bytes or self.config.max_chunk_bytes
        per_chunk_ns = self.path.packet_occupancy_ns(chunk) // max(1, self.config.stripe_lanes)
        if not self.config.double_buffering:
            per_chunk_ns += self.donor_dram.dma_latency_ns(chunk)
        else:
            per_chunk_ns = max(per_chunk_ns, self.donor_dram.dma_latency_ns(chunk))
        if per_chunk_ns <= 0:
            return 0.0
        return chunk * 8 / per_chunk_ns


class RdmaSwapDevice(SwapDevice):
    """Remote memory as swap space behind the Venice RDMA channel.

    This is the paper's high-performance virtual block device
    (Section 5.2.1): page-in and page-out are DMA transfers, and the
    double-buffered descriptor rings let the dirty-page writeback
    overlap the demand fetch.
    """

    name = "venice-rdma-swap"

    def __init__(self, channel: RdmaChannel, driver_overhead_ns: int = 3_000):
        if driver_overhead_ns < 0:
            raise ValueError("driver overhead must be non-negative")
        self.channel = channel
        self.driver_overhead_ns = driver_overhead_ns

    def read_page_latency_ns(self, page_bytes: int) -> int:
        return self.driver_overhead_ns + self.channel.transfer_latency_ns(page_bytes)

    def write_page_latency_ns(self, page_bytes: int) -> int:
        return self.driver_overhead_ns + self.channel.transfer_latency_ns(page_bytes)

    def supports_write_overlap(self) -> bool:
        return self.channel.config.double_buffering
