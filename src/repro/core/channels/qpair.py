"""QPair channel: user-level send/receive queue pairs.

The QPair channel is a bidirectional channel between two communicating
threads: data written into the local send queue is delivered to the
counterpart's receive queue (Section 5.1.2).  The well-defined queue
management maps to hardware state machines, freeing the CPU and moving
large blocks efficiently; it is the natural carrier for socket-style
message passing (and for the IP-over-QPair remote-NIC path).

For the Figure 5/6 latency study the QPair channel is also used as a
*remote memory access* mechanism: software explicitly sends a request
message and waits for the reply carrying the data, which is how the
legacy (off-chip, InfiniBand-style) and on-chip QPair configurations
access the donor's memory.  :class:`QPairRemoteMemoryBackend` provides
that mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.channels.backend import (
    ClosedFormBackend,
    PendingOp,
    TransportBackend,
    TransportError,
)
from repro.core.channels.path import FabricPath
from repro.core.config import QPairConfig
from repro.cpu.hierarchy import RemoteMemoryBackend
from repro.fabric.packet import PacketKind
from repro.mem.dram import Dram, DramConfig
from repro.sim.stats import StatsRegistry


class QPairChannel:
    """Queue-pair messaging between two endpoints."""

    def __init__(self, config: Optional[QPairConfig] = None,
                 path: Optional[FabricPath] = None,
                 name: str = "qpair",
                 backend: Optional[TransportBackend] = None):
        self.config = config or QPairConfig()
        self.path = path or FabricPath()
        self.backend = backend or ClosedFormBackend(self.path)
        self.name = name
        self.stats = StatsRegistry(name)

    # ------------------------------------------------------------------
    # One-way message latency
    # ------------------------------------------------------------------
    def send_overhead_ns(self) -> int:
        """Sender-side cost: user-level post + hardware queue processing."""
        return self.config.post_send_ns + self.config.queue_processing_ns

    def receive_overhead_ns(self) -> int:
        """Receiver-side cost: hardware queue processing + completion."""
        return self.config.queue_processing_ns + self.config.completion_ns

    def message_latency_ns(self, payload_bytes: int) -> int:
        """End-to-end latency of one message of ``payload_bytes``."""
        if payload_bytes <= 0:
            raise ValueError("message size must be positive")
        self.stats.counter("messages").increment()
        self.stats.counter("bytes").increment(payload_bytes)
        return (self.send_overhead_ns()
                + self.backend.one_way_ns(payload_bytes,
                                          packet_kind=PacketKind.QPAIR_DATA)
                + self.receive_overhead_ns())

    def round_trip_latency_ns(self, request_bytes: int, response_bytes: int,
                              remote_handler_ns: int = 0) -> int:
        """Request/response latency including an optional remote handler.

        Executed as one transport round trip (request and response both
        cross the fabric; the donor-side turnaround -- receive
        completion, handler, reply post -- is the server time), so the
        event backend measures a genuine request/response exchange
        rather than two unrelated one-way deliveries.
        """
        if request_bytes <= 0 or response_bytes <= 0:
            raise ValueError("message size must be positive")
        self.stats.counter("messages").increment(2)
        self.stats.counter("bytes").increment(request_bytes + response_bytes)
        server_ns = (self.receive_overhead_ns() + remote_handler_ns
                     + self.send_overhead_ns())
        transport = self.backend.round_trip_ns(
            request_bytes, response_bytes, server_ns=server_ns,
            request_kind=PacketKind.QPAIR_DATA,
            response_kind=PacketKind.QPAIR_ACK)
        return (self.send_overhead_ns() + transport
                + self.receive_overhead_ns())

    def submit_message(self, payload_bytes: int,
                       deadline_ns: Optional[int] = None) -> PendingOp:
        """Submit one one-way message without driving the fabric.

        Event-backend only; the counterpart of :meth:`message_latency_ns`
        for overlapped (submit + ``drive_all``) operation.
        """
        if payload_bytes <= 0:
            raise ValueError("message size must be positive")
        submit = getattr(self.backend, "submit_one_way", None)
        if submit is None:
            raise TransportError(
                f"{self.name}: submitted (overlappable) messages "
                "require the event transport backend")
        self.stats.counter("messages").increment()
        self.stats.counter("bytes").increment(payload_bytes)
        op = submit(payload_bytes, packet_kind=PacketKind.QPAIR_DATA,
                    deadline_ns=deadline_ns)
        op.overhead_ns += self.send_overhead_ns() + self.receive_overhead_ns()
        return op

    def submit_round_trip(self, request_bytes: int, response_bytes: int,
                          remote_handler_ns: int = 0,
                          deadline_ns: Optional[int] = None) -> PendingOp:
        """Submit one request/response exchange without driving the fabric.

        Event-backend only; the returned handle resolves (under
        ``drive_all``) to the same latency
        :meth:`round_trip_latency_ns` would have measured, but any
        number of submitted exchanges from concurrent requesters
        overlap on the shared fabric instead of serializing.
        """
        if request_bytes <= 0 or response_bytes <= 0:
            raise ValueError("message size must be positive")
        submit = getattr(self.backend, "submit_round_trip", None)
        if submit is None:
            raise TransportError(
                f"{self.name}: submitted (overlappable) round trips "
                "require the event transport backend")
        self.stats.counter("messages").increment(2)
        self.stats.counter("bytes").increment(request_bytes + response_bytes)
        server_ns = (self.receive_overhead_ns() + remote_handler_ns
                     + self.send_overhead_ns())
        op = submit(request_bytes, response_bytes, server_ns=server_ns,
                    request_kind=PacketKind.QPAIR_DATA,
                    response_kind=PacketKind.QPAIR_ACK,
                    deadline_ns=deadline_ns)
        op.overhead_ns += self.send_overhead_ns() + self.receive_overhead_ns()
        return op

    # ------------------------------------------------------------------
    # Streaming throughput
    # ------------------------------------------------------------------
    def occupancy_ns(self, payload_bytes: int) -> int:
        """Transport occupancy of one message (backend-measured spacing)."""
        return self.backend.occupancy_ns(payload_bytes,
                                         packet_kind=PacketKind.QPAIR_DATA)

    def per_message_occupancy_ns(self, payload_bytes: int) -> float:
        """Minimum spacing between back-to-back messages on this channel."""
        return max(self.occupancy_ns(payload_bytes),
                   self.config.queue_processing_ns,
                   self.config.post_send_ns)

    def streaming_bandwidth_gbps(self, payload_bytes: int,
                                 extra_per_message_ns: float = 0.0) -> float:
        """Sustained goodput for a pipelined message stream."""
        per_message = self.per_message_occupancy_ns(payload_bytes) + extra_per_message_ns
        if per_message <= 0:
            return 0.0
        return payload_bytes * 8 / per_message

    def credit_limited_bandwidth_gbps(self, payload_bytes: int,
                                      credit_return_latency_ns: float,
                                      credits: Optional[int] = None) -> float:
        """Goodput when the sender is limited by credit returns.

        The sender may have at most ``credits`` messages outstanding;
        each credit comes back ``credit_return_latency_ns`` after its
        message is delivered.  Effective bandwidth is therefore the
        smaller of the raw pipelined bandwidth and the window limit
        ``credits * payload / round_trip`` -- the quantity Figure 18
        improves by returning credits over CRMA instead of QPair.
        """
        window = credits if credits is not None else self.config.queue_depth
        if window <= 0:
            raise ValueError("credit window must be positive")
        round_trip_ns = (self.per_message_occupancy_ns(payload_bytes)
                         + self.backend.one_way_ns(
                             payload_bytes, packet_kind=PacketKind.QPAIR_DATA)
                         + credit_return_latency_ns)
        window_gbps = window * payload_bytes * 8 / round_trip_ns
        return min(self.streaming_bandwidth_gbps(payload_bytes), window_gbps)


class QPairRemoteMemoryBackend(RemoteMemoryBackend):
    """Remote memory reached by explicit QPair request/response messages.

    Every cacheline-sized access becomes a software-visible message
    exchange: the requester posts a request, a handler on the donor
    reads its local DRAM and posts the reply.  This is the baseline the
    Figure 5 experiment contrasts with CRMA's transparent hardware path.
    """

    #: Payload of a remote-read request message (address + length).
    REQUEST_BYTES = 16

    def __init__(self, channel: QPairChannel,
                 donor_dram: Optional[Dram] = None,
                 remote_handler_ns: int = 14_000,
                 requester_software_ns: int = 1_000):
        if remote_handler_ns < 0 or requester_software_ns < 0:
            raise ValueError("software costs must be non-negative")
        self.channel = channel
        self.donor_dram = donor_dram or Dram(DramConfig())
        #: Donor-side software: receive completion, parse the request,
        #: read local memory, post the reply (a few thousand instructions
        #: on the prototype's 667 MHz core).
        self.remote_handler_ns = remote_handler_ns
        #: Requester-side software beyond the bare post/poll primitives:
        #: building the request, matching the reply to the waiting query.
        self.requester_software_ns = requester_software_ns

    def remote_read_latency_ns(self, size_bytes: int) -> int:
        service_ns = self.remote_handler_ns + self.donor_dram.access_latency_ns(size_bytes)
        return (self.requester_software_ns
                + self.channel.round_trip_latency_ns(
                    self.REQUEST_BYTES, size_bytes, remote_handler_ns=service_ns))

    def remote_write_latency_ns(self, size_bytes: int) -> int:
        # The write payload is carried in the request; the sender
        # considers it complete once posted (no synchronous ack wait).
        return self.requester_software_ns + self.channel.message_latency_ns(size_bytes)
