"""Transport backends: how a channel operation turns into latency.

Every transport channel (CRMA, RDMA, QPair) describes its operations in
terms of five primitive *transport ops* -- one-way delivery, a
request/response round trip, a posted (fire-and-forget) send, link
occupancy, and a chunked stream.  A :class:`TransportBackend` decides
how those ops are costed:

* :class:`ClosedFormBackend` answers from the channel's
  :class:`~repro.core.channels.path.FabricPath` closed forms -- exactly
  the latencies the seed experiments and the cluster sweeps (through
  :class:`~repro.core.channels.path.CachedFabricPath` and the shared
  :class:`~repro.cluster.latency_cache.ClusterLatencyCache`) have always
  used.  It models an *uncontended* fabric by construction.
* :class:`EventBackend` executes each op as real credit-flow-controlled
  packets over the event-driven fabric (PHY + datalink + switch stacks)
  and returns *measured* simulated time.  Several channels of one
  system share a single :class:`EventTransport` -- one
  :class:`~repro.sim.engine.Simulator` and one fabric -- so their
  packets contend with each other and with any
  :class:`CrossTrafficDriver` background flows on the same links.

The split mirrors the modelled-cost versus executed-task distinction of
HPX-style runtimes: the same channel API answers either from a formula
or from execution, and contention-sensitive experiments pick per run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.packet import Packet, PacketKind

#: Simulated time driven per scheduling slice while background traffic
#: keeps the event queue non-empty (see :meth:`EventTransport.drive`).
#: Sized to a few uncontended round trips: a slice much larger than one
#: op would burn wall clock simulating background flows long past the
#: op's completion; much smaller wastes slice-polling overhead.
_TIME_SLICE_NS = 5_000


class TransportError(RuntimeError):
    """Raised when an event-backend operation cannot complete."""


class TransportBackend:
    """Costing strategy for the primitive transport operations.

    ``kind`` is ``"closed_form"`` or ``"event"``; channels and
    experiments branch on behaviour only through these five ops, never
    on the kind itself.
    """

    kind = "abstract"

    def one_way_ns(self, payload_bytes: int,
                   packet_kind: PacketKind = PacketKind.QPAIR_DATA) -> int:
        """Latency of delivering one packet of ``payload_bytes``."""
        raise NotImplementedError

    def round_trip_ns(self, request_bytes: int, response_bytes: int,
                      server_ns: int = 0,
                      request_kind: PacketKind = PacketKind.CRMA_READ,
                      response_kind: PacketKind = PacketKind.CRMA_READ_RESP) -> int:
        """Request/response latency with ``server_ns`` of donor-side service."""
        raise NotImplementedError

    def posted_send_ns(self, payload_bytes: int,
                       packet_kind: PacketKind = PacketKind.CRMA_WRITE) -> int:
        """Local acceptance cost of a posted (fire-and-forget) packet."""
        raise NotImplementedError

    def occupancy_ns(self, payload_bytes: int,
                     packet_kind: PacketKind = PacketKind.QPAIR_DATA) -> int:
        """Minimum spacing between back-to-back packets on the route."""
        raise NotImplementedError

    def stream_ns(self, chunk_bytes: int, chunks: int, last_chunk_bytes: int,
                  per_chunk_server_ns: int, lanes: int = 1,
                  double_buffering: bool = True,
                  packet_kind: PacketKind = PacketKind.RDMA_CHUNK) -> int:
        """Latency of a chunked bulk transfer (RDMA-style pipeline)."""
        raise NotImplementedError


class ClosedFormBackend(TransportBackend):
    """Answer every transport op from the fabric path's closed forms.

    This backend reproduces the pre-refactor channel arithmetic exactly,
    including memoization: when the path is a
    :class:`~repro.core.channels.path.CachedFabricPath` its latency
    queries keep flowing through the shared cluster cache.
    """

    kind = "closed_form"

    def __init__(self, path):
        self.path = path

    def one_way_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.path.one_way_latency_ns(payload_bytes)

    def round_trip_ns(self, request_bytes, response_bytes, server_ns=0,
                      request_kind=PacketKind.CRMA_READ,
                      response_kind=PacketKind.CRMA_READ_RESP):
        return (self.path.one_way_latency_ns(request_bytes)
                + server_ns
                + self.path.one_way_latency_ns(response_bytes))

    def posted_send_ns(self, payload_bytes, packet_kind=PacketKind.CRMA_WRITE):
        # A posted operation retires once packetised and clocked onto the
        # link; off-chip interface logic is still crossed at both ends.
        return (self.path.serialization_ns(payload_bytes)
                + 2 * self.path.endpoint_overhead_ns)

    def occupancy_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.path.packet_occupancy_ns(payload_bytes)

    def stream_ns(self, chunk_bytes, chunks, last_chunk_bytes,
                  per_chunk_server_ns, lanes=1, double_buffering=True,
                  packet_kind=PacketKind.RDMA_CHUNK):
        lanes = max(1, lanes)
        link_ns = self.path.packet_occupancy_ns(chunk_bytes) // lanes
        first_chunk_ns = (self.path.one_way_latency_ns(chunk_bytes)
                          + per_chunk_server_ns)
        if double_buffering:
            steady_state_ns = max(link_ns, per_chunk_server_ns)
        else:
            steady_state_ns = link_ns + per_chunk_server_ns
        remaining = max(0, chunks - 1)
        total = first_chunk_ns + remaining * steady_state_ns
        # The final (possibly short) chunk only occupies the link for its
        # own size; without double buffering the last steady-state step
        # shrinks accordingly.
        if remaining and last_chunk_bytes < chunk_bytes and not double_buffering:
            total -= (self.path.packet_occupancy_ns(chunk_bytes)
                      - self.path.packet_occupancy_ns(last_chunk_bytes))
        return total


class _PendingOp:
    """Completion flag + measured result of one in-flight transport op."""

    __slots__ = ("done", "result_ns")

    def __init__(self):
        self.done = False
        self.result_ns = 0

    def complete(self, result_ns: int) -> None:
        self.done = True
        self.result_ns = result_ns


class EventTransport:
    """Shared event-fabric executor: one per system.

    Owns the local-ejection sink of every switch and dispatches
    deliveries to per-packet handlers, so any number of channels (and
    background traffic drivers) multiplex over one simulator without
    stealing each other's packets.  Operations run *synchronously*: the
    caller's op drives the simulator forward until its completion
    handler fires, interleaving with whatever other traffic is in
    flight.
    """

    def __init__(self, fabric, time_slice_ns: int = _TIME_SLICE_NS):
        self.fabric = fabric
        self.sim = fabric.sim
        self.time_slice_ns = time_slice_ns
        #: Deliveries routed per packet id; unmatched packets fall through
        #: to ``unmatched`` (counted, not fatal -- e.g. stray replays).
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        #: Live background sources (cross-traffic drivers).  While any
        #: are active the event queue never drains, so ops are driven in
        #: bounded time slices instead of to idleness.
        self._background = 0
        self.unmatched = 0
        self.ops_completed = 0
        for switch in fabric.switches.values():
            switch.attach_local_sink(self._deliver)

    # ------------------------------------------------------------------
    # Packet plumbing
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet) -> None:
        handler = self._handlers.pop(packet.packet_id, None)
        if handler is not None:
            handler(packet)
        else:
            self.unmatched += 1

    def expect(self, packet: Packet, handler: Callable[[Packet], None]) -> None:
        """Register the delivery handler for ``packet``."""
        self._handlers[packet.packet_id] = handler

    def inject(self, packet: Packet) -> None:
        """Hand a packet to its source node's switch."""
        self.fabric.switches[packet.src].inject(packet)

    def add_background_source(self) -> None:
        self._background += 1

    def remove_background_source(self) -> None:
        if self._background <= 0:
            raise TransportError("no background source registered")
        self._background -= 1

    @property
    def contended(self) -> bool:
        """True while background traffic keeps the fabric loaded."""
        return self._background > 0

    # ------------------------------------------------------------------
    # Synchronous op driving
    # ------------------------------------------------------------------
    def drive(self, op: _PendingOp) -> int:
        """Advance the shared simulator until ``op`` completes.

        Without background traffic the queue drains once the op (and any
        piggybacking posted packets) finish, so one ``run_until_idle``
        suffices.  With background traffic the queue normally never
        empties; the op is driven in fixed simulated-time slices so
        control returns between slices to detect completion.  Slices
        that dispatch nothing are fine -- ``run(until=...)`` still
        advances the clock towards far-future timers (long server
        turnarounds, slow noise relaunches) -- so the only true stall is
        an *empty* queue with the op incomplete: its packet was lost.
        """
        sim = self.sim
        while not op.done:
            if self._background == 0:
                sim.run_until_idle()
                if not op.done:
                    raise TransportError(
                        "event fabric drained without completing the "
                        "transport op (packet lost or sink detached)")
            else:
                sim.run(until=sim.now + self.time_slice_ns)
                if not op.done and len(sim) == 0:
                    raise TransportError(
                        "event fabric drained without completing the "
                        "transport op (packet lost or sink detached) "
                        "while background traffic was registered")
        self.ops_completed += 1
        return op.result_ns

    # ------------------------------------------------------------------
    # Measured primitive ops
    # ------------------------------------------------------------------
    def measure_one_way(self, src: int, dst: int, payload_bytes: int,
                        packet_kind: PacketKind) -> int:
        op = _PendingOp()
        start = self.sim.now
        packet = Packet(src=src, dst=dst, kind=packet_kind,
                        payload_bytes=payload_bytes, created_at=start)
        self.expect(packet,
                    lambda _p: op.complete(self.sim.now - start))
        self.inject(packet)
        return self.drive(op)

    def measure_round_trip(self, src: int, dst: int, request_bytes: int,
                           response_bytes: int, server_ns: int,
                           request_kind: PacketKind,
                           response_kind: PacketKind) -> int:
        op = _PendingOp()
        start = self.sim.now
        request = Packet(src=src, dst=dst, kind=request_kind,
                         payload_bytes=request_bytes, created_at=start)

        def on_response(_packet: Packet) -> None:
            op.complete(self.sim.now - start)

        def send_response(_value=None) -> None:
            response = Packet(src=dst, dst=src, kind=response_kind,
                              payload_bytes=response_bytes,
                              payload=request.packet_id)
            self.expect(response, on_response)
            self.inject(response)

        def on_request(_packet: Packet) -> None:
            # Donor-side service (e.g. the DRAM access) delays the reply.
            if server_ns > 0:
                self.sim.call_after(server_ns, send_response)
            else:
                send_response()

        self.expect(request, on_request)
        self.inject(request)
        return self.drive(op)

    def measure_occupancy(self, src: int, dst: int, payload_bytes: int,
                          packet_kind: PacketKind) -> int:
        """Delivery spacing of two back-to-back packets (pipelined cost)."""
        op = _PendingOp()
        arrivals: List[int] = []

        def on_delivery(_packet: Packet) -> None:
            arrivals.append(self.sim.now)
            if len(arrivals) == 2:
                op.complete(arrivals[1] - arrivals[0])

        for _ in range(2):
            packet = Packet(src=src, dst=dst, kind=packet_kind,
                            payload_bytes=payload_bytes)
            self.expect(packet, on_delivery)
            self.inject(packet)
        return self.drive(op)

    def measure_stream(self, src: int, dst: int, chunk_sizes: Sequence[int],
                       per_chunk_server_ns: int,
                       packet_kind: PacketKind) -> int:
        """Makespan of a chunked transfer: inject-all, credit-paced.

        All chunks are offered to the fabric at once; the datalink
        credit machinery paces them onto the wire.  Each delivered chunk
        starts its donor-side service (DMA into the donor's DRAM); the
        op completes when the last service finishes, so services overlap
        the link exactly as double-buffered descriptors do.
        """
        op = _PendingOp()
        start = self.sim.now
        remaining = len(chunk_sizes)
        if remaining == 0:
            return 0

        def service_done(_value=None) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                op.complete(self.sim.now - start)

        def on_chunk(_packet: Packet) -> None:
            if per_chunk_server_ns > 0:
                self.sim.call_after(per_chunk_server_ns, service_done)
            else:
                service_done()

        for size in chunk_sizes:
            chunk = Packet(src=src, dst=dst, kind=packet_kind,
                           payload_bytes=size, created_at=start)
            self.expect(chunk, on_chunk)
            self.inject(chunk)
        return self.drive(op)

    def post(self, src: int, dst: int, payload_bytes: int,
             packet_kind: PacketKind) -> None:
        """Inject a fire-and-forget packet (load-bearing, not awaited)."""
        packet = Packet(src=src, dst=dst, kind=packet_kind,
                        payload_bytes=payload_bytes, created_at=self.sim.now)
        # No handler: delivery falls through to the unmatched counter.
        self.inject(packet)


class EventBackend(TransportBackend):
    """Execute transport ops as packets between two fabric endpoints.

    One instance per channel (it knows the channel's src/dst node pair
    and fabric path); the heavy state -- simulator, fabric, delivery
    dispatch -- lives in the shared :class:`EventTransport`.

    Modelling notes: the event fabric is single-lane per direction, so
    ``stream_ns`` ignores lane striping and always overlaps donor-side
    services with the link (the double-buffered pipeline); and a posted
    send is charged its closed-form local acceptance cost while the
    packet itself still crosses -- and loads -- the fabric.
    """

    kind = "event"

    def __init__(self, transport: EventTransport, src: int, dst: int, path):
        self.transport = transport
        self.src = src
        self.dst = dst
        self.path = path
        #: Local (non-transport) costs share the closed-form source of
        #: truth, so the two backends can never drift apart on them.
        self._closed_form = ClosedFormBackend(path)

    def one_way_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.transport.measure_one_way(self.src, self.dst,
                                              payload_bytes, packet_kind)

    def round_trip_ns(self, request_bytes, response_bytes, server_ns=0,
                      request_kind=PacketKind.CRMA_READ,
                      response_kind=PacketKind.CRMA_READ_RESP):
        return self.transport.measure_round_trip(
            self.src, self.dst, request_bytes, response_bytes, server_ns,
            request_kind, response_kind)

    def posted_send_ns(self, payload_bytes, packet_kind=PacketKind.CRMA_WRITE):
        self.transport.post(self.src, self.dst, payload_bytes, packet_kind)
        return self._closed_form.posted_send_ns(payload_bytes, packet_kind)

    def occupancy_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.transport.measure_occupancy(self.src, self.dst,
                                                payload_bytes, packet_kind)

    def stream_ns(self, chunk_bytes, chunks, last_chunk_bytes,
                  per_chunk_server_ns, lanes=1, double_buffering=True,
                  packet_kind=PacketKind.RDMA_CHUNK):
        # The event fabric is single-lane and always overlaps donor-side
        # services with the link.  Silently measuring a differently
        # configured stream would report model mismatch as if it were
        # queueing delay, so unsupported knobs are rejected loudly (the
        # same pattern as the platform's off-chip/router guards).
        if lanes > 1:
            raise ValueError(
                "the event fabric is single-lane per direction; "
                "lane-striped streams are a closed-form knob")
        if not double_buffering:
            raise ValueError(
                "the event fabric always pipelines chunk services "
                "(double buffering); serialised streams are a "
                "closed-form knob")
        sizes = [chunk_bytes] * max(0, chunks - 1) + [last_chunk_bytes]
        return self.transport.measure_stream(self.src, self.dst, sizes,
                                             per_chunk_server_ns, packet_kind)


class CrossTrafficDriver:
    """Closed-loop background flows keeping a shared fabric loaded.

    Each ``(src, dst)`` flow keeps ``window`` packets circulating: a
    delivered packet re-injects its successor after ``turnaround_ns``.
    Because the flows only advance while transport ops drive the shared
    simulator, the background load is deterministic and exactly
    contemporaneous with the measured operations -- the event-backend
    equivalent of the open-loop noise waves the contention sweeps use.
    """

    def __init__(self, transport: EventTransport,
                 flows: Sequence[Tuple[int, int]], payload_bytes: int = 256,
                 window: int = 4, turnaround_ns: int = 200,
                 packet_kind: PacketKind = PacketKind.RDMA_CHUNK):
        if window < 1:
            raise ValueError("each cross-traffic flow needs a window >= 1")
        if turnaround_ns < 0:
            raise ValueError("turnaround must be non-negative")
        self.transport = transport
        self.flows = list(flows)
        self.payload_bytes = payload_bytes
        self.window = window
        self.turnaround_ns = turnaround_ns
        self.packet_kind = packet_kind
        self.packets_sent = 0
        self.active = False
        #: Circulating packets per flow; start() only tops flows up to
        #: ``window``, so stop()/start() cycles cannot inflate the load
        #: beyond the configured depth.
        self._in_flight: Dict[Tuple[int, int], int] = {
            flow: 0 for flow in self.flows}
        if self.flows:
            self.start()

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        self.transport.add_background_source()
        for src, dst in self.flows:
            for _ in range(self.window - self._in_flight[(src, dst)]):
                self._launch(src, dst)

    def stop(self) -> None:
        """Stop re-injecting; in-flight packets drain on the next ops."""
        if not self.active:
            return
        self.active = False
        self.transport.remove_background_source()

    def _launch(self, src: int, dst: int) -> None:
        packet = Packet(src=src, dst=dst, kind=self.packet_kind,
                        payload_bytes=self.payload_bytes,
                        created_at=self.transport.sim.now)
        self.packets_sent += 1
        self._in_flight[(src, dst)] += 1
        self.transport.expect(packet, self._relaunch)
        self.transport.inject(packet)

    def _relaunch(self, packet: Packet) -> None:
        self._in_flight[(packet.src, packet.dst)] -= 1
        if not self.active:
            return
        sim = self.transport.sim
        if self.turnaround_ns > 0:
            sim.call_after(self.turnaround_ns, self._relaunch_now, packet)
        else:
            self._relaunch_now(packet)

    def _relaunch_now(self, packet: Packet) -> None:
        if self.active:
            self._launch(packet.src, packet.dst)
