"""Transport backends: how a channel operation turns into latency.

Every transport channel (CRMA, RDMA, QPair) describes its operations in
terms of five primitive *transport ops* -- one-way delivery, a
request/response round trip, a posted (fire-and-forget) send, link
occupancy, and a chunked stream.  A :class:`TransportBackend` decides
how those ops are costed:

* :class:`ClosedFormBackend` answers from the channel's
  :class:`~repro.core.channels.path.FabricPath` closed forms -- exactly
  the latencies the seed experiments and the cluster sweeps (through
  :class:`~repro.core.channels.path.CachedFabricPath` and the shared
  :class:`~repro.cluster.latency_cache.ClusterLatencyCache`) have always
  used.  It models an *uncontended* fabric by construction.
* :class:`EventBackend` executes each op as real credit-flow-controlled
  packets over the event-driven fabric (PHY + datalink + switch stacks)
  and returns *measured* simulated time.  Several channels of one
  system share a single :class:`EventTransport` -- one
  :class:`~repro.sim.engine.Simulator` and one fabric -- so their
  packets contend with each other and with any
  :class:`CrossTrafficDriver` background flows on the same links.

The split mirrors the modelled-cost versus executed-task distinction of
HPX-style runtimes: the same channel API answers either from a formula
or from execution, and contention-sensitive experiments pick per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.packet import Packet, PacketKind
from repro.sim.engine import SanitizerError

#: Simulated time driven per scheduling slice while background traffic
#: keeps the event queue non-empty (see :meth:`EventTransport.drive`).
#: Sized to a few uncontended round trips: a slice much larger than one
#: op would burn wall clock simulating background flows long past the
#: op's completion; much smaller wastes slice-polling overhead.
_TIME_SLICE_NS = 5_000


class TransportError(RuntimeError):
    """Raised when an event-backend operation cannot complete."""


class OpTimeoutError(TransportError):
    """A transport op missed its per-op deadline.

    Raised by :attr:`PendingOp.latency_ns` (and ``drive_until``) after
    the deadline timer fired: the op's expect handlers were cancelled,
    its packets written off as ``timed_out``, and the handle resolved
    as failed.  Typed separately from :class:`TransportError` so churn
    experiments can distinguish a deadline miss (retryable) from a
    structural failure (lost packet on a drained fabric).
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff resubmit policy for timed-out ops.

    Attempt ``k`` (1-based) that times out is relaunched after
    ``backoff_ns * multiplier**(k-1)`` of simulated time, up to
    ``max_attempts`` total submissions; the outer op then fails with
    the last attempt's :class:`OpTimeoutError`.
    """

    max_attempts: int = 3
    backoff_ns: int = 50_000
    multiplier: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.backoff_ns < 0:
            raise ValueError("backoff must be non-negative")
        if self.multiplier < 1:
            raise ValueError("backoff multiplier must be at least 1")

    def backoff_for(self, attempt: int) -> int:
        """Backoff before relaunching after failed attempt ``attempt``."""
        return self.backoff_ns * self.multiplier ** (attempt - 1)


class TransportBackend:
    """Costing strategy for the primitive transport operations.

    ``kind`` is ``"closed_form"`` or ``"event"``; channels and
    experiments branch on behaviour only through these five ops, never
    on the kind itself.
    """

    kind = "abstract"

    def one_way_ns(self, payload_bytes: int,
                   packet_kind: PacketKind = PacketKind.QPAIR_DATA) -> int:
        """Latency of delivering one packet of ``payload_bytes``."""
        raise NotImplementedError

    def round_trip_ns(self, request_bytes: int, response_bytes: int,
                      server_ns: int = 0,
                      request_kind: PacketKind = PacketKind.CRMA_READ,
                      response_kind: PacketKind = PacketKind.CRMA_READ_RESP) -> int:
        """Request/response latency with ``server_ns`` of donor-side service."""
        raise NotImplementedError

    def posted_send_ns(self, payload_bytes: int,
                       packet_kind: PacketKind = PacketKind.CRMA_WRITE) -> int:
        """Local acceptance cost of a posted (fire-and-forget) packet."""
        raise NotImplementedError

    def occupancy_ns(self, payload_bytes: int,
                     packet_kind: PacketKind = PacketKind.QPAIR_DATA) -> int:
        """Minimum spacing between back-to-back packets on the route."""
        raise NotImplementedError

    def stream_ns(self, chunk_bytes: int, chunks: int, last_chunk_bytes: int,
                  per_chunk_server_ns: int, lanes: int = 1,
                  double_buffering: bool = True,
                  packet_kind: PacketKind = PacketKind.RDMA_CHUNK) -> int:
        """Latency of a chunked bulk transfer (RDMA-style pipeline)."""
        raise NotImplementedError


class ClosedFormBackend(TransportBackend):
    """Answer every transport op from the fabric path's closed forms.

    This backend reproduces the pre-refactor channel arithmetic exactly,
    including memoization: when the path is a
    :class:`~repro.core.channels.path.CachedFabricPath` its latency
    queries keep flowing through the shared cluster cache.
    """

    kind = "closed_form"

    def __init__(self, path):
        self.path = path

    def one_way_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.path.one_way_latency_ns(payload_bytes)

    def round_trip_ns(self, request_bytes, response_bytes, server_ns=0,
                      request_kind=PacketKind.CRMA_READ,
                      response_kind=PacketKind.CRMA_READ_RESP):
        return (self.path.one_way_latency_ns(request_bytes)
                + server_ns
                + self.path.one_way_latency_ns(response_bytes))

    def posted_send_ns(self, payload_bytes, packet_kind=PacketKind.CRMA_WRITE):
        # A posted operation retires once packetised and clocked onto the
        # link; off-chip interface logic is still crossed at both ends.
        return (self.path.serialization_ns(payload_bytes)
                + 2 * self.path.endpoint_overhead_ns)

    def occupancy_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.path.packet_occupancy_ns(payload_bytes)

    def stream_ns(self, chunk_bytes, chunks, last_chunk_bytes,
                  per_chunk_server_ns, lanes=1, double_buffering=True,
                  packet_kind=PacketKind.RDMA_CHUNK):
        lanes = max(1, lanes)
        link_ns = self.path.packet_occupancy_ns(chunk_bytes) // lanes
        first_chunk_ns = (self.path.one_way_latency_ns(chunk_bytes)
                          + per_chunk_server_ns)
        if double_buffering:
            steady_state_ns = max(link_ns, per_chunk_server_ns)
        else:
            steady_state_ns = link_ns + per_chunk_server_ns
        remaining = max(0, chunks - 1)
        total = first_chunk_ns + remaining * steady_state_ns
        # The final (possibly short) chunk only occupies the link for its
        # own size; without double buffering the last steady-state step
        # shrinks accordingly.
        if remaining and last_chunk_bytes < chunk_bytes and not double_buffering:
            total -= (self.path.packet_occupancy_ns(chunk_bytes)
                      - self.path.packet_occupancy_ns(last_chunk_bytes))
        return total


class PendingOp:
    """Future-like handle for one in-flight transport op.

    Returned by the :class:`EventTransport` ``submit_*`` primitives (and
    the channel-level ``submit_*`` wrappers).  The handle stays
    ``done == False`` until some ``drive_until`` / ``drive_all`` call
    advances the shared simulator far enough for the op's completion
    handler to fire; ``result_ns`` is then the transport-measured
    simulated time and ``latency_ns`` adds the channel's constant
    processing overheads (``overhead_ns``), giving the same number the
    blocking channel APIs return.
    """

    __slots__ = ("done", "failed", "error", "result_ns", "overhead_ns",
                 "label", "attempts", "deadline_ns", "_expected",
                 "_timeout_handle", "_on_resolved")

    def __init__(self, label: str = ""):
        self.done = False
        #: True once the op failed (deadline miss); ``error`` then holds
        #: the typed exception ``latency_ns`` / ``drive_until`` raise.
        self.failed = False
        self.error: Optional[TransportError] = None
        self.result_ns = 0
        #: Constant (non-transport) cost the owning channel adds on top
        #: of the measured transport time, e.g. request/response
        #: processing; filled in by the channel-level submit wrappers.
        self.overhead_ns = 0
        self.label = label
        #: Submissions consumed (retry wrappers count their relaunches).
        self.attempts = 1
        #: Per-op deadline in ns of simulated time from submission, or
        #: ``None`` for the pre-churn wait-forever behaviour.
        self.deadline_ns: Optional[int] = None
        #: Packet ids whose expect handlers belong to this op; the
        #: timeout path cancels exactly these.
        self._expected: List[int] = []
        self._timeout_handle: Optional[list] = None
        #: Resolution hook (retry wrappers); fired once on complete/fail.
        self._on_resolved: Optional[Callable[["PendingOp"], None]] = None

    @property
    def resolved(self) -> bool:
        """True once the op completed or failed; drivers stop waiting."""
        return self.done or self.failed

    def complete(self, result_ns: int) -> None:
        self.done = True
        self.result_ns = result_ns

    def fail(self, error: TransportError) -> None:
        self.failed = True
        self.error = error

    @property
    def latency_ns(self) -> int:
        """Full op latency (transport measurement + channel overheads)."""
        if self.failed:
            raise self.error
        if not self.done:
            raise TransportError(
                f"transport op {self.label or '<unnamed>'} has not "
                "completed; drive it first (drive_until/drive_all)")
        return self.result_ns + self.overhead_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.done:
            state = f"done, {self.result_ns} ns"
        elif self.failed:
            state = f"failed, {self.error}"
        else:
            state = "in flight"
        return f"PendingOp({self.label!r}, {state})"


#: Backwards-compatible alias (the handle used to be module-private).
_PendingOp = PendingOp


class EventTransport:
    """Shared event-fabric executor: one per system.

    Owns the local-ejection sink of every switch and dispatches
    deliveries to per-packet handlers, so any number of channels (and
    background traffic drivers) multiplex over one simulator without
    stealing each other's packets.

    Operation driving is split in two halves.  The ``submit_*``
    primitives inject an op's packets and return a future-like
    :class:`PendingOp` handle *without* advancing the simulator; any
    number of submitted ops from different requesters then genuinely
    interleave -- queueing behind each other on shared links -- when a
    single ``drive_all`` (or ``drive_until``) call advances the shared
    simulator once for all of them.  The blocking ``measure_*`` API is
    kept as thin submit+drive wrappers, so a lone op behaves exactly as
    it did when driving was synchronous one-op-at-a-time.
    """

    def __init__(self, fabric, time_slice_ns: int = _TIME_SLICE_NS):
        self.fabric = fabric
        self.sim = fabric.sim
        self.time_slice_ns = time_slice_ns
        #: Deliveries routed per packet id; unmatched packets fall through
        #: to ``unmatched`` (counted, not fatal -- e.g. stray replays).
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        #: Live background sources (cross-traffic drivers).  While any
        #: are active the event queue never drains, so ops are driven in
        #: bounded time slices instead of to idleness.
        self._background = 0
        self.unmatched = 0
        self.ops_completed = 0
        #: Ops that missed their per-op deadline (typed OpTimeoutError).
        self.ops_timed_out = 0
        #: Expect handlers cancelled by deadline timers.  These packets
        #: are written off: still in flight (late deliveries land in
        #: ``unmatched``) or already lost to a counted drop, either way
        #: no longer awaited -- the ``timed_out`` lifecycle category.
        self.packets_timed_out = 0
        self._sanitize = bool(getattr(self.sim, "sanitize", False))
        #: Lifecycle ledger (sanitize mode only): every packet handed to
        #: :meth:`inject` must eventually reach :meth:`_deliver` or a
        #: counted drop; :meth:`check_packet_lifecycle` audits the books
        #: whenever the fabric goes idle.
        self.packets_injected = 0
        self.packets_delivered = 0
        # Sorted attach order: dict order is insertion order, which here
        # depends on fabric construction history; local-sink attachment
        # must not be another place ordering can leak in from.
        for node_id in sorted(fabric.switches):
            fabric.switches[node_id].attach_local_sink(self._deliver)

    # ------------------------------------------------------------------
    # Packet plumbing
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet) -> None:
        if self._sanitize:
            self.packets_delivered += 1
        handler = self._handlers.pop(packet.packet_id, None)
        if handler is not None:
            handler(packet)
        else:
            self.unmatched += 1

    def expect(self, packet: Packet, handler: Callable[[Packet], None]) -> None:
        """Register the delivery handler for ``packet``."""
        self._handlers[packet.packet_id] = handler

    def cancel_expected(self, packet_id: int) -> bool:
        """Drop the delivery handler for ``packet_id`` (if registered).

        The packet itself may still be in flight; once delivered it
        falls through to the ``unmatched`` counter.  Returns whether a
        handler was actually removed.
        """
        return self._handlers.pop(packet_id, None) is not None

    @property
    def expected_packets(self) -> int:
        """Packets with a registered delivery handler (leak canary)."""
        return len(self._handlers)

    def drain_quiet(self) -> None:
        """Run the fabric to idleness and assert no handler leaked.

        Only valid while no background source is registered (a loaded
        fabric never drains).  After the drain every injected packet has
        been delivered, so a non-empty expected-packet map means some
        producer registered handlers it never cleaned up -- the
        stale-handler leak long sweeps must not accumulate.
        """
        if self._background:
            raise TransportError(
                "cannot quiet-drain while background traffic is "
                "registered; stop the cross-traffic drivers first")
        self.sim.run_until_idle()
        if self._handlers:
            raise TransportError(
                f"{len(self._handlers)} expected-packet handlers "
                "survived a quiet drain (stale-handler leak)")

    def inject(self, packet: Packet) -> None:
        """Hand a packet to its source node's switch.

        Routed through the fabric rather than the switch directly so a
        partitioned fabric can defer injections that originate while a
        foreign partition's clock is live (cross-traffic relaunches).
        """
        if self._sanitize:
            self.packets_injected += 1
        self.fabric.inject(packet.src, packet)

    def check_packet_lifecycle(self) -> None:
        """Audit packet conservation; only meaningful on an idle fabric.

        Every packet this transport injected must be accounted for:
        delivered to a local sink, abandoned after exhausting replays
        (``link_faults``), dropped by an admin-down switch (the
        ``timed_out`` / churn category), or dropped at a detached sink.
        Anything else means a packet evaporated inside the fabric.  With
        no background sources registered the expected-handler map must
        also be empty at idleness -- a survivor is a stale-handler leak
        (deadline timers cancel their op's handlers, so timed-out ops
        leave none behind).
        """
        fabric = self.fabric
        dropped = 0
        for key in sorted(fabric.datalinks):
            counters = fabric.datalinks[key].stats.counters
            for name in ("link_faults", "packets_dropped_no_sink"):
                counter = counters.get(name)
                if counter is not None:
                    dropped += counter.value
        for key in sorted(fabric.links):
            counter = fabric.links[key].stats.counters.get(
                "packets_dropped_no_sink")
            if counter is not None:
                dropped += counter.value
        for node_id in sorted(fabric.switches):
            counters = fabric.switches[node_id].stats.counters
            for name in ("packets_dropped_no_sink",
                         "packets_dropped_admin_down"):
                counter = counters.get(name)
                if counter is not None:
                    dropped += counter.value
        if self.packets_injected != self.packets_delivered + dropped:
            raise SanitizerError(
                f"packet lifecycle violated: {self.packets_injected} "
                f"injected != {self.packets_delivered} delivered + "
                f"{dropped} dropped (a packet was lost or double-"
                "delivered inside the fabric)")
        if self._background == 0 and self._handlers:
            raise SanitizerError(
                f"{len(self._handlers)} expected-packet handlers "
                "survived an idle fabric (stale-handler leak)")

    def add_background_source(self) -> None:
        self._background += 1

    def remove_background_source(self) -> None:
        if self._background <= 0:
            raise TransportError("no background source registered")
        self._background -= 1

    @property
    def contended(self) -> bool:
        """True while background traffic keeps the fabric loaded."""
        return self._background > 0

    # ------------------------------------------------------------------
    # Op driving
    # ------------------------------------------------------------------
    def drive_all(self, ops: Sequence[PendingOp]) -> List[int]:
        """Advance the shared simulator until every op in ``ops`` completes.

        This is the overlap primitive: all submitted ops advance
        together through one simulator run, so packets from different
        requesters interleave and queue behind each other instead of
        executing in artificial isolation.  Returns the transport-level
        ``result_ns`` of each op, in ``ops`` order.

        Without background traffic the queue drains once the ops (and
        any piggybacking posted packets) finish, so one
        ``run_until_idle`` suffices.  With background traffic the queue
        normally never empties; the ops are driven in fixed
        simulated-time slices so control returns between slices to
        detect completion.  Slices that dispatch nothing are fine --
        ``run(until=...)`` still advances the clock towards far-future
        timers (long server turnarounds, slow noise relaunches) -- so
        the only true stall is an *empty* queue with some op incomplete:
        its packet was lost.
        """
        sim = self.sim
        pending = [op for op in ops if not op.resolved]
        while pending:
            if self._background == 0:
                # Deadline timers live in the event queue, so a lossy
                # fabric (downed links, failed routers) still resolves
                # every op: run_until_idle advances to the deadline and
                # the timeout fails the op instead of hanging here.
                sim.run_until_idle()
                pending = [op for op in pending if not op.resolved]
                if pending:
                    raise TransportError(
                        "event fabric drained without completing "
                        f"{len(pending)} transport op(s) (packet lost "
                        "or sink detached)")
                if self._sanitize:
                    self.check_packet_lifecycle()
            else:
                sim.run(until=sim.now + self.time_slice_ns)
                pending = [op for op in pending if not op.resolved]
                if pending and len(sim) == 0:
                    raise TransportError(
                        "event fabric drained without completing "
                        f"{len(pending)} transport op(s) (packet lost "
                        "or sink detached) while background traffic "
                        "was registered")
        return [op.result_ns for op in ops]

    def drive_until(self, op: PendingOp) -> int:
        """Advance the shared simulator until ``op`` (alone) resolves.

        Raises the op's typed error (:class:`OpTimeoutError` for a
        deadline miss) when it resolved as failed.
        """
        self.drive_all((op,))
        if op.failed:
            raise op.error
        return op.result_ns

    #: Backwards-compatible alias for the pre-split single-op driver.
    drive = drive_until

    def _resolve(self, op: PendingOp) -> None:
        callback, op._on_resolved = op._on_resolved, None
        if callback is not None:
            callback(op)

    def _finish(self, op: PendingOp, result_ns: int) -> None:
        if op.failed:
            # A straggler completion path (scheduled server turnaround,
            # stream service) outlived the deadline; the op already
            # failed and its result must not be rewritten.
            return
        if op._timeout_handle is not None:
            self.sim.cancel(op._timeout_handle)
            op._timeout_handle = None
        op._expected.clear()
        op.complete(result_ns)
        self.ops_completed += 1
        self._resolve(op)

    # ------------------------------------------------------------------
    # Per-op deadlines
    # ------------------------------------------------------------------
    def _arm_deadline(self, op: PendingOp,
                      deadline_ns: Optional[int]) -> None:
        if deadline_ns is None:
            return
        if deadline_ns <= 0:
            raise ValueError("op deadline must be positive")
        op.deadline_ns = deadline_ns
        op._timeout_handle = self.sim.call_after(deadline_ns,
                                                 self._timeout, op)

    def _timeout(self, op: PendingOp) -> None:
        if op.resolved:  # completion and timeout raced at one timestamp
            return
        op._timeout_handle = None
        # Cancel exactly this op's outstanding expect handlers; packets
        # still in flight are written off as timed_out and any late
        # delivery lands in the (counted, non-fatal) unmatched bucket.
        for packet_id in op._expected:
            if self.cancel_expected(packet_id):
                self.packets_timed_out += 1
        op._expected.clear()
        self.ops_timed_out += 1
        op.fail(OpTimeoutError(
            f"transport op {op.label or '<unnamed>'} missed its "
            f"{op.deadline_ns} ns deadline (attempt {op.attempts})"))
        self._resolve(op)

    # ------------------------------------------------------------------
    # Retries
    # ------------------------------------------------------------------
    def submit_with_retry(self, submit: Callable[[], PendingOp],
                          retry: RetryPolicy,
                          label: str = "") -> PendingOp:
        """Submit an op with exponential-backoff resubmission on timeout.

        ``submit`` is a zero-argument factory launching one attempt
        (typically a channel ``submit_*`` closure with a per-attempt
        ``deadline_ns``).  The returned outer handle resolves when an
        attempt completes -- ``result_ns`` measured from the *first*
        submission, so backoff waits count as op latency -- or fails
        with the last attempt's :class:`OpTimeoutError` once
        ``retry.max_attempts`` submissions all timed out.
        """
        outer = PendingOp(label=label or "retry")
        start = self.sim.now

        def attempt_resolved(inner: PendingOp) -> None:
            if inner.done:
                self._finish(outer, self.sim.now - start)
                return
            if outer.attempts >= retry.max_attempts:
                outer.fail(inner.error)
                self._resolve(outer)
                return
            outer.attempts += 1
            self.sim.call_after(retry.backoff_for(outer.attempts - 1),
                                relaunch)

        def relaunch(_value=None) -> None:
            inner = submit()
            inner.attempts = outer.attempts
            inner._on_resolved = attempt_resolved

        first = submit()
        first._on_resolved = attempt_resolved
        return outer

    # ------------------------------------------------------------------
    # Submitted primitive ops (inject now, drive later)
    # ------------------------------------------------------------------
    def submit_one_way(self, src: int, dst: int, payload_bytes: int,
                       packet_kind: PacketKind,
                       deadline_ns: Optional[int] = None) -> PendingOp:
        op = PendingOp(label=f"one_way {src}->{dst}")
        start = self.sim.now
        packet = Packet(src=src, dst=dst, kind=packet_kind,
                        payload_bytes=payload_bytes, created_at=start)
        self.expect(packet,
                    lambda _p: self._finish(op, self.sim.now - start))
        op._expected.append(packet.packet_id)
        self._arm_deadline(op, deadline_ns)
        self.inject(packet)
        return op

    def submit_round_trip(self, src: int, dst: int, request_bytes: int,
                          response_bytes: int, server_ns: int,
                          request_kind: PacketKind,
                          response_kind: PacketKind,
                          deadline_ns: Optional[int] = None) -> PendingOp:
        op = PendingOp(label=f"round_trip {src}->{dst}")
        start = self.sim.now
        request = Packet(src=src, dst=dst, kind=request_kind,
                         payload_bytes=request_bytes, created_at=start)

        def on_response(_packet: Packet) -> None:
            self._finish(op, self.sim.now - start)

        def send_response(_value=None) -> None:
            if op.failed:
                # The requester gave up while the server turnaround was
                # pending; suppress the reply so no orphan handler (or
                # packet nobody awaits) enters the fabric.
                return
            response = Packet(src=dst, dst=src, kind=response_kind,
                              payload_bytes=response_bytes,
                              payload=request.packet_id)
            self.expect(response, on_response)
            op._expected.append(response.packet_id)
            self.inject(response)

        def on_request(_packet: Packet) -> None:
            # Donor-side service (e.g. the DRAM access) delays the reply.
            if server_ns > 0:
                self.sim.call_after(server_ns, send_response)
            else:
                send_response()

        self.expect(request, on_request)
        op._expected.append(request.packet_id)
        self._arm_deadline(op, deadline_ns)
        self.inject(request)
        return op

    def submit_occupancy(self, src: int, dst: int, payload_bytes: int,
                         packet_kind: PacketKind,
                         deadline_ns: Optional[int] = None) -> PendingOp:
        """Delivery spacing of two back-to-back packets (pipelined cost)."""
        op = PendingOp(label=f"occupancy {src}->{dst}")
        arrivals: List[int] = []

        def on_delivery(_packet: Packet) -> None:
            arrivals.append(self.sim.now)
            if len(arrivals) == 2:
                self._finish(op, arrivals[1] - arrivals[0])

        for _ in range(2):
            packet = Packet(src=src, dst=dst, kind=packet_kind,
                            payload_bytes=payload_bytes)
            self.expect(packet, on_delivery)
            op._expected.append(packet.packet_id)
            self.inject(packet)
        self._arm_deadline(op, deadline_ns)
        return op

    def submit_stream(self, src: int, dst: int, chunk_sizes: Sequence[int],
                      per_chunk_server_ns: int,
                      packet_kind: PacketKind,
                      deadline_ns: Optional[int] = None) -> PendingOp:
        """Makespan of a chunked transfer: inject-all, credit-paced.

        All chunks are offered to the fabric at once; the datalink
        credit machinery paces them onto the wire.  Each delivered chunk
        starts its donor-side service (DMA into the donor's DRAM); the
        op completes when the last service finishes, so services overlap
        the link exactly as double-buffered descriptors do.
        """
        op = PendingOp(label=f"stream {src}->{dst}")
        start = self.sim.now
        remaining = len(chunk_sizes)
        if remaining == 0:
            self._finish(op, 0)
            return op

        def service_done(_value=None) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._finish(op, self.sim.now - start)

        def on_chunk(_packet: Packet) -> None:
            if per_chunk_server_ns > 0:
                self.sim.call_after(per_chunk_server_ns, service_done)
            else:
                service_done()

        for size in chunk_sizes:
            chunk = Packet(src=src, dst=dst, kind=packet_kind,
                           payload_bytes=size, created_at=start)
            self.expect(chunk, on_chunk)
            op._expected.append(chunk.packet_id)
            self.inject(chunk)
        self._arm_deadline(op, deadline_ns)
        return op

    # ------------------------------------------------------------------
    # Blocking measured ops (submit + drive, the pre-split API)
    # ------------------------------------------------------------------
    def measure_one_way(self, src: int, dst: int, payload_bytes: int,
                        packet_kind: PacketKind) -> int:
        return self.drive_until(self.submit_one_way(src, dst, payload_bytes,
                                                    packet_kind))

    def measure_round_trip(self, src: int, dst: int, request_bytes: int,
                           response_bytes: int, server_ns: int,
                           request_kind: PacketKind,
                           response_kind: PacketKind) -> int:
        return self.drive_until(self.submit_round_trip(
            src, dst, request_bytes, response_bytes, server_ns,
            request_kind, response_kind))

    def measure_occupancy(self, src: int, dst: int, payload_bytes: int,
                          packet_kind: PacketKind) -> int:
        return self.drive_until(self.submit_occupancy(src, dst, payload_bytes,
                                                      packet_kind))

    def measure_stream(self, src: int, dst: int, chunk_sizes: Sequence[int],
                       per_chunk_server_ns: int,
                       packet_kind: PacketKind) -> int:
        return self.drive_until(self.submit_stream(src, dst, chunk_sizes,
                                                   per_chunk_server_ns,
                                                   packet_kind))

    def post(self, src: int, dst: int, payload_bytes: int,
             packet_kind: PacketKind) -> None:
        """Inject a fire-and-forget packet (load-bearing, not awaited)."""
        packet = Packet(src=src, dst=dst, kind=packet_kind,
                        payload_bytes=payload_bytes, created_at=self.sim.now)
        # No handler: delivery falls through to the unmatched counter.
        self.inject(packet)


class EventBackend(TransportBackend):
    """Execute transport ops as packets between two fabric endpoints.

    One instance per channel (it knows the channel's src/dst node pair
    and fabric path); the heavy state -- simulator, fabric, delivery
    dispatch -- lives in the shared :class:`EventTransport`.

    Modelling notes: the event fabric is single-lane per direction, so
    ``stream_ns`` ignores lane striping and always overlaps donor-side
    services with the link (the double-buffered pipeline); and a posted
    send is charged its closed-form local acceptance cost while the
    packet itself still crosses -- and loads -- the fabric.
    """

    kind = "event"

    def __init__(self, transport: EventTransport, src: int, dst: int, path):
        self.transport = transport
        self.src = src
        self.dst = dst
        self.path = path
        #: Local (non-transport) costs share the closed-form source of
        #: truth, so the two backends can never drift apart on them.
        self._closed_form = ClosedFormBackend(path)

    def one_way_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.transport.measure_one_way(self.src, self.dst,
                                              payload_bytes, packet_kind)

    def round_trip_ns(self, request_bytes, response_bytes, server_ns=0,
                      request_kind=PacketKind.CRMA_READ,
                      response_kind=PacketKind.CRMA_READ_RESP):
        return self.transport.measure_round_trip(
            self.src, self.dst, request_bytes, response_bytes, server_ns,
            request_kind, response_kind)

    def posted_send_ns(self, payload_bytes, packet_kind=PacketKind.CRMA_WRITE):
        self.transport.post(self.src, self.dst, payload_bytes, packet_kind)
        return self._closed_form.posted_send_ns(payload_bytes, packet_kind)

    def occupancy_ns(self, payload_bytes, packet_kind=PacketKind.QPAIR_DATA):
        return self.transport.measure_occupancy(self.src, self.dst,
                                                payload_bytes, packet_kind)

    def stream_ns(self, chunk_bytes, chunks, last_chunk_bytes,
                  per_chunk_server_ns, lanes=1, double_buffering=True,
                  packet_kind=PacketKind.RDMA_CHUNK):
        return self.transport.drive_until(self.submit_stream(
            chunk_bytes, chunks, last_chunk_bytes, per_chunk_server_ns,
            lanes=lanes, double_buffering=double_buffering,
            packet_kind=packet_kind))

    # ------------------------------------------------------------------
    # Submitted (overlappable) ops
    # ------------------------------------------------------------------
    def submit_one_way(self, payload_bytes,
                       packet_kind=PacketKind.QPAIR_DATA,
                       deadline_ns=None) -> PendingOp:
        return self.transport.submit_one_way(self.src, self.dst,
                                             payload_bytes, packet_kind,
                                             deadline_ns=deadline_ns)

    def submit_round_trip(self, request_bytes, response_bytes, server_ns=0,
                          request_kind=PacketKind.CRMA_READ,
                          response_kind=PacketKind.CRMA_READ_RESP,
                          deadline_ns=None) -> PendingOp:
        return self.transport.submit_round_trip(
            self.src, self.dst, request_bytes, response_bytes, server_ns,
            request_kind, response_kind, deadline_ns=deadline_ns)

    def submit_occupancy(self, payload_bytes,
                         packet_kind=PacketKind.QPAIR_DATA,
                         deadline_ns=None) -> PendingOp:
        return self.transport.submit_occupancy(self.src, self.dst,
                                               payload_bytes, packet_kind,
                                               deadline_ns=deadline_ns)

    def submit_stream(self, chunk_bytes, chunks, last_chunk_bytes,
                      per_chunk_server_ns, lanes=1, double_buffering=True,
                      packet_kind=PacketKind.RDMA_CHUNK,
                      deadline_ns=None) -> PendingOp:
        # The event fabric is single-lane and always overlaps donor-side
        # services with the link.  Silently measuring a differently
        # configured stream would report model mismatch as if it were
        # queueing delay, so unsupported knobs are rejected loudly (the
        # same pattern as the platform's off-chip/router guards).
        if lanes > 1:
            raise ValueError(
                "the event fabric is single-lane per direction; "
                "lane-striped streams are a closed-form knob")
        if not double_buffering:
            raise ValueError(
                "the event fabric always pipelines chunk services "
                "(double buffering); serialised streams are a "
                "closed-form knob")
        sizes = [chunk_bytes] * max(0, chunks - 1) + [last_chunk_bytes]
        return self.transport.submit_stream(self.src, self.dst, sizes,
                                            per_chunk_server_ns, packet_kind,
                                            deadline_ns=deadline_ns)


class CrossTrafficDriver:
    """Closed-loop background flows keeping a shared fabric loaded.

    Each ``(src, dst)`` flow keeps ``window`` packets circulating: a
    delivered packet re-injects its successor after ``turnaround_ns``.
    Because the flows only advance while transport ops drive the shared
    simulator, the background load is deterministic and exactly
    contemporaneous with the measured operations -- the event-backend
    equivalent of the open-loop noise waves the contention sweeps use.
    """

    def __init__(self, transport: EventTransport,
                 flows: Sequence[Tuple[int, int]], payload_bytes: int = 256,
                 window: int = 4, turnaround_ns: int = 200,
                 packet_kind: PacketKind = PacketKind.RDMA_CHUNK):
        if window < 1:
            raise ValueError("each cross-traffic flow needs a window >= 1")
        if turnaround_ns < 0:
            raise ValueError("turnaround must be non-negative")
        self.transport = transport
        self.flows = list(flows)
        self.payload_bytes = payload_bytes
        self.window = window
        self.turnaround_ns = turnaround_ns
        self.packet_kind = packet_kind
        self.packets_sent = 0
        self.active = False
        #: Circulating packets per flow; start() only tops flows up to
        #: ``window``, so stop()/start() cycles cannot inflate the load
        #: beyond the configured depth.
        self._in_flight: Dict[Tuple[int, int], int] = {
            flow: 0 for flow in self.flows}
        #: Undelivered noise packets (id -> flow).  Mirrors the expect
        #: handlers this driver holds in the transport, so stop() can
        #: prune exactly its own registrations.
        self._pending: Dict[int, Tuple[int, int]] = {}
        if self.flows:
            self.start()

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        self.transport.add_background_source()
        for src, dst in self.flows:
            for _ in range(self.window - self._in_flight[(src, dst)]):
                self._launch(src, dst)

    def stop(self) -> None:
        """Stop re-injecting and prune this driver's expect handlers.

        In-flight noise packets are abandoned: their handlers are
        removed from the transport (so long sweeps that cycle many
        drivers over one transport cannot grow the expected-packet map
        unboundedly) and the packets drain through the fabric as
        unmatched deliveries on the next driven ops.
        """
        if not self.active:
            return
        self.active = False
        self.transport.remove_background_source()
        # Sorted ids: pruning must not depend on dict insertion history
        # (ids are globally allocated, so insertion order here reflects
        # every flow's interleaving, not this driver's).
        for packet_id in sorted(self._pending):
            if self.transport.cancel_expected(packet_id):
                self._in_flight[self._pending[packet_id]] -= 1
        self._pending.clear()

    def _launch(self, src: int, dst: int) -> None:
        packet = Packet(src=src, dst=dst, kind=self.packet_kind,
                        payload_bytes=self.payload_bytes,
                        created_at=self.transport.sim.now)
        self.packets_sent += 1
        self._in_flight[(src, dst)] += 1
        self._pending[packet.packet_id] = (src, dst)
        self.transport.expect(packet, self._relaunch)
        self.transport.inject(packet)

    def _relaunch(self, packet: Packet) -> None:
        self._in_flight[(packet.src, packet.dst)] -= 1
        self._pending.pop(packet.packet_id, None)
        if not self.active:
            return
        sim = self.transport.sim
        if self.turnaround_ns > 0:
            sim.call_after(self.turnaround_ns, self._relaunch_now, packet)
        else:
            self._relaunch_now(packet)

    def _relaunch_now(self, packet: Packet) -> None:
        if self.active:
            self._launch(packet.src, packet.dst)
