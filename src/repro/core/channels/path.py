"""Fabric path description used by every transport channel.

A :class:`FabricPath` captures everything that determines the latency
and bandwidth of one requester-to-donor route:

* the per-hop physical link parameters and embedded-switch forwarding
  latency;
* the number of hops (1 for directly connected neighbours, more across
  the mesh);
* whether the transport-channel interface logic is integrated on-chip
  or sits off-chip behind I/O buses and adapters (the Figure 5 knob);
* zero or more external routers on the path (one is the Figure 6 knob;
  multi-router fat-tree routes cross several).

Channels use the closed-form latency queries for their per-operation
costs; contention-sensitive experiments additionally run packets
through the event-driven fabric components.  Cluster-scale sweeps reuse
the same closed forms through :class:`CachedFabricPath`, which memoizes
them per (route shape, size class) in a shared cache so N-node
experiments do not recompute identical latencies per access.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.config import ChannelPlacement, FabricConfig
from repro.fabric.packet import HEADER_BYTES
from repro.fabric.router import RouterConfig

#: Smallest payload size class used by the latency memoization.
_MIN_SIZE_CLASS = 8


def size_class(payload_bytes: int) -> int:
    """Round a payload size up to its power-of-two size class.

    Memoized latencies are computed at the class-representative size, so
    all payloads in one class share one cached result.  The rounding is
    conservative (never under-reports) but coarse: a payload just past a
    boundary is charged as the next power of two, up to 2x its own
    serialization cost.  Attach a cache only where size-class accuracy
    is acceptable -- the cluster sweeps use power-of-two payloads, where
    the rounding is exact.
    """
    if payload_bytes < 0:
        raise ValueError(f"payload size must be non-negative, got {payload_bytes}")
    cls = _MIN_SIZE_CLASS
    while cls < payload_bytes:
        cls <<= 1
    return cls


@dataclass
class FabricPath:
    """Latency/bandwidth model of one route through the Venice fabric."""

    fabric: FabricConfig = field(default_factory=FabricConfig)
    hops: int = 1
    placement: ChannelPlacement = ChannelPlacement.ON_CHIP
    external_router: Optional[RouterConfig] = None
    #: How many external routers of that configuration the route crosses
    #: (1 for the Figure 6 setup; fat-tree routes cross up to three).
    external_router_count: int = 1

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError("a fabric path needs at least one hop")
        if self.external_router_count < 1:
            raise ValueError("a routed path crosses at least one router")

    # ------------------------------------------------------------------
    # Component latencies
    # ------------------------------------------------------------------
    @property
    def endpoint_overhead_ns(self) -> int:
        """Extra latency paid at each endpoint when the logic is off-chip."""
        if self.placement is ChannelPlacement.OFF_CHIP:
            return self.fabric.off_chip_adapter_ns
        return 0

    def serialization_ns(self, payload_bytes: int) -> int:
        """Time to clock one packet of ``payload_bytes`` onto a link."""
        return self.fabric.link.serialization_ns(payload_bytes + HEADER_BYTES)

    def one_way_latency_ns(self, payload_bytes: int) -> int:
        """Uncontended one-way latency for a packet of ``payload_bytes``."""
        per_hop = (self.fabric.link.packet_latency_ns(payload_bytes + HEADER_BYTES)
                   + self.fabric.switch.forwarding_latency_ns)
        latency = per_hop * self.hops
        # Off-chip interface logic is crossed on the way out of the
        # source and into the destination.
        latency += 2 * self.endpoint_overhead_ns
        if self.external_router is not None:
            per_router = (self.external_router.forwarding_latency_ns
                          + self.external_router.link.packet_latency_ns(
                              payload_bytes + HEADER_BYTES))
            latency += per_router * self.external_router_count
        return latency

    def round_trip_latency_ns(self, request_bytes: int, response_bytes: int) -> int:
        """Uncontended request/response latency."""
        return (self.one_way_latency_ns(request_bytes)
                + self.one_way_latency_ns(response_bytes))

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------
    @property
    def link_bandwidth_gbps(self) -> float:
        """Raw bandwidth of one lane of the path."""
        return self.fabric.link.bandwidth_gbps

    def packet_occupancy_ns(self, payload_bytes: int) -> int:
        """Link occupancy of one packet (limits pipelined throughput)."""
        return self.serialization_ns(payload_bytes)

    def streaming_bandwidth_gbps(self, payload_bytes: int,
                                 per_packet_overhead_ns: float = 0.0) -> float:
        """Sustained goodput when packets of ``payload_bytes`` are pipelined."""
        per_packet_ns = self.packet_occupancy_ns(payload_bytes) + per_packet_overhead_ns
        if per_packet_ns <= 0:
            return 0.0
        return payload_bytes * 8 / per_packet_ns

    # ------------------------------------------------------------------
    # Derived variants
    # ------------------------------------------------------------------
    def with_router(self, router: Optional[RouterConfig] = None,
                    count: int = 1) -> "FabricPath":
        """Copy of this path with ``count`` external routers inserted.

        Variants are built with :func:`dataclasses.replace`, so a
        :class:`CachedFabricPath` keeps its type and shared cache.
        """
        return replace(self,
                       external_router=router or RouterConfig(link=self.fabric.link),
                       external_router_count=count)

    def with_placement(self, placement: ChannelPlacement) -> "FabricPath":
        """Copy of this path with different interface-logic placement."""
        return replace(self, placement=placement)

    def with_hops(self, hops: int) -> "FabricPath":
        """Copy of this path with a different hop count."""
        return replace(self, hops=hops)


@dataclass
class CachedFabricPath(FabricPath):
    """Fabric path whose closed-form queries go through a shared cache.

    The cache key is purely structural -- hop count, placement, router
    crossings, and the latency-relevant link/switch parameters -- so one
    cache can be shared by every path of a cluster (and across clusters
    of different sizes): routes with the same shape hit the same entry.
    Latencies are computed at the :func:`size_class` representative, so
    each (shape, size-class) pair is computed exactly once.
    """

    #: Shared memo store; duck-typed so the cluster layer can supply its
    #: instrumented :class:`~repro.cluster.latency_cache.ClusterLatencyCache`.
    cache: Optional[object] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        # The path is immutable in practice; computing the shape key
        # once keeps cache hits cheaper than the closed forms they skip.
        self._shape_key_cache: Optional[Tuple] = None

    def _shape_key(self) -> Tuple:
        if self._shape_key_cache is None:
            self._shape_key_cache = self._compute_shape_key()
        return self._shape_key_cache

    def _compute_shape_key(self) -> Tuple:
        link = self.fabric.link
        router = self.external_router
        return (
            self.hops,
            self.placement.value,
            link.bandwidth_gbps, link.phy_latency_ns, link.extra_delay_ns,
            self.fabric.switch.forwarding_latency_ns,
            self.fabric.off_chip_adapter_ns,
            None if router is None else (
                self.external_router_count,
                router.forwarding_latency_ns,
                router.link.bandwidth_gbps,
                router.link.phy_latency_ns,
                router.link.extra_delay_ns,
            ),
        )

    def _memoized(self, kind: str, payload_bytes: int, compute) -> int:
        if self.cache is None:
            return compute(payload_bytes)
        cls = size_class(payload_bytes)
        return self.cache.lookup((kind, cls) + self._shape_key(),
                                 lambda: compute(cls))

    def one_way_latency_ns(self, payload_bytes: int) -> int:
        return self._memoized(
            "one_way", payload_bytes,
            lambda size: FabricPath.one_way_latency_ns(self, size))

    def serialization_ns(self, payload_bytes: int) -> int:
        return self._memoized(
            "serialization", payload_bytes,
            lambda size: FabricPath.serialization_ns(self, size))
