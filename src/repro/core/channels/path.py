"""Fabric path description used by every transport channel.

A :class:`FabricPath` captures everything that determines the latency
and bandwidth of one requester-to-donor route:

* the per-hop physical link parameters and embedded-switch forwarding
  latency;
* the number of hops (1 for directly connected neighbours, more across
  the mesh);
* whether the transport-channel interface logic is integrated on-chip
  or sits off-chip behind I/O buses and adapters (the Figure 5 knob);
* an optional external one-level router on the path (the Figure 6 knob).

Channels use the closed-form latency queries for their per-operation
costs; contention-sensitive experiments additionally run packets
through the event-driven fabric components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import ChannelPlacement, FabricConfig
from repro.fabric.packet import HEADER_BYTES
from repro.fabric.router import RouterConfig


@dataclass
class FabricPath:
    """Latency/bandwidth model of one route through the Venice fabric."""

    fabric: FabricConfig = field(default_factory=FabricConfig)
    hops: int = 1
    placement: ChannelPlacement = ChannelPlacement.ON_CHIP
    external_router: Optional[RouterConfig] = None

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError("a fabric path needs at least one hop")

    # ------------------------------------------------------------------
    # Component latencies
    # ------------------------------------------------------------------
    @property
    def endpoint_overhead_ns(self) -> int:
        """Extra latency paid at each endpoint when the logic is off-chip."""
        if self.placement is ChannelPlacement.OFF_CHIP:
            return self.fabric.off_chip_adapter_ns
        return 0

    def serialization_ns(self, payload_bytes: int) -> int:
        """Time to clock one packet of ``payload_bytes`` onto a link."""
        return self.fabric.link.serialization_ns(payload_bytes + HEADER_BYTES)

    def one_way_latency_ns(self, payload_bytes: int) -> int:
        """Uncontended one-way latency for a packet of ``payload_bytes``."""
        per_hop = (self.fabric.link.packet_latency_ns(payload_bytes + HEADER_BYTES)
                   + self.fabric.switch.forwarding_latency_ns)
        latency = per_hop * self.hops
        # Off-chip interface logic is crossed on the way out of the
        # source and into the destination.
        latency += 2 * self.endpoint_overhead_ns
        if self.external_router is not None:
            latency += (self.external_router.forwarding_latency_ns
                        + self.external_router.link.packet_latency_ns(
                            payload_bytes + HEADER_BYTES))
        return latency

    def round_trip_latency_ns(self, request_bytes: int, response_bytes: int) -> int:
        """Uncontended request/response latency."""
        return (self.one_way_latency_ns(request_bytes)
                + self.one_way_latency_ns(response_bytes))

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------
    @property
    def link_bandwidth_gbps(self) -> float:
        """Raw bandwidth of one lane of the path."""
        return self.fabric.link.bandwidth_gbps

    def packet_occupancy_ns(self, payload_bytes: int) -> int:
        """Link occupancy of one packet (limits pipelined throughput)."""
        return self.serialization_ns(payload_bytes)

    def streaming_bandwidth_gbps(self, payload_bytes: int,
                                 per_packet_overhead_ns: float = 0.0) -> float:
        """Sustained goodput when packets of ``payload_bytes`` are pipelined."""
        per_packet_ns = self.packet_occupancy_ns(payload_bytes) + per_packet_overhead_ns
        if per_packet_ns <= 0:
            return 0.0
        return payload_bytes * 8 / per_packet_ns

    # ------------------------------------------------------------------
    # Derived variants
    # ------------------------------------------------------------------
    def with_router(self, router: Optional[RouterConfig] = None) -> "FabricPath":
        """Copy of this path with an external router inserted."""
        return FabricPath(fabric=self.fabric, hops=self.hops, placement=self.placement,
                          external_router=router or RouterConfig(link=self.fabric.link))

    def with_placement(self, placement: ChannelPlacement) -> "FabricPath":
        """Copy of this path with different interface-logic placement."""
        return FabricPath(fabric=self.fabric, hops=self.hops, placement=placement,
                          external_router=self.external_router)

    def with_hops(self, hops: int) -> "FabricPath":
        """Copy of this path with a different hop count."""
        return FabricPath(fabric=self.fabric, hops=hops, placement=self.placement,
                          external_router=self.external_router)
