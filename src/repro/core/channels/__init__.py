"""Venice transport-layer channels (Section 5.1.2) and their
inter-channel collaboration (Section 5.1.3).

* :class:`~repro.core.channels.path.FabricPath` -- the latency/bandwidth
  description of the route between two nodes (links, switches, optional
  external router, on-chip vs off-chip interface logic).
* :class:`~repro.core.channels.crma.CrmaChannel` -- cacheline remote
  memory access via load/store instructions.
* :class:`~repro.core.channels.rdma.RdmaChannel` -- bulk DMA transfers.
* :class:`~repro.core.channels.qpair.QPairChannel` -- user-level
  send/receive queue pairs.
* :mod:`~repro.core.channels.collaboration` -- adaptive channel
  selection and CRMA-assisted credit return for QPair flow control.
* :mod:`~repro.core.channels.backend` -- how channel operations are
  costed: :class:`~repro.core.channels.backend.ClosedFormBackend`
  (formulas over the fabric path, the default) or
  :class:`~repro.core.channels.backend.EventBackend` (measured packets
  over the shared event-driven fabric).
"""

from repro.core.channels.backend import (
    ClosedFormBackend,
    CrossTrafficDriver,
    EventBackend,
    EventTransport,
    PendingOp,
    TransportBackend,
    TransportError,
)
from repro.core.channels.path import FabricPath
from repro.core.channels.crma import CrmaChannel, CrmaRemoteBackend
from repro.core.channels.rdma import RdmaChannel, RdmaSwapDevice
from repro.core.channels.qpair import QPairChannel, QPairRemoteMemoryBackend
from repro.core.channels.collaboration import (
    AdaptiveChannelSelector,
    CreditFlowControlModel,
    ChannelChoice,
)

__all__ = [
    "TransportBackend",
    "TransportError",
    "ClosedFormBackend",
    "EventBackend",
    "EventTransport",
    "PendingOp",
    "CrossTrafficDriver",
    "FabricPath",
    "CrmaChannel",
    "CrmaRemoteBackend",
    "RdmaChannel",
    "RdmaSwapDevice",
    "QPairChannel",
    "QPairRemoteMemoryBackend",
    "AdaptiveChannelSelector",
    "CreditFlowControlModel",
    "ChannelChoice",
]
