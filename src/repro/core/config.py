"""Configuration dataclasses mirroring Table 1 of the paper.

``VeniceConfig`` describes a whole system: the node count and topology,
the fabric link/switch parameters, the per-channel transport
configurations, and the per-node CPU/cache/DRAM parameters.  Every
experiment builds its systems from (variations of) these defaults, so
the platform configuration of Table 1 is reproduced by
``VeniceConfig()`` with no arguments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.cpu.core import CpuConfig
from repro.fabric.network import SwitchConfig
from repro.fabric.phy import LinkConfig
from repro.fabric.datalink import DataLinkConfig
from repro.mem.cache import CacheConfig
from repro.mem.dram import DramConfig


class ChannelPlacement(enum.Enum):
    """Where the transport-channel logic sits relative to the processor.

    The Figure 5/6 experiments contrast *on-chip* integration (the
    Venice design point) with *off-chip* interface logic reached over
    I/O buses and adapters.
    """

    ON_CHIP = "on_chip"
    OFF_CHIP = "off_chip"


@dataclass
class FabricConfig:
    """Fabric-wide parameters (Table 1, "Fabric" rows)."""

    link: LinkConfig = field(default_factory=LinkConfig)
    datalink: DataLinkConfig = field(default_factory=DataLinkConfig)
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    #: Number of parallel serial lanes per node (Table 1: 5 Gbps x 6).
    lanes_per_node: int = 6
    #: Extra one-way latency for off-chip interface logic: the I/O bus,
    #: adapter and converter crossings Venice integration removes.
    off_chip_adapter_ns: int = 1_000

    def __post_init__(self) -> None:
        if self.lanes_per_node <= 0:
            raise ValueError("lanes_per_node must be positive")
        if self.off_chip_adapter_ns < 0:
            raise ValueError("off_chip_adapter_ns must be non-negative")

    @property
    def point_to_point_latency_ns(self) -> int:
        """Uncontended one-way latency for a cacheline-sized packet."""
        return self.link.packet_latency_ns(64) + self.switch.forwarding_latency_ns


@dataclass
class CrmaConfig:
    """Cacheline Remote Memory Access channel parameters."""

    placement: ChannelPlacement = ChannelPlacement.ON_CHIP
    #: Hardware processing per request (RAMT lookup, packetisation), ns.
    request_processing_ns: int = 40
    #: Hardware processing per response at the requester, ns.
    response_processing_ns: int = 40
    #: RAMT capacity (number of simultaneously mapped remote regions).
    ramt_entries: int = 64
    #: Transport-layer TLB entries.
    tltlb_entries: int = 128


@dataclass
class RdmaConfig:
    """RDMA (bulk DMA) channel parameters."""

    placement: ChannelPlacement = ChannelPlacement.ON_CHIP
    #: Software cost to build and post one DMA descriptor, ns.
    descriptor_setup_ns: int = 1_500
    #: Completion-notification cost (interrupt or polling), ns.
    completion_ns: int = 1_000
    #: Maximum chunk carried in a single fabric packet, bytes.
    max_chunk_bytes: int = 4096
    #: Use double buffering so back-to-back chunks pipeline on the link.
    double_buffering: bool = True
    #: Number of fabric lanes a bulk transfer is striped across (Table 1
    #: gives each node 6 lanes; page-sized swap transfers use one, large
    #: staging transfers such as accelerator buffers may use several).
    stripe_lanes: int = 1


@dataclass
class QPairConfig:
    """Queue-pair channel parameters."""

    placement: ChannelPlacement = ChannelPlacement.ON_CHIP
    #: User-level software cost to post one send WQE, ns.
    post_send_ns: int = 250
    #: Receiver-side user-level cost to consume one completion, ns.
    completion_ns: int = 250
    #: Hardware queue-management processing per message, ns.
    queue_processing_ns: int = 60
    #: Number of queue pairs supported (hundreds in a typical design).
    num_queue_pairs: int = 256
    #: Receive-queue depth per QPair, in messages (credit window).
    queue_depth: int = 16


@dataclass
class NodeConfig:
    """Per-node resources (Table 1, "Nodes"/"Processor"/"Memory" rows)."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    #: Number of FFT accelerators physically present on the node.
    num_accelerators: int = 1
    #: Number of NIC ports physically present on the node.
    num_nics: int = 1


@dataclass
class VeniceConfig:
    """Whole-system configuration (defaults reproduce Table 1)."""

    num_nodes: int = 8
    topology: str = "mesh3d"
    mesh_dims: Tuple[int, int, int] = (2, 2, 2)
    #: Fat-tree shape (used when ``topology == "fat_tree"``): compute
    #: nodes per leaf router, and number of spine routers joining leaves.
    fat_tree_leaf_radix: int = 4
    fat_tree_spines: int = 2
    fabric: FabricConfig = field(default_factory=FabricConfig)
    crma: CrmaConfig = field(default_factory=CrmaConfig)
    rdma: RdmaConfig = field(default_factory=RdmaConfig)
    qpair: QPairConfig = field(default_factory=QPairConfig)
    node: NodeConfig = field(default_factory=NodeConfig)
    #: Monitor-node heartbeat period (runtime layer), ns.
    heartbeat_period_ns: int = 1_000_000_000

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a Venice system needs at least one node")
        if self.topology not in ("mesh3d", "direct_pair", "star", "fat_tree"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "mesh3d":
            x, y, z = self.mesh_dims
            if x * y * z != self.num_nodes:
                raise ValueError(
                    f"mesh dims {self.mesh_dims} do not match num_nodes={self.num_nodes}"
                )
        if self.topology == "direct_pair" and self.num_nodes != 2:
            raise ValueError("direct_pair topology requires exactly two nodes")
        if self.topology == "fat_tree":
            if self.num_nodes < 2:
                raise ValueError("fat_tree topology needs at least two nodes")
            if self.fat_tree_leaf_radix < 1 or self.fat_tree_spines < 1:
                raise ValueError("fat_tree radix and spine count must be positive")

    @classmethod
    def table1(cls) -> "VeniceConfig":
        """The exact platform configuration of Table 1."""
        return cls()

    @classmethod
    def pair(cls, **overrides) -> "VeniceConfig":
        """Two directly connected nodes (the Section 4.2 setup)."""
        return cls(num_nodes=2, topology="direct_pair", **overrides)
