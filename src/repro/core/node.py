"""Venice node composition.

A :class:`VeniceNode` bundles one node's local resources -- processor,
cache, DRAM, physical memory map, accelerators and NICs -- plus its
runtime agent.  Transport channels between node pairs are created by
:class:`repro.core.system.VeniceSystem`, which knows the topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.accel.device import FftAccelerator
from repro.accel.mailbox import Mailbox
from repro.core.config import NodeConfig
from repro.cpu.core import CpuConfig, TimingCore
from repro.cpu.hierarchy import MemoryHierarchy, RemoteMemoryBackend
from repro.mem.cache import Cache
from repro.mem.dram import Dram
from repro.mem.memory_map import PhysicalMemoryMap
from repro.mem.swap import SwapManager
from repro.nic.nic import Nic, NicConfig
from repro.runtime.agent import NodeAgent


class VeniceNode:
    """One server node of a Venice system."""

    def __init__(self, node_id: int, config: Optional[NodeConfig] = None,
                 neighbors: tuple = ()):
        self.node_id = node_id
        self.config = config or NodeConfig()
        self.dram = Dram(self.config.dram, name=f"node{node_id}.dram")
        self.memory_map = PhysicalMemoryMap(self.config.dram.capacity_bytes,
                                            node_id=node_id)
        self.accelerators: List[FftAccelerator] = [
            FftAccelerator(node_id=node_id)
            for _ in range(self.config.num_accelerators)
        ]
        self.mailboxes: List[Mailbox] = [
            Mailbox(owner_node=node_id) for _ in range(self.config.num_accelerators)
        ]
        self.nics: List[Nic] = [
            Nic(NicConfig(name=f"node{node_id}.nic{index}"), node_id=node_id)
            for index in range(self.config.num_nics)
        ]
        self.agent = NodeAgent(
            node_id=node_id,
            memory_capacity_bytes=self.config.dram.capacity_bytes,
            num_accelerators=self.config.num_accelerators,
            num_nics=self.config.num_nics,
            neighbors=neighbors,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VeniceNode(id={self.node_id})"

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def new_cache(self) -> Cache:
        """A fresh private cache instance (per experiment/core)."""
        return Cache(self.config.cache, name=f"node{self.node_id}.cache")

    def build_hierarchy(self, remote_backend: Optional[RemoteMemoryBackend] = None,
                        swap: Optional[SwapManager] = None,
                        cache: Optional[Cache] = None) -> MemoryHierarchy:
        """Memory hierarchy over this node's memory map and DRAM."""
        return MemoryHierarchy(
            memory_map=self.memory_map,
            cache=cache or self.new_cache(),
            dram=self.dram,
            remote_backend=remote_backend,
            swap=swap,
            name=f"node{self.node_id}.memhier",
        )

    def build_core(self, hierarchy: Optional[MemoryHierarchy] = None,
                   cpu: Optional[CpuConfig] = None) -> TimingCore:
        """Timing core attached to ``hierarchy`` (or a fresh local one)."""
        return TimingCore(
            hierarchy=hierarchy or self.build_hierarchy(),
            config=cpu or self.config.cpu,
            name=f"node{self.node_id}.core",
        )

    # ------------------------------------------------------------------
    # Resource queries
    # ------------------------------------------------------------------
    @property
    def local_memory_bytes(self) -> int:
        return self.memory_map.local_capacity()

    @property
    def donated_memory_bytes(self) -> int:
        return self.memory_map.donated_capacity()

    @property
    def borrowed_memory_bytes(self) -> int:
        return self.memory_map.remote_capacity()

    def primary_nic(self) -> Nic:
        if not self.nics:
            raise ValueError(f"node {self.node_id} has no NICs")
        return self.nics[0]

    def primary_accelerator(self) -> FftAccelerator:
        if not self.accelerators:
            raise ValueError(f"node {self.node_id} has no accelerators")
        return self.accelerators[0]
