"""Remote NIC sharing: IP-over-QPair virtual NICs (Section 5.2.3, Figure 12).

A recipient node gains network bandwidth by borrowing NICs on donor
nodes.  A front-end driver on the recipient presents a virtual NIC
(VNIC) to the network stack; packets sent through it travel over a
dedicated hardware QPair to a back-end driver on the donor, cross the
donor's software bridge, and leave through the donor's real NIC.  The
Linux bonding mechanism then combines the local NIC and any number of
VNICs into one virtual interface.

:class:`VirtualNic` exposes the same ``throughput_gbps`` /
``line_rate_utilization`` interface as a physical
:class:`~repro.nic.nic.Nic`, so it can be a member of a
:class:`~repro.nic.bonding.BondedInterface` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.channels.qpair import QPairChannel
from repro.nic.bonding import BondedInterface
from repro.nic.bridge import SoftwareBridge
from repro.nic.nic import Nic


@dataclass
class VnicDriverConfig:
    """Per-packet costs of the front-end / back-end driver pair."""

    #: Front-end driver cost on the recipient (tx path), ns.
    front_end_ns: int = 700
    #: Back-end driver cost on the donor (forward to bridge), ns.
    back_end_ns: int = 700

    def __post_init__(self) -> None:
        if self.front_end_ns < 0 or self.back_end_ns < 0:
            raise ValueError("driver costs must be non-negative")


class VirtualNic:
    """A donor node's NIC presented to the recipient over IP-over-QPair."""

    def __init__(self, real_nic: Nic, qpair: QPairChannel,
                 bridge: Optional[SoftwareBridge] = None,
                 driver: Optional[VnicDriverConfig] = None):
        self.real_nic = real_nic
        self.qpair = qpair
        self.bridge = bridge or SoftwareBridge()
        self.driver = driver or VnicDriverConfig()

    def forwarding_overhead_ns(self, payload_bytes: int) -> float:
        """Per-packet cost of the remote forwarding path.

        Front-end driver, QPair channel occupancy (serialization or queue
        processing, whichever is larger -- the per-packet software post is
        folded into the front-end driver cost), back-end driver, and the
        donor's software bridge.  The occupancy comes from the channel's
        transport backend, so an event-backed QPair reports the measured
        (possibly contended) spacing instead of the closed form.
        """
        qpair_ns = max(self.qpair.occupancy_ns(payload_bytes),
                       self.qpair.config.queue_processing_ns)
        return (self.driver.front_end_ns + qpair_ns + self.driver.back_end_ns
                + self.bridge.forward_cost_ns(payload_bytes))

    def per_packet_time_ns(self, payload_bytes: int) -> float:
        """Steady-state time per packet through the VNIC.

        The forwarding path and the physical NIC work on different
        packets concurrently (the drivers hand off through queues), so
        sustained throughput is limited by the slower of the two stages,
        not their sum.  For tiny packets the per-packet forwarding cost
        dominates and utilisation collapses; for 256 B packets the real
        NIC's wire time is comparable and utilisation recovers -- the
        Figure 16b behaviour.
        """
        return max(self.real_nic.packet_time_ns(payload_bytes),
                   self.forwarding_overhead_ns(payload_bytes))

    def throughput_gbps(self, payload_bytes: int) -> float:
        """Sustained goodput through the remote NIC."""
        per_packet = self.per_packet_time_ns(payload_bytes)
        if per_packet <= 0:
            return 0.0
        return payload_bytes * 8 / per_packet

    def ideal_throughput_gbps(self, payload_bytes: int) -> float:
        """Goodput of the underlying NIC at pure line rate."""
        wire = self.real_nic.wire_bytes(payload_bytes)
        return self.real_nic.config.line_rate_gbps * payload_bytes / wire

    def line_rate_utilization(self, payload_bytes: int) -> float:
        ideal = self.ideal_throughput_gbps(payload_bytes)
        if ideal <= 0:
            return 0.0
        return min(1.0, self.throughput_gbps(payload_bytes) / ideal)


class RemoteNicSharing:
    """Build bonded interfaces from a local NIC plus borrowed remote NICs."""

    def __init__(self, local_nic: Nic):
        self.local_nic = local_nic
        self.virtual_nics: List[VirtualNic] = []

    def attach_remote_nic(self, remote_nic: Nic, qpair: QPairChannel,
                          bridge: Optional[SoftwareBridge] = None) -> VirtualNic:
        """Borrow ``remote_nic`` through ``qpair``; returns the VNIC."""
        vnic = VirtualNic(real_nic=remote_nic, qpair=qpair, bridge=bridge)
        self.virtual_nics.append(vnic)
        return vnic

    def detach_remote_nic(self, vnic: VirtualNic) -> None:
        """Release a borrowed NIC."""
        self.virtual_nics.remove(vnic)

    def bonded_interface(self, num_remote: Optional[int] = None) -> BondedInterface:
        """Local NIC bonded with the first ``num_remote`` VNICs (default all)."""
        count = len(self.virtual_nics) if num_remote is None else num_remote
        if count < 0 or count > len(self.virtual_nics):
            raise ValueError(
                f"requested {count} remote NICs but only {len(self.virtual_nics)} attached"
            )
        members: Sequence = [self.local_nic] + self.virtual_nics[:count]
        return BondedInterface(members)
