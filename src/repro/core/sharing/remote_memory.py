"""Remote memory sharing (Section 5.2.1, Figures 2 and 10).

Two usage modes are provided, mirroring the paper:

* **Direct remote memory access** -- :func:`share_memory` performs the
  hot-remove (donor) / hot-plug (recipient) handshake and installs the
  CRMA channel's RAMT windows so that ordinary loads and stores to the
  new region are captured and routed to the donor.  The returned
  :class:`RemoteMemoryGrant` carries everything needed to tear the
  sharing down again with :func:`stop_sharing`.
* **Remote memory as swap space** -- handled by
  :class:`repro.core.channels.rdma.RdmaSwapDevice`, which this module
  re-exports conceptually through :func:`swap_device_for_grant` so the
  same grant can back a paging configuration instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.channels.crma import CrmaChannel
from repro.core.channels.rdma import RdmaChannel, RdmaSwapDevice
from repro.mem.memory_map import MemoryMapError, MemoryRegion, PhysicalMemoryMap


class MemorySharingError(RuntimeError):
    """Raised when a sharing request cannot be satisfied."""


@dataclass
class RemoteMemoryGrant:
    """Book-keeping for one active memory-sharing relationship."""

    donor_node: int
    recipient_node: int
    size: int
    donor_region: MemoryRegion
    recipient_region: MemoryRegion
    ramt_entry: object
    channel: CrmaChannel
    active: bool = True

    @property
    def recipient_base(self) -> int:
        """Local physical base address of the borrowed region."""
        return self.recipient_region.start

    @property
    def donor_base(self) -> int:
        return self.donor_region.start


def share_memory(donor_map: PhysicalMemoryMap, recipient_map: PhysicalMemoryMap,
                 size: int, channel: CrmaChannel) -> RemoteMemoryGrant:
    """Execute the memory-sharing flow of Figure 2 / Figure 10.

    1. The donor hot-removes ``size`` bytes (they disappear from its OS).
    2. The recipient hot-plugs a new region at the top of its address
       space.
    3. The recipient's CRMA channel gets a RAMT window mapping the new
       region onto the donor's physical addresses.

    Raises :class:`MemorySharingError` when the donor cannot spare the
    requested amount.
    """
    if size <= 0:
        raise MemorySharingError(f"requested size must be positive, got {size}")
    if donor_map.node_id == recipient_map.node_id:
        raise MemorySharingError("donor and recipient must be different nodes")
    try:
        donor_region = donor_map.hot_remove(size, recipient_node=recipient_map.node_id)
    except MemoryMapError as exc:
        raise MemorySharingError(str(exc)) from exc
    recipient_region = recipient_map.hot_plug_remote(
        size, donor_node=donor_map.node_id, donor_base=donor_region.start)
    ramt_entry = channel.map_region(
        local_base=recipient_region.start, size=size,
        remote_node=donor_map.node_id, remote_base=donor_region.start)
    return RemoteMemoryGrant(
        donor_node=donor_map.node_id,
        recipient_node=recipient_map.node_id,
        size=size,
        donor_region=donor_region,
        recipient_region=recipient_region,
        ramt_entry=ramt_entry,
        channel=channel,
    )


def stop_sharing(grant: RemoteMemoryGrant, donor_map: PhysicalMemoryMap,
                 recipient_map: PhysicalMemoryMap) -> None:
    """Tear down an active grant: unmap, hot-unplug, and return the memory."""
    if not grant.active:
        raise MemorySharingError("grant is already inactive")
    grant.channel.unmap_region(grant.ramt_entry)
    recipient_map.hot_unplug(grant.recipient_region)
    donor_map.hot_add_back(grant.donor_region)
    grant.active = False


def swap_device_for_grant(rdma_channel: RdmaChannel,
                          driver_overhead_ns: int = 1_500) -> RdmaSwapDevice:
    """Swap-space view of remote memory: an RDMA-backed block device.

    The paper's driver uses double buffering of DMA descriptors to
    reduce interrupt overheads and can present regions from multiple
    donors as multiple block devices; here one device per RDMA channel
    (i.e. per donor) is created and the caller may register several with
    the swap manager.
    """
    return RdmaSwapDevice(rdma_channel, driver_overhead_ns=driver_overhead_ns)
