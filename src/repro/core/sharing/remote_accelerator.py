"""Remote accelerator sharing (Section 5.2.2, Figure 11).

Venice abstracts accelerators as message-passing mailboxes pinned in
memory.  An application asks the resource-management middleware for
accelerators; the middleware returns, for each allocated accelerator,
the donor node id and mailbox base address, and the user-level library
dispatches tasks without the application knowing where the device
lives.

Three dispatch targets are modelled:

* :class:`LocalAcceleratorTarget`   -- the accelerator on the node
  itself (input/output buffers move over local DRAM only).
* :class:`RemoteAcceleratorTarget`  -- an accelerator on a donor node:
  input and output buffers move over the RDMA channel, the mailbox
  flags move over CRMA (the exclusive-mapping fast path) or QPair, and
  a donor-side kernel thread launches the task.
* :class:`AcceleratorPool`          -- the library-level view handed to
  applications: an ordered list of targets the FFT workload dispatches
  into round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.accel.device import Accelerator
from repro.accel.mailbox import Mailbox, MailboxTask
from repro.core.channels.crma import CrmaChannel
from repro.core.channels.qpair import QPairChannel
from repro.core.channels.rdma import RdmaChannel
from repro.mem.dram import Dram, DramConfig


class LocalAcceleratorTarget:
    """Dispatch target for an accelerator on the requesting node."""

    def __init__(self, accelerator: Accelerator, dram: Optional[Dram] = None):
        self.accelerator = accelerator
        self.dram = dram or Dram(DramConfig())
        self.is_remote = False

    def task_latency_ns(self, input_bytes: int, output_bytes: int, elements: int) -> int:
        """Latency of one task: stage buffers in local DRAM + device time."""
        staging = (self.dram.dma_latency_ns(input_bytes)
                   + self.dram.dma_latency_ns(output_bytes))
        return staging + self.accelerator.task_time_ns(input_bytes, output_bytes, elements)


class RemoteAcceleratorTarget:
    """Dispatch target for an accelerator on a donor node.

    Parameters
    ----------
    exclusive_mapping:
        When ``True`` (the optimised path of Section 5.2.2) the
        accelerator's mailbox and control registers are exclusively
        mapped to the recipient, which manipulates them directly through
        CRMA; the donor-side kernel thread is bypassed.  When ``False``
        the recipient notifies the donor over QPair and the donor's
        kernel thread services the mailbox.
    """

    def __init__(self, accelerator: Accelerator, mailbox: Mailbox,
                 rdma: RdmaChannel, crma: Optional[CrmaChannel] = None,
                 qpair: Optional[QPairChannel] = None,
                 exclusive_mapping: bool = True,
                 donor_kernel_thread_ns: int = 8_000):
        if donor_kernel_thread_ns < 0:
            raise ValueError("donor kernel thread cost must be non-negative")
        self.accelerator = accelerator
        self.mailbox = mailbox
        self.rdma = rdma
        self.crma = crma
        self.qpair = qpair
        self.exclusive_mapping = exclusive_mapping
        self.donor_kernel_thread_ns = donor_kernel_thread_ns
        self.is_remote = True

    def _control_latency_ns(self) -> int:
        """Latency of signalling task start and observing completion."""
        if self.exclusive_mapping and self.crma is not None:
            # Recipient writes the start flag and polls the completion
            # flag directly through CRMA.
            flag_bytes = 8
            return (self.crma.write_latency_ns(flag_bytes)
                    + self.crma.read_latency_ns(flag_bytes))
        if self.qpair is not None:
            # Request and completion notifications as QPair messages,
            # serviced by the donor-side kernel thread.
            notify = self.qpair.message_latency_ns(64)
            return 2 * notify + self.donor_kernel_thread_ns
        raise ValueError("remote accelerator target needs a CRMA or QPair channel")

    def task_latency_ns(self, input_bytes: int, output_bytes: int, elements: int) -> int:
        """Latency of one offloaded task over the Venice fabric."""
        task = MailboxTask(kernel=self.accelerator.config.name,
                           input_bytes=input_bytes, output_bytes=output_bytes,
                           elements=elements)
        self.mailbox.post(task)
        move_in = self.rdma.transfer_latency_ns(input_bytes)
        control = self._control_latency_ns()
        self.mailbox.launch()
        compute = self.accelerator.task_time_ns(input_bytes, output_bytes, elements)
        self.mailbox.complete()
        move_out = self.rdma.transfer_latency_ns(output_bytes)
        self.mailbox.collect()
        return move_in + control + compute + move_out


class AcceleratorPool:
    """Ordered collection of dispatch targets handed to an application."""

    def __init__(self, targets: Sequence):
        if not targets:
            raise ValueError("an accelerator pool needs at least one target")
        self.targets: List = list(targets)

    def __len__(self) -> int:
        return len(self.targets)

    @property
    def remote_count(self) -> int:
        return sum(1 for target in self.targets if getattr(target, "is_remote", False))

    @property
    def local_count(self) -> int:
        return len(self.targets) - self.remote_count

    def __iter__(self):
        return iter(self.targets)

    def __getitem__(self, index: int):
        return self.targets[index]
