"""Resource-joining mechanisms (Section 5.2).

* :mod:`repro.core.sharing.remote_memory` -- direct remote memory via
  hot-plug + CRMA, and remote memory as swap space via RDMA.
* :mod:`repro.core.sharing.remote_accelerator` -- mailbox-based remote
  accelerator access with the exclusive-mapping fast path.
* :mod:`repro.core.sharing.remote_nic` -- IP-over-QPair virtual NICs
  combined with Linux bonding.
"""

from repro.core.sharing.remote_memory import (
    MemorySharingError,
    RemoteMemoryGrant,
    share_memory,
    stop_sharing,
    swap_device_for_grant,
)
from repro.core.sharing.remote_accelerator import (
    AcceleratorPool,
    LocalAcceleratorTarget,
    RemoteAcceleratorTarget,
)
from repro.core.sharing.remote_nic import (
    RemoteNicSharing,
    VirtualNic,
    VnicDriverConfig,
)

__all__ = [
    "MemorySharingError",
    "RemoteMemoryGrant",
    "share_memory",
    "stop_sharing",
    "swap_device_for_grant",
    "AcceleratorPool",
    "LocalAcceleratorTarget",
    "RemoteAcceleratorTarget",
    "VirtualNic",
    "VnicDriverConfig",
    "RemoteNicSharing",
]
