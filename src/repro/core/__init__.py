"""The Venice architecture: transport channels, resource-sharing
mechanisms, and node/system composition.

This package implements the paper's primary contribution on top of the
substrates:

* :mod:`repro.core.config`   -- Table 1 configuration dataclasses.
* :mod:`repro.core.address`  -- Remote Address Mapping Table (RAMT) and
  transport-layer TLB (Figure 8).
* :mod:`repro.core.channels` -- the CRMA, RDMA and QPair transport
  channels plus inter-channel collaboration (Section 5.1.2-5.1.3).
* :mod:`repro.core.sharing`  -- resource-joining mechanisms for remote
  memory, remote accelerators and remote NICs (Section 5.2).
* :mod:`repro.core.node` / :mod:`repro.core.system` -- node composition
  and whole-system wiring over a topology.
"""

from repro.core.config import (
    VeniceConfig,
    FabricConfig,
    ChannelPlacement,
    CrmaConfig,
    RdmaConfig,
    QPairConfig,
)
from repro.core.address import RemoteAddressMappingTable, RamtEntry, TransportTlb
from repro.core.channels import CrmaChannel, RdmaChannel, QPairChannel, FabricPath
from repro.core.node import VeniceNode
from repro.core.system import VeniceSystem

__all__ = [
    "VeniceConfig",
    "FabricConfig",
    "ChannelPlacement",
    "CrmaConfig",
    "RdmaConfig",
    "QPairConfig",
    "RemoteAddressMappingTable",
    "RamtEntry",
    "TransportTlb",
    "CrmaChannel",
    "RdmaChannel",
    "QPairChannel",
    "FabricPath",
    "VeniceNode",
    "VeniceSystem",
]
