"""Transport-layer address structures (Figure 8).

* :class:`RemoteAddressMappingTable` (RAMT) -- maps local physical
  address windows onto (donor node, remote base) pairs.  The CRMA
  channel consults it for every captured memory request; the donor node
  holds matching entries translating incoming requests back to its own
  physical addresses.
* :class:`TransportTlb` (TLTLB) -- a small cache of recent translations
  so the common case avoids a full table walk.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


class AddressMappingError(RuntimeError):
    """Raised on translation failures or table misuse."""


@dataclass
class RamtEntry:
    """One row of the RAMT.

    The hardware compares the masked high bits of the lookup address
    against ``local_base``; the mask is derived from ``size`` (regions
    are naturally aligned power-of-two windows in the prototype, but the
    model accepts arbitrary sizes and uses range checks).
    """

    local_base: int
    size: int
    remote_node: int
    remote_base: int
    valid: bool = True
    flow_id: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("RAMT entry size must be positive")
        if self.local_base < 0 or self.remote_base < 0:
            raise ValueError("RAMT bases must be non-negative")

    def contains(self, address: int) -> bool:
        return self.valid and self.local_base <= address < self.local_base + self.size

    def translate(self, address: int) -> Tuple[int, int]:
        """Translate a local address to ``(remote_node, remote_address)``."""
        if not self.contains(address):
            raise AddressMappingError(f"address {address:#x} outside RAMT entry")
        return self.remote_node, self.remote_base + (address - self.local_base)


class RemoteAddressMappingTable:
    """Fixed-capacity table of remote-address windows."""

    def __init__(self, capacity: int = 64, name: str = "ramt"):
        if capacity <= 0:
            raise ValueError("RAMT capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: List[RamtEntry] = []

    def __len__(self) -> int:
        return len([entry for entry in self._entries if entry.valid])

    @property
    def entries(self) -> List[RamtEntry]:
        return [entry for entry in self._entries if entry.valid]

    def install(self, local_base: int, size: int, remote_node: int,
                remote_base: int, flow_id: int = 0) -> RamtEntry:
        """Add a mapping; raises when the table is full or windows overlap."""
        if len(self) >= self.capacity:
            raise AddressMappingError(f"{self.name}: table full ({self.capacity} entries)")
        candidate = RamtEntry(local_base=local_base, size=size,
                              remote_node=remote_node, remote_base=remote_base,
                              flow_id=flow_id)
        for entry in self.entries:
            if (candidate.local_base < entry.local_base + entry.size
                    and entry.local_base < candidate.local_base + candidate.size):
                raise AddressMappingError(
                    f"{self.name}: window [{local_base:#x}, +{size:#x}) overlaps an "
                    "existing entry"
                )
        self._entries.append(candidate)
        return candidate

    def invalidate(self, entry: RamtEntry) -> None:
        """Invalidate a mapping (stop-sharing cleanup)."""
        if entry not in self._entries:
            raise AddressMappingError(f"{self.name}: entry not present")
        entry.valid = False

    def lookup(self, address: int) -> Optional[RamtEntry]:
        """Entry containing ``address``, or ``None`` (a local access)."""
        for entry in self._entries:
            if entry.contains(address):
                return entry
        return None

    def translate(self, address: int) -> Tuple[int, int]:
        """Translate ``address``; raises when no entry matches."""
        entry = self.lookup(address)
        if entry is None:
            raise AddressMappingError(f"{self.name}: no mapping for address {address:#x}")
        return entry.translate(address)


class TransportTlb:
    """LRU cache of recent (page -> RAMT entry) translations."""

    def __init__(self, capacity: int = 128, page_bits: int = 12):
        if capacity <= 0 or page_bits <= 0:
            raise ValueError("TLTLB capacity and page bits must be positive")
        self.capacity = capacity
        self.page_bits = page_bits
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _page(self, address: int) -> int:
        return address >> self.page_bits

    def lookup(self, address: int) -> Optional[RamtEntry]:
        page = self._page(address)
        entry = self._entries.get(page)
        if entry is not None and entry.valid and entry.contains(address):
            self._entries.move_to_end(page)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def fill(self, address: int, entry: RamtEntry) -> None:
        page = self._page(address)
        self._entries[page] = entry
        self._entries.move_to_end(page)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def flush(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
