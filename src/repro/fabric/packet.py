"""Packet and flit definitions shared by every fabric layer."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Flit payload size in bytes (the prototype's 125 MHz x 32-bit parallel
#: datapath moves 4 bytes per parallel-clock cycle).
FLIT_BYTES = 4

#: Per-packet header/CRC overhead in bytes (route, sequence number,
#: channel id, CRC-16).  Matches the "ultra-lightweight protocol"
#: described in Section 5.1.1.
HEADER_BYTES = 16


class PacketKind(enum.Enum):
    """Transport-level packet types carried over the fabric."""

    CRMA_READ = "crma_read"
    CRMA_READ_RESP = "crma_read_resp"
    CRMA_WRITE = "crma_write"
    CRMA_WRITE_ACK = "crma_write_ack"
    RDMA_CHUNK = "rdma_chunk"
    RDMA_ACK = "rdma_ack"
    QPAIR_DATA = "qpair_data"
    QPAIR_ACK = "qpair_ack"
    CREDIT_UPDATE = "credit_update"
    CONTROL = "control"


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A transport-layer packet travelling through the fabric.

    Attributes
    ----------
    src, dst:
        Fabric node identifiers of the sender and receiver.
    kind:
        Transport-level packet type.
    payload_bytes:
        Size of the payload carried (headers are added by the layers).
    address:
        Remote physical address for CRMA/RDMA packets.
    sequence:
        Per-flow sequence number; required because inter-channel
        collaboration lets packets of one logical flow arrive out of
        order (Section 5.1.3).
    flow_id:
        Logical flow identifier used by the routing/forwarding tables.
    payload:
        Arbitrary model-level payload (not interpreted by the fabric).
    """

    src: int
    dst: int
    kind: PacketKind
    payload_bytes: int
    address: Optional[int] = None
    sequence: int = 0
    flow_id: int = 0
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: int = 0
    hops: int = 0
    corrupted: bool = False

    #: Total bytes on the wire including header/CRC overhead.  A plain
    #: attribute computed once at construction -- the fabric layers read
    #: it several times per hop, and a property call per read shows up
    #: in hot-path profiles.  ``payload_bytes`` is never mutated after
    #: construction anywhere in the tree.
    wire_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {self.payload_bytes}")
        self.wire_bytes = self.payload_bytes + HEADER_BYTES

    @property
    def flit_count(self) -> int:
        """Number of flits needed to carry this packet."""
        return max(1, -(-self.wire_bytes // FLIT_BYTES))

    def is_control(self) -> bool:
        """True for small control/ack/credit packets."""
        return self.kind in (
            PacketKind.CRMA_WRITE_ACK,
            PacketKind.RDMA_ACK,
            PacketKind.QPAIR_ACK,
            PacketKind.CREDIT_UPDATE,
            PacketKind.CONTROL,
        )
