"""CRC-16 (CCITT) used by the datalink layer for error detection.

The real prototype computes a CRC over every packet on the receiver
side and triggers a replay from the sender on mismatch.  The simulator
carries model-level payloads rather than raw bytes, so the CRC here is
computed over a canonical byte encoding of the packet identity and is
used to *detect injected corruption* in the same way the hardware
detects wire errors.
"""

from __future__ import annotations

from typing import Iterable

CRC16_POLY = 0x1021
CRC16_INIT = 0xFFFF


def _build_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


#: Byte-indexed lookup table; one table step replaces eight bit steps on
#: the per-packet receive path.
_CRC16_TABLE = _build_table()


def crc16(data: bytes, initial: int = CRC16_INIT) -> int:
    """Compute CRC-16/CCITT-FALSE over ``data``."""
    crc = initial
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[(crc >> 8) ^ byte]
    return crc


def packet_signature(src: int, dst: int, sequence: int, payload_bytes: int) -> bytes:
    """Canonical byte encoding of the packet fields protected by CRC."""
    return (
        src.to_bytes(4, "little", signed=False)
        + dst.to_bytes(4, "little", signed=False)
        + (sequence & 0xFFFFFFFF).to_bytes(4, "little", signed=False)
        + payload_bytes.to_bytes(4, "little", signed=False)
    )


def packet_crc(src: int, dst: int, sequence: int, payload_bytes: int) -> int:
    """CRC-16 over the canonical packet signature."""
    return crc16(packet_signature(src, dst, sequence, payload_bytes))


def verify(data: bytes, expected_crc: int) -> bool:
    """Check that ``data`` matches ``expected_crc``."""
    return crc16(data) == expected_crc


def crc_stream(chunks: Iterable[bytes]) -> int:
    """CRC-16 over a sequence of byte chunks without concatenation."""
    crc = CRC16_INIT
    for chunk in chunks:
        crc = crc16(chunk, initial=crc)
    return crc
