"""Physical layer: point-to-point links.

A :class:`PhysicalLink` models one direction of a serial link: packets
occupy the link for their serialization time (wire bytes over the link
bandwidth) and arrive at the far end after an additional propagation /
PHY latency.  The prototype's programmable-logic throughput caps and
inserted delays (Section 4.2) are modelled by the ``bandwidth_gbps``
and ``extra_delay_ns`` knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.process import Process, SimEvent
from repro.sim.resources import Store
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import StatsRegistry
from repro.fabric.packet import Packet


@dataclass
class LinkConfig:
    """Static parameters of a physical link.

    Defaults mirror Table 1: 5 Gbps serial links with a 1.4 us
    end-to-end point-to-point latency, the bulk of which the paper
    attributes to the PHY.  ``phy_latency_ns`` is the one-way
    propagation + SerDes latency; serialization time is computed from
    the packet size and ``bandwidth_gbps``.
    """

    bandwidth_gbps: float = 5.0
    phy_latency_ns: int = 1250
    extra_delay_ns: int = 0
    bit_error_rate: float = 0.0
    queue_capacity: int = 64

    #: Memo of wire_bytes -> serialization time.  Traffic clusters into a
    #: handful of packet size classes, so every size is computed once and
    #: then answered from the dict; the cache invalidates itself when
    #: ``bandwidth_gbps`` is reassigned (experiments mutate configs).
    _serialization_cache: Dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _cache_bandwidth: float = field(
        default=0.0, init=False, repr=False, compare=False)

    def serialization_ns(self, wire_bytes: int) -> int:
        """Time to clock ``wire_bytes`` onto the link (memoized)."""
        if self._cache_bandwidth != self.bandwidth_gbps:
            self._serialization_cache.clear()
            self._cache_bandwidth = self.bandwidth_gbps
        cache = self._serialization_cache
        try:
            return cache[wire_bytes]
        except KeyError:
            pass
        if wire_bytes <= 0:
            value = 0
        else:
            value = max(1, int(round(wire_bytes * 8 / self.bandwidth_gbps)))
        cache[wire_bytes] = value
        return value

    def packet_latency_ns(self, wire_bytes: int) -> int:
        """Uncontended one-way latency for a packet of ``wire_bytes``."""
        return self.serialization_ns(wire_bytes) + self.phy_latency_ns + self.extra_delay_ns


class PhysicalLink:
    """One direction of a serial point-to-point link.

    Packets are transmitted in FIFO order; the link is busy for the
    serialization time of each packet, then the packet is delivered to
    the registered sink after the propagation latency.  Corruption is
    injected according to ``bit_error_rate`` and flagged on the packet
    so the datalink layer's CRC check can catch it.
    """

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "link",
                 rng: Optional[DeterministicRNG] = None):
        self.sim = sim
        self.config = config
        self.name = name
        self.rng = rng or DeterministicRNG(0)
        self.stats = StatsRegistry(name)
        (self._ctr_offered, self._ctr_busy_ns, self._ctr_sent,
         self._ctr_bytes, self._ctr_corrupted) = self.stats.bind_counters(
            "packets_offered", "busy_ns", "packets_sent", "bytes_sent",
            "packets_corrupted")
        self._queue: Store = Store(sim, capacity=config.queue_capacity, name=f"{name}.txq")
        self._sink: Optional[Callable[[Packet], None]] = None
        self._pump = Process(sim, self._transmit_loop(), name=f"{name}.pump")

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the receive callback at the far end of the link."""
        self._sink = sink

    def send(self, packet: Packet) -> SimEvent:
        """Enqueue a packet for transmission.

        The returned event fires when the packet has been accepted into
        the transmit queue (backpressure point for upper layers).
        """
        self._ctr_offered.value += 1
        return self._queue.put(packet)

    def busy_fraction(self) -> float:
        """Fraction of elapsed time the link spent serializing packets."""
        if self.sim.now == 0:
            return 0.0
        return self._ctr_busy_ns.value / self.sim.now

    def _transmit_loop(self):
        config = self.config
        queue_get = self._queue.get
        serialization_ns = config.serialization_ns
        while True:
            packet = yield queue_get()
            wire_bytes = packet.wire_bytes
            serialization = serialization_ns(wire_bytes)
            self._ctr_busy_ns.value += serialization
            yield serialization
            self._ctr_sent.value += 1
            self._ctr_bytes.value += wire_bytes
            if config.bit_error_rate > 0.0:
                error_probability = min(
                    1.0, config.bit_error_rate * wire_bytes * 8
                )
                if self.rng.bernoulli(error_probability):
                    packet.corrupted = True
                    self._ctr_corrupted.increment()
            delivery_delay = config.phy_latency_ns + config.extra_delay_ns
            self.sim.call_after(delivery_delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        packet.hops += 1
        if self._sink is None:
            self.stats.counter("packets_dropped_no_sink").increment()
            return
        self._sink(packet)
