"""Physical layer: point-to-point links.

A :class:`PhysicalLink` models one direction of a serial link: packets
occupy the link for their serialization time (wire bytes over the link
bandwidth) and arrive at the far end after an additional propagation /
PHY latency.  The prototype's programmable-logic throughput caps and
inserted delays (Section 4.2) are modelled by the ``bandwidth_gbps``
and ``extra_delay_ns`` knobs.

Hot-path design notes
---------------------
Transmission is an event-equivalent callback chain, not a pump process:
:meth:`PhysicalLink.offer` starts serializing immediately when the link
is idle, and :meth:`_tx_complete` chains straight into the next queued
packet's serialization at the same timestamp.  A packet therefore costs
exactly two scheduled events on the link (serialization end, delivery)
and zero allocations on the accepted path -- the acceptance
:class:`SimEvent` is only materialised for blocked senders or for
process-based callers of :meth:`send`.  When the link is idle the
datalink layer goes one step further and folds its own processing delay
into the serialization event via :meth:`PhysicalLink.reserve_fused_tx`
(the busy-horizon fold), skipping the intermediate hand-off event
entirely.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import SimEvent
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import StatsRegistry
from repro.fabric.packet import Packet


@dataclass
class LinkConfig:
    """Static parameters of a physical link.

    Defaults mirror Table 1: 5 Gbps serial links with a 1.4 us
    end-to-end point-to-point latency, the bulk of which the paper
    attributes to the PHY.  ``phy_latency_ns`` is the one-way
    propagation + SerDes latency; serialization time is computed from
    the packet size and ``bandwidth_gbps``.
    """

    bandwidth_gbps: float = 5.0
    phy_latency_ns: int = 1250
    extra_delay_ns: int = 0
    bit_error_rate: float = 0.0
    queue_capacity: int = 64

    #: Memo of wire_bytes -> serialization time.  Traffic clusters into a
    #: handful of packet size classes, so every size is computed once and
    #: then answered from the dict; the cache invalidates itself when
    #: ``bandwidth_gbps`` is reassigned (experiments mutate configs).
    _serialization_cache: Dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _cache_bandwidth: float = field(
        default=0.0, init=False, repr=False, compare=False)

    def serialization_ns(self, wire_bytes: int) -> int:
        """Time to clock ``wire_bytes`` onto the link (memoized)."""
        if self._cache_bandwidth != self.bandwidth_gbps:
            self._serialization_cache.clear()
            self._cache_bandwidth = self.bandwidth_gbps
        cache = self._serialization_cache
        try:
            return cache[wire_bytes]
        except KeyError:
            pass
        if wire_bytes <= 0:
            value = 0
        else:
            value = max(1, int(round(wire_bytes * 8 / self.bandwidth_gbps)))
        cache[wire_bytes] = value
        return value

    def packet_latency_ns(self, wire_bytes: int) -> int:
        """Uncontended one-way latency for a packet of ``wire_bytes``."""
        return self.serialization_ns(wire_bytes) + self.phy_latency_ns + self.extra_delay_ns


class PhysicalLink:
    """One direction of a serial point-to-point link.

    Packets are transmitted in FIFO order; the link is busy for the
    serialization time of each packet, then the packet is delivered to
    the registered sink after the propagation latency.  Corruption is
    injected according to ``bit_error_rate`` and flagged on the packet
    so the datalink layer's CRC check can catch it.
    """

    __slots__ = ("sim", "config", "name", "rng", "stats", "_ctr_offered",
                 "_ctr_busy_ns", "_ctr_sent", "_ctr_bytes", "_ctr_corrupted",
                 "_ctr_admin_faulted", "_send_name", "_tx_queue",
                 "_tx_waiters", "_tx_busy", "_sink", "_call_after",
                 "_admin_up")

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "link",
                 rng: Optional[DeterministicRNG] = None):
        if config.queue_capacity <= 0:
            # A zero-slot queue would strand blocked senders forever:
            # waiters are only admitted when a queued packet starts
            # serializing.  (The previous Store-based queue enforced the
            # same bound.)
            raise ValueError(
                f"queue_capacity must be positive, got {config.queue_capacity}")
        self.sim = sim
        self.config = config
        self.name = name
        self.rng = rng or DeterministicRNG(0)
        self.stats = StatsRegistry(name)
        (self._ctr_offered, self._ctr_busy_ns, self._ctr_sent,
         self._ctr_bytes, self._ctr_corrupted,
         self._ctr_admin_faulted) = self.stats.bind_counters(
            "packets_offered", "busy_ns", "packets_sent", "bytes_sent",
            "packets_corrupted", "packets_faulted_admin_down")
        self._send_name = f"{name}.txq.put"
        #: Accepted packets waiting for the serializer (excludes the one
        #: in service); bounded by ``config.queue_capacity``.
        self._tx_queue: Deque[Packet] = deque()
        #: Blocked senders: (packet, acceptance event), FIFO.
        self._tx_waiters: Deque[Tuple[Packet, SimEvent]] = deque()
        self._tx_busy = False
        self._sink: Optional[Callable[[Packet], None]] = None
        #: Scheduler entry point bound once; two calls per packet.
        self._call_after = sim.call_after
        #: Administrative state (fault injection).  A downed link keeps
        #: transmitting -- the serializer and the propagation pipeline
        #: are modelled as unaware of the fault -- but every packet it
        #: delivers while down arrives corrupted, so the far end's CRC
        #: check NAKs it into the datalink replay path.
        self._admin_up = True

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the receive callback at the far end of the link."""
        self._sink = sink

    # ------------------------------------------------------------------
    # Administrative state (fault injection)
    # ------------------------------------------------------------------
    @property
    def admin_up(self) -> bool:
        """False while a fault campaign holds this link down."""
        return self._admin_up

    def set_admin_down(self) -> None:
        """Fail the link: every delivery while down arrives corrupted.

        Packets already in flight are faulted too -- delivery, not
        acceptance, is the corruption point -- so a flap injected
        mid-transfer produces real CRC/NAK replay storms at the far-end
        datalink instead of silently draining the pipeline.
        """
        self._admin_up = False

    def set_admin_up(self) -> None:
        """Restore the link; subsequent deliveries are clean again."""
        self._admin_up = True

    @property
    def queue_depth(self) -> int:
        """Packets accepted but not yet being serialized."""
        return len(self._tx_queue)

    def offer(self, packet: Packet) -> Optional[SimEvent]:
        """Accept ``packet`` for transmission (the per-hop fast path).

        Returns ``None`` when the packet is accepted immediately (link
        idle, or transmit-queue space available) -- no event allocated.
        When the queue is full, the packet joins the blocked-sender FIFO
        and the returned :class:`SimEvent` fires on acceptance (the
        backpressure point for upper layers).
        """
        self._ctr_offered.value += 1
        if not self._tx_busy:
            self._tx_busy = True
            # _tx_start inlined (hot path: one call less per packet).
            serialization = self.config.serialization_ns(packet.wire_bytes)
            self._ctr_busy_ns.value += serialization
            self._call_after(serialization, self._tx_complete, packet)
            return None
        if len(self._tx_queue) < self.config.queue_capacity:
            self._tx_queue.append(packet)
            return None
        event = SimEvent(self.sim, name=self._send_name)
        self._tx_waiters.append((packet, event))
        return event

    def reserve_fused_tx(self, packet: Packet) -> Optional[int]:
        """Reserve the idle serializer for a fused upstream event.

        The busy-horizon fold: when the link is idle at enqueue time,
        the upstream layer already knows the packet's full dwell time
        (its own processing delay plus this link's serialization), so it
        schedules **one** event straight to :meth:`_tx_complete` instead
        of an intermediate hand-off event into :meth:`offer`.  This
        method does the acceptance bookkeeping of that elided hop --
        marks the serializer busy and accounts the offered/busy-time
        counters -- and returns the serialization time to fold into the
        caller's delay.  Returns ``None`` when the link is busy; the
        caller then falls back to the two-event path.

        Model note: the reservation starts at enqueue time, so another
        sender offering during the upstream processing window queues
        behind this packet instead of grabbing the serializer first.
        Clean-path timing is identical; only contended interleavings at
        that sub-window granularity shift (see benchmarks/README).
        """
        if self._tx_busy:
            return None
        self._tx_busy = True
        self._ctr_offered.value += 1
        serialization = self.config.serialization_ns(packet.wire_bytes)
        self._ctr_busy_ns.value += serialization
        return serialization

    def send(self, packet: Packet) -> SimEvent:
        """Enqueue a packet for transmission.

        The returned event fires when the packet has been accepted into
        the transmit queue; process-based callers yield it.  Callback
        chains use :meth:`offer` instead, which only allocates the
        event on the blocked path.
        """
        pending = self.offer(packet)
        if pending is not None:
            return pending
        event = SimEvent(self.sim, name=self._send_name)
        event._succeeded = True
        return event

    def busy_fraction(self) -> float:
        """Fraction of elapsed time the link spent serializing packets."""
        if self.sim.now == 0:
            return 0.0
        return self._ctr_busy_ns.value / self.sim.now

    # ------------------------------------------------------------------
    # Transmit callback chain
    # ------------------------------------------------------------------
    def _tx_complete(self, packet: Packet) -> None:
        config = self.config
        wire_bytes = packet.wire_bytes
        self._ctr_sent.value += 1
        self._ctr_bytes.value += wire_bytes
        if config.bit_error_rate > 0.0:
            error_probability = min(
                1.0, config.bit_error_rate * wire_bytes * 8
            )
            if self.rng.bernoulli(error_probability):
                packet.corrupted = True
                self._ctr_corrupted.increment()
        self._call_after(config.phy_latency_ns + config.extra_delay_ns,
                         self._deliver, packet)
        queue = self._tx_queue
        if queue:
            # Chain straight into the next serialization; a freed queue
            # slot admits the oldest blocked sender.
            nxt = queue.popleft()
            if self._tx_waiters:
                waiting_packet, event = self._tx_waiters.popleft()
                queue.append(waiting_packet)
                event.succeed(None)
            serialization = config.serialization_ns(nxt.wire_bytes)
            self._ctr_busy_ns.value += serialization
            self._call_after(serialization, self._tx_complete, nxt)
        else:
            self._tx_busy = False

    def _deliver(self, packet: Packet) -> None:
        packet.hops += 1
        if not self._admin_up:
            if not packet.corrupted:
                packet.corrupted = True
                self._ctr_admin_faulted.value += 1
        if self._sink is None:
            self.stats.counter("packets_dropped_no_sink").increment()
            return
        self._sink(packet)
