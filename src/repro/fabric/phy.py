"""Physical layer: point-to-point links.

A :class:`PhysicalLink` models one direction of a serial link: packets
occupy the link for their serialization time (wire bytes over the link
bandwidth) and arrive at the far end after an additional propagation /
PHY latency.  The prototype's programmable-logic throughput caps and
inserted delays (Section 4.2) are modelled by the ``bandwidth_gbps``
and ``extra_delay_ns`` knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process, SimEvent
from repro.sim.resources import Store
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import StatsRegistry
from repro.fabric.packet import Packet


@dataclass
class LinkConfig:
    """Static parameters of a physical link.

    Defaults mirror Table 1: 5 Gbps serial links with a 1.4 us
    end-to-end point-to-point latency, the bulk of which the paper
    attributes to the PHY.  ``phy_latency_ns`` is the one-way
    propagation + SerDes latency; serialization time is computed from
    the packet size and ``bandwidth_gbps``.
    """

    bandwidth_gbps: float = 5.0
    phy_latency_ns: int = 1250
    extra_delay_ns: int = 0
    bit_error_rate: float = 0.0
    queue_capacity: int = 64

    def serialization_ns(self, wire_bytes: int) -> int:
        """Time to clock ``wire_bytes`` onto the link."""
        if wire_bytes <= 0:
            return 0
        bits = wire_bytes * 8
        return max(1, int(round(bits / self.bandwidth_gbps)))

    def packet_latency_ns(self, wire_bytes: int) -> int:
        """Uncontended one-way latency for a packet of ``wire_bytes``."""
        return self.serialization_ns(wire_bytes) + self.phy_latency_ns + self.extra_delay_ns


class PhysicalLink:
    """One direction of a serial point-to-point link.

    Packets are transmitted in FIFO order; the link is busy for the
    serialization time of each packet, then the packet is delivered to
    the registered sink after the propagation latency.  Corruption is
    injected according to ``bit_error_rate`` and flagged on the packet
    so the datalink layer's CRC check can catch it.
    """

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "link",
                 rng: Optional[DeterministicRNG] = None):
        self.sim = sim
        self.config = config
        self.name = name
        self.rng = rng or DeterministicRNG(0)
        self.stats = StatsRegistry(name)
        self._queue: Store = Store(sim, capacity=config.queue_capacity, name=f"{name}.txq")
        self._sink: Optional[Callable[[Packet], None]] = None
        self._pump = Process(sim, self._transmit_loop(), name=f"{name}.pump")

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the receive callback at the far end of the link."""
        self._sink = sink

    def send(self, packet: Packet) -> SimEvent:
        """Enqueue a packet for transmission.

        The returned event fires when the packet has been accepted into
        the transmit queue (backpressure point for upper layers).
        """
        self.stats.counter("packets_offered").increment()
        return self._queue.put(packet)

    def busy_fraction(self) -> float:
        """Fraction of elapsed time the link spent serializing packets."""
        busy = self.stats.counter("busy_ns").value
        if self.sim.now == 0:
            return 0.0
        return busy / self.sim.now

    def _transmit_loop(self):
        while True:
            packet = yield self._queue.get()
            serialization = self.config.serialization_ns(packet.wire_bytes)
            self.stats.counter("busy_ns").increment(serialization)
            yield Delay(serialization)
            self.stats.counter("packets_sent").increment()
            self.stats.counter("bytes_sent").increment(packet.wire_bytes)
            if self.config.bit_error_rate > 0.0:
                error_probability = min(
                    1.0, self.config.bit_error_rate * packet.wire_bytes * 8
                )
                if self.rng.bernoulli(error_probability):
                    packet.corrupted = True
                    self.stats.counter("packets_corrupted").increment()
            delivery_delay = self.config.phy_latency_ns + self.config.extra_delay_ns
            self.sim.schedule(delivery_delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        packet.hops += 1
        if self._sink is None:
            self.stats.counter("packets_dropped_no_sink").increment()
            return
        self._sink(packet)
