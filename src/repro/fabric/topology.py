"""Topology builders and hop-distance queries.

The prototype connects eight nodes in a 3D mesh (a 2x2x2 cube).  The
latency-analysis experiments additionally use a directly connected node
pair and a pair joined through one external router.  The
:class:`Topology` class captures nodes, links and shortest-path hop
counts; the Venice system builder (:mod:`repro.core.system`) uses it to
wire switches and to program routing tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


@dataclass
class Topology:  # simlint: disable=SIM004 -- built once per experiment, never touched on the per-packet path
    """A named interconnection topology over integer node identifiers."""

    name: str
    graph: nx.Graph = field(default_factory=nx.Graph)
    #: Optional grid coordinates for mesh topologies (node -> (x, y, z)).
    coordinates: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    #: Nodes that are routers rather than compute nodes.
    router_nodes: List[int] = field(default_factory=list)
    #: (src, dst) -> shortest path.  The runtime layer asks for the same
    #: few routes on every request (policy ordering, path-usability
    #: checks), and the graph is immutable once path queries begin --
    #: builders finish the graph before returning, and fault injection
    #: copies it before removing edges -- so the cache turns the
    #: sharded-MN planning hot path's repeated BFS into dict hits.
    #: Invalidation is keyed on the O(1) node count (edge counting walks
    #: the adjacency in networkx, which would cost more than the BFS it
    #: saves); code that adds an edge between *existing* nodes after
    #: querying paths must call :meth:`invalidate_path_cache`.
    _path_cache: Dict[Tuple[int, int], List[int]] = field(
        default_factory=dict, repr=False, compare=False)
    _hop_cache: Dict[Tuple[int, int], int] = field(
        default_factory=dict, repr=False, compare=False)
    _path_cache_stamp: int = field(default=-1, repr=False, compare=False)

    @property
    def nodes(self) -> List[int]:
        return sorted(self.graph.nodes)

    @property
    def compute_nodes(self) -> List[int]:
        routers = set(self.router_nodes)
        return [node for node in self.nodes if node not in routers]

    @property
    def links(self) -> List[Tuple[int, int]]:
        return [tuple(sorted(edge)) for edge in self.graph.edges]

    def neighbors(self, node: int) -> List[int]:
        return sorted(self.graph.neighbors(node))

    def hop_count(self, src: int, dst: int) -> int:
        """Number of fabric hops on the shortest path from src to dst."""
        if src == dst:
            return 0
        self._check_path_stamp()
        hops = self._hop_cache.get((src, dst))
        if hops is None:
            hops = self._hop_cache[(src, dst)] = \
                len(self._cached_path(src, dst)) - 1
        return hops

    def invalidate_path_cache(self) -> None:
        """Drop memoized shortest paths after an in-place graph edit."""
        self._path_cache.clear()
        self._hop_cache.clear()
        self._path_cache_stamp = -1

    def _check_path_stamp(self) -> None:
        stamp = self.graph.number_of_nodes()
        if stamp != self._path_cache_stamp:
            self._path_cache.clear()
            self._hop_cache.clear()
            self._path_cache_stamp = stamp

    def _cached_path(self, src: int, dst: int) -> List[int]:
        self._check_path_stamp()
        path = self._path_cache.get((src, dst))
        if path is None:
            path = nx.shortest_path(self.graph, src, dst)
            self._path_cache[(src, dst)] = path
        return path

    def shortest_path(self, src: int, dst: int) -> List[int]:
        """Node sequence (inclusive) of the shortest path."""
        # Copy so callers may mutate their path without corrupting the
        # cache; the copy is a few elements against a saved BFS.
        return list(self._cached_path(src, dst))

    def path_nodes(self, src: int, dst: int) -> List[int]:
        """Like :meth:`shortest_path` but returns the cached list itself.

        For per-request hot paths that only iterate: the caller must
        treat the result as read-only (it is shared with the cache).
        """
        return self._cached_path(src, dst)

    def next_hop(self, src: int, dst: int) -> int:
        """First intermediate node on the path from src towards dst."""
        if src == dst:
            raise ValueError("next_hop undefined for src == dst")
        return self._cached_path(src, dst)[1]

    def route_shape(self, src: int, dst: int) -> Tuple[int, int]:
        """(link count, router nodes crossed) of the shortest path.

        One shortest-path computation answers both questions; hot paths
        should prefer this over separate ``hop_count`` /
        ``router_crossings`` calls.
        """
        if src == dst:
            return 0, 0
        path = self._cached_path(src, dst)
        routers = set(self.router_nodes)
        return len(path) - 1, sum(1 for node in path[1:-1] if node in routers)

    def router_crossings(self, src: int, dst: int) -> int:
        """Number of router nodes crossed on the shortest path."""
        return self.route_shape(src, dst)[1]

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph) if self.graph.number_of_nodes() else True

    def diameter(self) -> int:
        if self.graph.number_of_nodes() <= 1:
            return 0
        return nx.diameter(self.graph)

    def validate(self) -> None:
        """Raise if the topology is unusable (disconnected or empty)."""
        if self.graph.number_of_nodes() == 0:
            raise ValueError(f"topology {self.name!r} has no nodes")
        if not self.is_connected():
            raise ValueError(f"topology {self.name!r} is disconnected")


def build_direct_pair(node_a: int = 0, node_b: int = 1) -> Topology:
    """Two nodes joined by a single optical link (Section 4.2 setup)."""
    topo = Topology(name="direct_pair")
    topo.graph.add_edge(node_a, node_b)
    return topo


def build_star(num_nodes: int, router_id: Optional[int] = None) -> Topology:
    """Nodes connected through one central external router (Figure 6)."""
    if num_nodes < 2:
        raise ValueError("a star topology needs at least two compute nodes")
    router = router_id if router_id is not None else num_nodes
    topo = Topology(name="star")
    for node in range(num_nodes):
        topo.graph.add_edge(node, router)
    topo.router_nodes.append(router)
    return topo


def build_mesh3d(dims: Tuple[int, int, int] = (2, 2, 2)) -> Topology:
    """3D mesh of ``dims`` nodes (the prototype uses a 2x2x2 mesh)."""
    x_dim, y_dim, z_dim = dims
    if min(dims) < 1:
        raise ValueError(f"mesh dimensions must be positive, got {dims}")
    topo = Topology(name=f"mesh3d_{x_dim}x{y_dim}x{z_dim}")

    def node_id(x: int, y: int, z: int) -> int:
        return x + y * x_dim + z * x_dim * y_dim

    for x, y, z in itertools.product(range(x_dim), range(y_dim), range(z_dim)):
        node = node_id(x, y, z)
        topo.graph.add_node(node)
        topo.coordinates[node] = (x, y, z)
        if x + 1 < x_dim:
            topo.graph.add_edge(node, node_id(x + 1, y, z))
        if y + 1 < y_dim:
            topo.graph.add_edge(node, node_id(x, y + 1, z))
        if z + 1 < z_dim:
            topo.graph.add_edge(node, node_id(x, y, z + 1))
    return topo


def build_fat_tree(num_nodes: int, leaf_radix: int = 4,
                   num_spines: int = 2) -> Topology:
    """Two-level multi-router fat-tree for N-node clusters.

    Compute nodes attach to leaf routers (``leaf_radix`` nodes per
    leaf); every leaf connects to every spine router, so any two nodes
    are at most four links apart: same-leaf pairs cross one router,
    cross-leaf pairs cross three (leaf, spine, leaf).  When all nodes
    fit under a single leaf no spine level is created.
    """
    if num_nodes < 2:
        raise ValueError("a fat-tree needs at least two compute nodes")
    if leaf_radix < 1:
        raise ValueError(f"leaf radix must be positive, got {leaf_radix}")
    if num_spines < 1:
        raise ValueError(f"spine count must be positive, got {num_spines}")
    num_leaves = -(-num_nodes // leaf_radix)
    topo = Topology(name=f"fat_tree_{num_nodes}n_{num_leaves}l")
    leaf_base = num_nodes
    for node in range(num_nodes):
        topo.graph.add_edge(node, leaf_base + node // leaf_radix)
    topo.router_nodes.extend(range(leaf_base, leaf_base + num_leaves))
    if num_leaves > 1:
        spine_base = leaf_base + num_leaves
        for spine in range(spine_base, spine_base + num_spines):
            topo.router_nodes.append(spine)
            for leaf in range(leaf_base, leaf_base + num_leaves):
                topo.graph.add_edge(leaf, spine)
    return topo


def dimension_order_route(topo: Topology, src: int, dst: int) -> List[int]:
    """X-then-Y-then-Z route through a mesh with coordinates.

    Falls back to the generic shortest path when coordinates are not
    available (non-mesh topologies).
    """
    if src == dst:
        return [src]
    if src not in topo.coordinates or dst not in topo.coordinates:
        return topo.shortest_path(src, dst)
    coord_to_node = {coord: node for node, coord in topo.coordinates.items()}
    current = list(topo.coordinates[src])
    target = topo.coordinates[dst]
    path = [src]
    for axis in range(3):
        while current[axis] != target[axis]:
            current[axis] += 1 if target[axis] > current[axis] else -1
            path.append(coord_to_node[tuple(current)])
    return path
