"""Datalink layer: point-to-point reliable transmission.

Implements the mechanisms described in Section 5.1.1:

* **Credit-based flow control** -- the sender holds a credit pool sized
  to the receiver's buffer; each packet consumes one credit and the
  receiver returns credits as its buffers drain.
* **CRC error detection** on the receiver side, with a **replay
  mechanism** on the sender side: packets are kept in a retransmission
  window until acknowledged, and NAKed (corrupted) packets are resent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process, SimEvent
from repro.sim.resources import CreditPool, Store
from repro.sim.stats import StatsRegistry
from repro.fabric.crc import packet_crc
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import PhysicalLink


@dataclass
class DataLinkConfig:
    """Parameters of one datalink endpoint pair."""

    #: Receiver buffer capacity in packets; also the sender credit count.
    credits: int = 16
    #: Latency of credit-return notifications (piggybacked acks), ns.
    credit_return_latency_ns: int = 100
    #: Processing latency added by the datalink logic per packet, ns.
    processing_latency_ns: int = 20
    #: Maximum replay attempts before the link declares a fault.
    max_replays: int = 8


class DataLink:
    """Reliable, flow-controlled transmission over a pair of links.

    One ``DataLink`` instance represents the sender side of a
    unidirectional datalink; credit returns and acknowledgements travel
    over the reverse physical link supplied as ``reverse_link`` (or are
    modelled with a fixed latency when operating without one).
    """

    def __init__(self, sim: Simulator, forward_link: PhysicalLink,
                 config: Optional[DataLinkConfig] = None, name: str = "datalink",
                 reverse_link: Optional[PhysicalLink] = None):
        self.sim = sim
        self.config = config or DataLinkConfig()
        self.name = name
        self.forward_link = forward_link
        self.reverse_link = reverse_link
        self.stats = StatsRegistry(name)
        self.credits = CreditPool(sim, initial=self.config.credits, name=f"{name}.credits")
        self._sink: Optional[Callable[[Packet], None]] = None
        self._receive_buffer: Store = Store(sim, capacity=self.config.credits,
                                            name=f"{name}.rxbuf")
        self._pending_replay: Dict[int, Packet] = {}
        self._next_sequence = 0
        forward_link.connect(self._on_packet_arrival)
        self._drain = Process(sim, self._receiver_loop(), name=f"{name}.rx")

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the upper-layer receive callback on the far side."""
        self._sink = sink

    def send(self, packet: Packet):
        """Process generator: reliably transmit one packet.

        Yields until a credit is available, the packet is accepted by
        the physical link, and (for corrupted packets) any replays have
        completed.  Delivery to the remote sink happens asynchronously.
        """
        yield self.credits.take(1)
        packet.sequence = self._allocate_sequence()
        packet.payload = packet.payload
        self._pending_replay[packet.sequence] = packet
        yield Delay(self.config.processing_latency_ns)
        yield self.forward_link.send(packet)
        self.stats.counter("packets_sent").increment()
        return packet.sequence

    def send_and_forget(self, packet: Packet) -> Process:
        """Spawn the send process without waiting for it."""
        return Process(self.sim, self.send(packet), name=f"{self.name}.send")

    def _allocate_sequence(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_packet_arrival(self, packet: Packet) -> None:
        expected = packet_crc(packet.src, packet.dst, packet.sequence, packet.payload_bytes)
        observed = expected if not packet.corrupted else (expected ^ 0x5A5A)
        if observed != expected:
            self.stats.counter("crc_errors").increment()
            self._request_replay(packet)
            return
        if not self._receive_buffer.try_put(packet):
            # Credit accounting should make this impossible; count it so
            # tests can assert the invariant.
            self.stats.counter("buffer_overflows").increment()
            self._request_replay(packet)
            return
        self.stats.counter("packets_received").increment()

    def _request_replay(self, packet: Packet) -> None:
        replays = self.stats.counter("replays")
        replays.increment()
        original = self._pending_replay.get(packet.sequence)
        if original is None:
            self.stats.counter("replay_misses").increment()
            return
        attempts = self.stats.counter(f"replay_attempts_{packet.sequence}")
        attempts.increment()
        if attempts.value > self.config.max_replays:
            self.stats.counter("link_faults").increment()
            return
        retry = Packet(
            src=original.src,
            dst=original.dst,
            kind=original.kind,
            payload_bytes=original.payload_bytes,
            address=original.address,
            sequence=original.sequence,
            flow_id=original.flow_id,
            payload=original.payload,
        )
        # Replays bypass credit acquisition: the receiver reserved the
        # buffer slot when the (corrupted) packet first consumed a credit.
        self.sim.schedule(
            self.config.credit_return_latency_ns, self._replay_now, retry
        )

    def _replay_now(self, packet: Packet) -> None:
        self.forward_link.send(packet)

    def _receiver_loop(self):
        while True:
            packet = yield self._receive_buffer.get()
            yield Delay(self.config.processing_latency_ns)
            self._pending_replay.pop(packet.sequence, None)
            self._return_credit()
            if self._sink is not None:
                self._sink(packet)
            else:
                self.stats.counter("packets_dropped_no_sink").increment()

    def _return_credit(self) -> None:
        latency = self.config.credit_return_latency_ns
        if self.reverse_link is not None:
            latency += self.reverse_link.config.phy_latency_ns
        self.sim.schedule(latency, self.credits.replenish, 1)
        self.stats.counter("credits_returned").increment()
