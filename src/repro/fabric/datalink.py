"""Datalink layer: point-to-point reliable transmission.

Implements the mechanisms described in Section 5.1.1:

* **Credit-based flow control** -- the sender holds a credit pool sized
  to the receiver's buffer; each packet consumes one credit and the
  receiver returns credits as its buffers drain.
* **CRC error detection** on the receiver side, with a **replay
  mechanism** on the sender side: packets are kept in a retransmission
  window until acknowledged, and NAKed (corrupted) packets are resent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.resources import CreditPool, Store
from repro.sim.stats import StatsRegistry
from repro.fabric.packet import Packet
from repro.fabric.phy import PhysicalLink


@dataclass
class DataLinkConfig:
    """Parameters of one datalink endpoint pair."""

    #: Receiver buffer capacity in packets; also the sender credit count.
    credits: int = 16
    #: Latency of credit-return notifications (piggybacked acks), ns.
    credit_return_latency_ns: int = 100
    #: Processing latency added by the datalink logic per packet, ns.
    processing_latency_ns: int = 20
    #: Maximum replay attempts before the link declares a fault.
    max_replays: int = 8


class DataLink:
    """Reliable, flow-controlled transmission over a pair of links.

    One ``DataLink`` instance represents the sender side of a
    unidirectional datalink; credit returns and acknowledgements travel
    over the reverse physical link supplied as ``reverse_link`` (or are
    modelled with a fixed latency when operating without one).
    """

    def __init__(self, sim: Simulator, forward_link: PhysicalLink,
                 config: Optional[DataLinkConfig] = None, name: str = "datalink",
                 reverse_link: Optional[PhysicalLink] = None):
        self.sim = sim
        self.config = config or DataLinkConfig()
        self.name = name
        self.forward_link = forward_link
        self.reverse_link = reverse_link
        self.stats = StatsRegistry(name)
        (self._ctr_sent, self._ctr_received, self._ctr_crc_errors,
         self._ctr_overflows, self._ctr_replays, self._ctr_replay_misses,
         self._ctr_link_faults, self._ctr_credits_returned) = \
            self.stats.bind_counters(
                "packets_sent", "packets_received", "crc_errors",
                "buffer_overflows", "replays", "replay_misses",
                "link_faults", "credits_returned")
        self.credits = CreditPool(sim, initial=self.config.credits, name=f"{name}.credits")
        self._sink: Optional[Callable[[Packet], None]] = None
        self._receive_buffer: Store = Store(sim, capacity=self.config.credits,
                                            name=f"{name}.rxbuf")
        self._pending_replay: Dict[int, Packet] = {}
        #: Replay attempts per in-flight sequence; pruned on delivery so
        #: the tracking stays bounded by the credit window (the previous
        #: per-sequence stats counters grew one entry per replayed packet
        #: for the lifetime of the link).
        self._replay_attempts: Dict[int, int] = {}
        self._next_sequence = 0
        self._send_name = f"{name}.send"
        self._replay_name = f"{name}.replay"
        #: Packets between send_and_forget's credit request and grant.
        self._sf_pending: Deque[Packet] = deque()
        forward_link.connect(self._on_packet_arrival)
        self._drain = Process(sim, self._receiver_loop(), name=f"{name}.rx")

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the upper-layer receive callback on the far side."""
        self._sink = sink

    def send(self, packet: Packet):
        """Process generator: reliably transmit one packet.

        Yields until a credit is available, the packet is accepted by
        the physical link, and (for corrupted packets) any replays have
        completed.  Delivery to the remote sink happens asynchronously.
        """
        yield self.credits.take(1)
        packet.sequence = self._allocate_sequence()
        self._pending_replay[packet.sequence] = packet
        yield self.config.processing_latency_ns
        yield self.forward_link.send(packet)
        self._ctr_sent.value += 1
        return packet.sequence

    def send_and_forget(self, packet: Packet) -> None:
        """Transmit one packet asynchronously (the per-hop fast path).

        Equivalent to spawning :meth:`send` as a process -- same credit
        acquisition, same event schedule, same ordering -- but as a
        callback chain, so forwarding a packet does not allocate a
        process/generator pair per hop.  Callers that need to wait for
        acceptance use :meth:`send` in a process instead.
        """
        self.sim.call_soon(self._sf_take, packet)

    # Callback-chain stages of send_and_forget.  Packets are matched to
    # credit grants through a FIFO: the credit pool grants strictly in
    # take order among these stages (an immediate grant is only possible
    # when no earlier taker is still waiting).
    def _sf_take(self, packet: Packet) -> None:
        event = self.credits.take(1)
        self._sf_pending.append(packet)
        if event._succeeded:
            self.sim.call_soon(self._sf_granted)
        else:
            event.add_waiter(self._sf_granted)

    def _sf_granted(self, _value=None) -> None:
        packet = self._sf_pending.popleft()
        packet.sequence = self._allocate_sequence()
        self._pending_replay[packet.sequence] = packet
        self.sim.call_after(self.config.processing_latency_ns,
                            self._sf_processed, packet)

    def _sf_processed(self, packet: Packet) -> None:
        event = self.forward_link.send(packet)
        if event._succeeded:
            self.sim.call_soon(self._sf_sent)
        else:
            event.add_waiter(self._sf_sent)

    def _sf_sent(self, _value=None) -> None:
        self._ctr_sent.value += 1

    def _allocate_sequence(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_packet_arrival(self, packet: Packet) -> None:
        # The receiver-side CRC-16 over the packet signature detects
        # injected wire corruption.  A corrupted packet's observed CRC
        # (the signature CRC xor a non-zero error syndrome) never
        # matches and a clean packet's always does, so the per-packet
        # check reduces exactly to the corruption flag and the CRC
        # itself need not be computed on the per-packet fast path.  See
        # :func:`repro.fabric.crc.packet_crc` for the signature CRC.
        if packet.corrupted:
            self._ctr_crc_errors.value += 1
            self._request_replay(packet)
            return
        if not self._receive_buffer.try_put(packet):
            # Credit accounting should make this impossible; count it so
            # tests can assert the invariant.
            self._ctr_overflows.value += 1
            self._request_replay(packet)
            return
        self._ctr_received.value += 1

    def replay_attempts(self, sequence: int) -> int:
        """Replay attempts recorded for an in-flight sequence (0 if none)."""
        return self._replay_attempts.get(sequence, 0)

    def tracked_replay_sequences(self) -> int:
        """Number of sequences with live replay-attempt tracking."""
        return len(self._replay_attempts)

    def _request_replay(self, packet: Packet) -> None:
        self._ctr_replays.value += 1
        original = self._pending_replay.get(packet.sequence)
        if original is None:
            self._ctr_replay_misses.value += 1
            return
        attempts = self._replay_attempts.get(packet.sequence, 0) + 1
        self._replay_attempts[packet.sequence] = attempts
        if attempts > self.config.max_replays:
            self._ctr_link_faults.value += 1
            return
        retry = Packet(
            src=original.src,
            dst=original.dst,
            kind=original.kind,
            payload_bytes=original.payload_bytes,
            address=original.address,
            sequence=original.sequence,
            flow_id=original.flow_id,
            payload=original.payload,
        )
        # Replays bypass credit acquisition: the receiver reserved the
        # buffer slot when the (corrupted) packet first consumed a credit.
        self.sim.call_after(
            self.config.credit_return_latency_ns, self._start_replay, retry
        )

    def _start_replay(self, packet: Packet) -> None:
        Process(self.sim, self._replay_process(packet), name=self._replay_name)

    def _replay_process(self, packet: Packet):
        # Retransmissions share the transmit queue's backpressure: the
        # replay waits until the physical link accepts the packet rather
        # than discarding the acceptance event.
        yield self.forward_link.send(packet)

    def _receiver_loop(self):
        processing_latency = self.config.processing_latency_ns
        buffer_get = self._receive_buffer.get
        while True:
            packet = yield buffer_get()
            yield processing_latency
            self._pending_replay.pop(packet.sequence, None)
            self._replay_attempts.pop(packet.sequence, None)
            self._return_credit()
            if self._sink is not None:
                self._sink(packet)
            else:
                self.stats.counter("packets_dropped_no_sink").increment()

    def _return_credit(self) -> None:
        latency = self.config.credit_return_latency_ns
        if self.reverse_link is not None:
            latency += self.reverse_link.config.phy_latency_ns
        self.sim.call_after(latency, self.credits.replenish, 1)
        self._ctr_credits_returned.value += 1
