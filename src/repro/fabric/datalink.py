"""Datalink layer: point-to-point reliable transmission.

Implements the mechanisms described in Section 5.1.1:

* **Credit-based flow control** -- the sender holds a credit pool sized
  to the receiver's buffer; each packet consumes one credit and the
  receiver returns credits as its buffers drain.
* **CRC error detection** on the receiver side, with a **replay
  mechanism** on the sender side: packets are kept in a retransmission
  window until acknowledged, and NAKed (corrupted) packets are resent.

Hot-path design notes
---------------------
Both directions are event-equivalent callback chains; a clean packet
costs two scheduled events at this layer (sender processing, receiver
processing) plus an amortised fraction of one coalesced credit-return
flush.  When the forward link is idle at enqueue time the sender
processing event is *folded* into the serialization event (the
busy-horizon fold, :meth:`PhysicalLink.reserve_fused_tx`): both delays
are fixed at enqueue, so one fused event covers processing +
serialization and the uncontended per-hop event count drops by one.  The sender takes its credit synchronously when one is available
(:meth:`CreditPool.try_take`, no event allocated) and only joins the
pool's waiter FIFO when stalled; the receiver serialises processing
through a busy flag and a deque instead of a Store + drain process, so
no generator is resumed per packet.  Credit returns go through
:meth:`CreditPool.schedule_replenish`, which batches every credit freed
within one return-latency window into a single wakeup pass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.sim.engine import SanitizerError, Simulator
from repro.sim.resources import CreditPool
from repro.sim.stats import StatsRegistry
from repro.fabric.packet import Packet
from repro.fabric.phy import PhysicalLink


@dataclass
class DataLinkConfig:
    """Parameters of one datalink endpoint pair."""

    #: Receiver buffer capacity in packets; also the sender credit count.
    credits: int = 16
    #: Latency of credit-return notifications (piggybacked acks), ns.
    credit_return_latency_ns: int = 100
    #: Processing latency added by the datalink logic per packet, ns.
    processing_latency_ns: int = 20
    #: Maximum replay attempts before the link declares a fault.
    max_replays: int = 8
    #: Credit returns accrue until this many are owed (or the receive
    #: pipeline idles, whichever comes first) and then flush as one
    #: coalesced replenish -- modelling piggybacked/batched ack frames.
    #: The effective threshold is clamped to half the credit window so
    #: batching can never withhold enough credits to stall a sender
    #: forever; the idle flush covers the tail of every burst.
    credit_batch: int = 8


class DataLink:
    """Reliable, flow-controlled transmission over a pair of links.

    One ``DataLink`` instance represents the sender side of a
    unidirectional datalink; credit returns and acknowledgements travel
    over the reverse physical link supplied as ``reverse_link`` (or are
    modelled with a fixed latency when operating without one).
    """

    __slots__ = ("sim", "config", "name", "forward_link", "reverse_link",
                 "stats", "_ctr_sent", "_ctr_received", "_ctr_crc_errors",
                 "_ctr_overflows", "_ctr_replays", "_ctr_replay_misses",
                 "_ctr_link_faults", "_ctr_credits_returned", "credits",
                 "_sink", "_processing_ns", "_call_after", "_rx_queue",
                 "_rx_busy", "_pending_replay", "_replay_attempts",
                 "_next_sequence", "_credits_owed", "_credit_batch",
                 "_send_name", "_sf_pending", "_sanitize")

    def __init__(self, sim: Simulator, forward_link: PhysicalLink,
                 config: Optional[DataLinkConfig] = None, name: str = "datalink",
                 reverse_link: Optional[PhysicalLink] = None):
        self.sim = sim
        self.config = config or DataLinkConfig()
        self.name = name
        self.forward_link = forward_link
        self.reverse_link = reverse_link
        self.stats = StatsRegistry(name)
        (self._ctr_sent, self._ctr_received, self._ctr_crc_errors,
         self._ctr_overflows, self._ctr_replays, self._ctr_replay_misses,
         self._ctr_link_faults, self._ctr_credits_returned) = \
            self.stats.bind_counters(
                "packets_sent", "packets_received", "crc_errors",
                "buffer_overflows", "replays", "replay_misses",
                "link_faults", "credits_returned")
        self.credits = CreditPool(sim, initial=self.config.credits, name=f"{name}.credits")
        self._sink: Optional[Callable[[Packet], None]] = None
        self._processing_ns = self.config.processing_latency_ns
        #: Scheduler entry point bound once; several calls per packet.
        self._call_after = sim.call_after
        #: Receiver buffer: packets waiting for the (serialised) receive
        #: processing stage; bounded by ``config.credits``.
        self._rx_queue: Deque[Packet] = deque()
        self._rx_busy = False
        self._pending_replay: Dict[int, Packet] = {}
        #: Replay attempts per in-flight sequence; pruned on delivery so
        #: the tracking stays bounded by the credit window (the previous
        #: per-sequence stats counters grew one entry per replayed packet
        #: for the lifetime of the link).
        self._replay_attempts: Dict[int, int] = {}
        self._next_sequence = 0
        #: Credits owed to the sender but not yet flushed to the pool.
        self._credits_owed = 0
        self._credit_batch = max(1, min(self.config.credit_batch,
                                        self.config.credits // 2))
        self._send_name = f"{name}.send"
        #: Packets between send_and_forget's credit request and grant.
        self._sf_pending: Deque[Packet] = deque()
        self._sanitize = bool(getattr(sim, "sanitize", False))
        forward_link.connect(self._on_packet_arrival)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Register the upper-layer receive callback on the far side."""
        self._sink = sink

    def send(self, packet: Packet):
        """Process generator: reliably transmit one packet.

        Yields until a credit is available, the packet is accepted by
        the physical link, and (for corrupted packets) any replays have
        completed.  Delivery to the remote sink happens asynchronously.
        """
        yield self.credits.take(1)
        packet.sequence = self._allocate_sequence()
        self._pending_replay[packet.sequence] = packet
        yield self.config.processing_latency_ns
        yield self.forward_link.send(packet)
        self._ctr_sent.value += 1
        return packet.sequence

    def send_and_forget(self, packet: Packet) -> None:
        """Transmit one packet asynchronously (the per-hop fast path).

        Same latencies and event schedule as spawning :meth:`send` as a
        process, but as a callback chain: the credit is taken
        synchronously when available (no event, no allocation) and a
        stalled packet joins the pool's waiter FIFO.  Ordering among
        ``send_and_forget`` packets is strictly FIFO.  Relative to a
        *process-based* :meth:`send` issued at the same timestamp, the
        synchronous take can run before that process's deferred resume,
        so mixed-path ordering at one instant is deterministic but not
        creation-order FIFO; the event fabric uses only this path.
        ``try_take`` and ``_sf_begin`` are inlined here -- this runs
        once per packet per hop.
        """
        pool = self.credits
        # _sf_pending must be empty too: after a coalesced flush grants a
        # parked packet, the grant callback is still in the ready queue
        # while the pool already shows free credits -- taking one inline
        # here would let this packet overtake the parked one and invert
        # the FIFO sequence/transmission order.
        if not self._sf_pending and not pool._waiters and pool._credits >= 1:
            pool._credits -= 1
            pool.total_taken += 1
            packet.sequence = sequence = self._next_sequence
            self._next_sequence = sequence + 1
            self._pending_replay[sequence] = packet
            # Busy-horizon fold: when the forward link is idle right
            # now, processing + serialization are both fixed, so one
            # fused event replaces the processing hand-off (see
            # PhysicalLink.reserve_fused_tx).  The _tx_busy peek saves
            # the guaranteed-to-fail reservation call on contended
            # links, where this path runs once per packet.
            link = self.forward_link
            serialization = (None if link._tx_busy
                             else link.reserve_fused_tx(packet))
            if serialization is not None:
                self._ctr_sent.value += 1
                self._call_after(self._processing_ns + serialization,
                                 link._tx_complete, packet)
            else:
                self._call_after(self._processing_ns, self._sf_processed,
                                 packet)
        else:
            # Joins the FIFO behind every earlier taker and counts the
            # stall; _sf_pending pairs packets with grant callbacks in
            # the same order the pool grants them.
            event = pool.take(1)
            self._sf_pending.append(packet)
            event.add_waiter(self._sf_granted)

    def _sf_granted(self, _value=None) -> None:
        packet = self._sf_pending.popleft()
        packet.sequence = sequence = self._next_sequence
        self._next_sequence = sequence + 1
        self._pending_replay[sequence] = packet
        link = self.forward_link
        serialization = (None if link._tx_busy
                         else link.reserve_fused_tx(packet))
        if serialization is not None:
            self._ctr_sent.value += 1
            self._call_after(self._processing_ns + serialization,
                             link._tx_complete, packet)
        else:
            self._call_after(self._processing_ns, self._sf_processed, packet)

    def _sf_processed(self, packet: Packet) -> None:
        pending = self.forward_link.offer(packet)
        if pending is None:
            self._ctr_sent.value += 1
        else:
            pending.add_waiter(self._sf_sent)

    def _sf_sent(self, _value=None) -> None:
        self._ctr_sent.value += 1

    def _allocate_sequence(self) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_packet_arrival(self, packet: Packet) -> None:
        # The receiver-side CRC-16 over the packet signature detects
        # injected wire corruption.  A corrupted packet's observed CRC
        # (the signature CRC xor a non-zero error syndrome) never
        # matches and a clean packet's always does, so the per-packet
        # check reduces exactly to the corruption flag and the CRC
        # itself need not be computed on the per-packet fast path.  See
        # :func:`repro.fabric.crc.packet_crc` for the signature CRC.
        if packet.corrupted:
            self._ctr_crc_errors.value += 1
            self._request_replay(packet)
            return
        if self._rx_busy:
            if len(self._rx_queue) >= self.config.credits:
                # Credit accounting should make this impossible; count
                # it so tests can assert the invariant.
                self._ctr_overflows.value += 1
                self._request_replay(packet)
                return
            self._rx_queue.append(packet)
        else:
            self._rx_busy = True
            self._call_after(self._processing_ns, self._rx_done, packet)
        self._ctr_received.value += 1

    def _rx_done(self, packet: Packet) -> None:
        """Receive processing complete: ack, return credit, deliver up."""
        self._pending_replay.pop(packet.sequence, None)
        if self._replay_attempts:
            # Only non-empty when replays are in flight (lossy links).
            self._replay_attempts.pop(packet.sequence, None)
        owed = self._credits_owed + 1
        self._ctr_credits_returned.value += 1
        queue = self._rx_queue
        if queue:
            # Batch while the pipeline stays busy: a stalled sender is
            # guaranteed a flush because its un-returned credits keep
            # the pipeline fed until the threshold trips.
            if owed >= self._credit_batch:
                self._flush_credits(owed)
            else:
                self._credits_owed = owed
            self._call_after(self._processing_ns, self._rx_done,
                             queue.popleft())
        else:
            # Flush-on-idle: never leave owed credits stranded when the
            # burst (or the whole simulation) quiesces.
            self._flush_credits(owed)
            self._rx_busy = False
        if self._sink is not None:
            self._sink(packet)
        else:
            self.stats.counter("packets_dropped_no_sink").increment()

    def replay_attempts(self, sequence: int) -> int:
        """Replay attempts recorded for an in-flight sequence (0 if none)."""
        return self._replay_attempts.get(sequence, 0)

    def tracked_replay_sequences(self) -> int:
        """Number of sequences with live replay-attempt tracking."""
        return len(self._replay_attempts)

    def _request_replay(self, packet: Packet) -> None:
        self._ctr_replays.value += 1
        original = self._pending_replay.get(packet.sequence)
        if original is None:
            self._ctr_replay_misses.value += 1
            return
        attempts = self._replay_attempts.get(packet.sequence, 0) + 1
        self._replay_attempts[packet.sequence] = attempts
        if self._sanitize and len(self._replay_attempts) > self.config.credits:
            raise SanitizerError(
                f"{self.name}: replay-attempt tracking holds "
                f"{len(self._replay_attempts)} sequences, more than the "
                f"{self.config.credits}-credit window allows "
                "(unpruned replay counters)")
        if attempts > self.config.max_replays:
            self._ctr_link_faults.value += 1
            # Abandonment must leave no residue: the retransmission
            # window entry and attempt counter are pruned (they used to
            # leak forever), and the credit the packet consumed at send
            # time is returned -- the receiver's buffer slot is free, it
            # just never held a clean copy.  Without the return, every
            # abandoned packet permanently shrank the sender's window
            # until a long fault campaign deadlocked the link.
            self._pending_replay.pop(packet.sequence, None)
            self._replay_attempts.pop(packet.sequence, None)
            self._ctr_credits_returned.value += 1
            self._flush_credits(self._credits_owed + 1)
            return
        retry = Packet(
            src=original.src,
            dst=original.dst,
            kind=original.kind,
            payload_bytes=original.payload_bytes,
            address=original.address,
            sequence=original.sequence,
            flow_id=original.flow_id,
            payload=original.payload,
        )
        # Replays bypass credit acquisition: the receiver reserved the
        # buffer slot when the (corrupted) packet first consumed a credit.
        self.sim.call_after(
            self.config.credit_return_latency_ns, self._start_replay, retry
        )

    def _start_replay(self, packet: Packet) -> None:
        # Retransmissions share the transmit queue's backpressure: when
        # the queue is full the replay parks in the link's blocked-sender
        # FIFO and is admitted as slots free -- nothing to do after
        # acceptance, so the returned event (if any) needs no waiter.
        self.forward_link.offer(packet)

    def _flush_credits(self, owed: int) -> None:
        self._credits_owed = 0
        latency = self.config.credit_return_latency_ns
        if self.reverse_link is not None:
            latency += self.reverse_link.config.phy_latency_ns
        # Coalesced: every credit in the batch rides a single replenish
        # event (one wakeup pass) instead of one event each.
        self.credits.schedule_replenish(owed, delay=latency)
