"""External (off-chip) router model.

Section 4.2.2 inserts a one-level external router between the two
resource-sharing nodes and measures the additional end-to-end overhead
(Figure 6).  The external router is a store-and-forward device: every
packet pays an extra PHY crossing plus the router's own forwarding
latency, and contended output ports serialise.

Forwarding is an event-equivalent callback chain (one scheduled event
per packet for the forwarding latency), mirroring the datalink and PHY
layers: the ingress queue plus a busy flag replace the previous
Store + pump process, so relaying a packet resumes no generator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.fabric.packet import Packet
from repro.fabric.phy import LinkConfig, PhysicalLink


@dataclass
class RouterConfig:
    """Parameters of the external router."""

    #: Internal forwarding latency (lookup + crossbar + scheduling), ns.
    forwarding_latency_ns: int = 300
    #: Per-port buffer capacity in packets.
    port_buffer_packets: int = 128
    #: Link configuration of the router's ports.  The router sits in the
    #: same rack, so its extra hop crosses a short electrical link rather
    #: than another full-length optical run; the default therefore uses a
    #: much smaller PHY latency than the node-to-node links.
    link: LinkConfig = field(default_factory=lambda: LinkConfig(phy_latency_ns=300))


class ExternalRouter:
    """One-level external router joining multiple nodes.

    Nodes attach by registering their node id; the router owns the
    downstream :class:`PhysicalLink` towards each attached node, so a
    packet relayed through the router pays serialization + PHY latency
    twice (node-to-router and router-to-node) plus the router's
    forwarding latency -- the behaviour Figure 6 quantifies.
    """

    __slots__ = ("sim", "config", "name", "stats", "_ctr_received",
                 "_ctr_dropped", "_ctr_unroutable", "_ctr_forwarded",
                 "_ingress", "_fwd_busy", "_fwd_ns", "_downlinks")

    def __init__(self, sim: Simulator, config: Optional[RouterConfig] = None,
                 name: str = "router"):
        self.sim = sim
        self.config = config or RouterConfig()
        self.name = name
        self.stats = StatsRegistry(name)
        (self._ctr_received, self._ctr_dropped, self._ctr_unroutable,
         self._ctr_forwarded) = self.stats.bind_counters(
            "packets_received", "packets_dropped", "packets_unroutable",
            "packets_forwarded")
        self._ingress: Deque[Packet] = deque()
        self._fwd_busy = False
        self._fwd_ns = self.config.forwarding_latency_ns
        self._downlinks: Dict[int, PhysicalLink] = {}  # simlint: disable=SIM006 -- bounded by fleet size, nodes never detach

    def attach_node(self, node_id: int, sink) -> PhysicalLink:
        """Attach a node; returns the router-to-node link feeding ``sink``."""
        link = PhysicalLink(self.sim, self.config.link, name=f"{self.name}->node{node_id}")
        link.connect(sink)
        self._downlinks[node_id] = link
        return link

    @property
    def attached_nodes(self) -> int:
        return len(self._downlinks)

    def receive(self, packet: Packet) -> None:
        """Ingress callback for node-to-router links.

        Clean-hop fold: when both the forwarding pipeline and the
        packet's downlink are idle, the full dwell time through the
        router is known here -- forwarding latency plus downlink
        serialization -- so one fused event jumps straight to the
        downlink's ``_tx_complete`` (3 events per clean hop instead
        of 4).  The busy path (pipeline or downlink occupied) and the
        unroutable path keep the two-event chain through
        :meth:`_forward`.  Model note: the fused pipeline frees at
        ``fwd + serialization`` rather than at ``fwd``, so an ingress
        packet arriving inside that serialization window queues behind
        the fold instead of overlapping it -- the same sub-window
        reservation semantics as ``reserve_fused_tx`` itself (see
        benchmarks/README).
        """
        self._ctr_received.value += 1
        if self._fwd_busy:
            if len(self._ingress) >= self.config.port_buffer_packets:
                self._ctr_dropped.value += 1
                return
            self._ingress.append(packet)
            return
        self._fwd_busy = True
        downlink = self._downlinks.get(packet.dst)
        if downlink is not None:
            serialization = downlink.reserve_fused_tx(packet)
            if serialization is not None:
                self._ctr_forwarded.value += 1
                self.sim.call_after(self._fwd_ns + serialization,
                                    self._fused_complete, packet)
                return
        self.sim.call_after(self._fwd_ns, self._forward, packet)

    def added_latency_ns(self, wire_bytes: int) -> int:
        """Extra one-way latency a packet pays by crossing this router."""
        extra_phy = self.config.link.packet_latency_ns(wire_bytes)
        return self.config.forwarding_latency_ns + extra_phy

    # ------------------------------------------------------------------
    # Forwarding callback chain
    # ------------------------------------------------------------------
    def _forward(self, packet: Packet) -> None:
        downlink = self._downlinks.get(packet.dst)
        if downlink is None:
            self._ctr_unroutable.value += 1
            self._next_or_idle()
            return
        self._ctr_forwarded.value += 1
        pending = downlink.offer(packet)
        if pending is None:
            self._next_or_idle()
        else:
            # Store-and-forward backpressure: the pipeline stalls until
            # the congested downlink accepts the packet.
            pending.add_waiter(self._resume_pipeline)

    def _fused_complete(self, packet: Packet) -> None:
        """Tail of the clean-hop fold: finish the reserved downlink
        transmission, then pump the ingress queue."""
        self._downlinks[packet.dst]._tx_complete(packet)
        self._next_or_idle()

    def _resume_pipeline(self, _value=None) -> None:
        self._next_or_idle()

    def _next_or_idle(self) -> None:
        if self._ingress:
            self.sim.call_after(self._fwd_ns, self._forward,
                                self._ingress.popleft())
        else:
            self._fwd_busy = False
