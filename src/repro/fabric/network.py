"""Network layer: the low-radix on-chip switch and routing tables.

The Venice prototype embeds a custom radix-7 switch in each node so that
neighbouring nodes can communicate *switchlessly*, i.e. without
traversing a central external switch (Section 5.1.1).  The
:class:`Switch` here models that embedded switch: it looks up the output
port for a packet's destination, charges a small forwarding latency,
and hands the packet to the outgoing datalink (or to local ejection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.fabric.datalink import DataLink
from repro.fabric.packet import Packet


class RoutingError(RuntimeError):
    """Raised when a packet has no route to its destination."""


@dataclass(slots=True)
class RoutingEntry:
    """One row of the routing table (Figure 8, right-hand table)."""

    node_id: int
    out_port: int
    flow_id: int = 0
    valid: bool = True


class RoutingTable:
    """Destination-node to output-port mapping.

    ``version`` increments on every mutation so route consumers (the
    switch's resolved-route cache) can validate cached decisions with
    one integer compare instead of a lookup per packet.
    """

    __slots__ = ("_entries", "version")

    def __init__(self) -> None:
        self._entries: Dict[int, RoutingEntry] = {}  # simlint: disable=SIM006 -- routes are invalidated in place, bounded by fleet size
        self.version = 0

    def install(self, node_id: int, out_port: int, flow_id: int = 0) -> None:
        """Install or update the route towards ``node_id``."""
        self._entries[node_id] = RoutingEntry(node_id=node_id, out_port=out_port,
                                              flow_id=flow_id)
        self.version += 1

    def invalidate(self, node_id: int) -> None:
        entry = self._entries.get(node_id)
        if entry is not None:
            entry.valid = False
            self.version += 1

    def lookup(self, node_id: int) -> RoutingEntry:
        entry = self._entries.get(node_id)
        if entry is None or not entry.valid:
            raise RoutingError(f"no valid route to node {node_id}")
        return entry

    def has_route(self, node_id: int) -> bool:
        entry = self._entries.get(node_id)
        return entry is not None and entry.valid

    def __len__(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.valid)


@dataclass
class SwitchConfig:
    """Parameters of the embedded switch."""

    #: Number of ports (the prototype implements a radix-7 switch:
    #: six mesh directions plus local ejection).
    radix: int = 7
    #: Per-hop forwarding latency through the crossbar, ns.
    forwarding_latency_ns: int = 50


class Switch:
    """Embedded low-radix switch of one Venice node.

    Port 0 is by convention the *local ejection* port, delivering
    packets destined to this node to the transport layer; the remaining
    ports connect to neighbouring nodes' datalinks.
    """

    LOCAL_PORT = 0

    __slots__ = ("sim", "node_id", "config", "name", "routing_table",
                 "stats", "_ctr_switched", "_ctr_ejected", "_ctr_unroutable",
                 "_ctr_admin_dropped", "_output_links", "_port_counters",
                 "_resolved", "_resolved_version", "_fwd_ns", "_call_after",
                 "_local_sink", "_admin_up")

    def __init__(self, sim: Simulator, node_id: int,
                 config: Optional[SwitchConfig] = None, name: str = ""):
        self.sim = sim
        self.node_id = node_id
        self.config = config or SwitchConfig()
        self.name = name or f"switch{node_id}"
        self.routing_table = RoutingTable()
        self.stats = StatsRegistry(self.name)
        (self._ctr_switched, self._ctr_ejected, self._ctr_unroutable,
         self._ctr_admin_dropped) = self.stats.bind_counters(
            "packets_switched", "packets_ejected", "packets_unroutable",
            "packets_dropped_admin_down")
        self._output_links: Dict[int, DataLink] = {}  # simlint: disable=SIM006 -- bounded by switch radix, ports are never detached
        #: Per-port forwarded counters, bound when the port is attached.
        self._port_counters: Dict[int, object] = {}  # simlint: disable=SIM006 -- bounded by switch radix, ports are never detached
        #: Resolved destination -> (datalink, port counter), validated
        #: against the routing-table version; one dict hit per packet
        #: replaces the lookup + port + counter triple on the hot path.
        self._resolved: Dict[int, tuple] = {}
        self._resolved_version = -1
        self._fwd_ns = self.config.forwarding_latency_ns
        self._call_after = sim.call_after
        self._local_sink: Optional[Callable[[Packet], None]] = None
        #: Administrative state (fault injection).  A downed switch --
        #: a failed router, or the embedded switch of a crashed node --
        #: black-holes every packet it would have routed or ejected;
        #: the drops are counted so the transport's packet-lifecycle
        #: audit still balances under churn.
        self._admin_up = True

    # ------------------------------------------------------------------
    # Administrative state (fault injection)
    # ------------------------------------------------------------------
    @property
    def admin_up(self) -> bool:
        """False while a fault campaign holds this switch down."""
        return self._admin_up

    def set_admin_down(self) -> None:
        """Fail the switch: routed and ejected packets are dropped."""
        self._admin_up = False

    def set_admin_up(self) -> None:
        """Restore the switch; forwarding resumes for new packets."""
        self._admin_up = True

    def attach_output(self, port: int, datalink: DataLink) -> None:
        """Attach the datalink serving an output port."""
        if port == self.LOCAL_PORT:
            raise ValueError("port 0 is reserved for local ejection")
        if port < 0 or port >= self.config.radix:
            raise ValueError(f"port {port} outside switch radix {self.config.radix}")
        self._output_links[port] = datalink
        self._port_counters[port] = self.stats.counter(f"port{port}_forwarded")
        # Re-attaching a port must drop resolved routes through it; the
        # cache is otherwise only validated against the routing table.
        self._resolved.clear()
        self._resolved_version = -1

    def attach_local_sink(self, sink: Callable[[Packet], None]) -> None:
        """Attach the transport-layer receive path of this node."""
        self._local_sink = sink

    @property
    def ports_in_use(self) -> int:
        return len(self._output_links)

    def inject(self, packet: Packet) -> None:
        """Accept a packet from the local transport layer or a neighbour."""
        self._ctr_switched.value += 1
        self._call_after(self._fwd_ns, self._route, packet)

    def _route(self, packet: Packet) -> None:
        if not self._admin_up:
            # The upstream datalink already finished its accounting
            # (credit returned, replay window pruned) before handing the
            # packet over, so dropping here leaks nothing -- the packet
            # just never completes its op, which is the timeout path's
            # job to notice.
            self._ctr_admin_dropped.value += 1
            return
        dst = packet.dst
        if dst == self.node_id:
            self._eject(packet)
            return
        table = self.routing_table
        if self._resolved_version != table.version:
            self._resolved.clear()
            self._resolved_version = table.version
        resolved = self._resolved.get(dst)
        if resolved is None:
            resolved = self._resolved[dst] = self._resolve(dst)
        datalink, counter = resolved
        counter.value += 1
        datalink.send_and_forget(packet)

    def _resolve(self, dst: int) -> tuple:
        """Route lookup slow path; failures are never cached."""
        try:
            entry = self.routing_table.lookup(dst)
        except RoutingError:
            self._ctr_unroutable.value += 1
            raise
        datalink = self._output_links.get(entry.out_port)
        if datalink is None:
            self._ctr_unroutable.value += 1
            raise RoutingError(
                f"{self.name}: route to node {dst} uses unattached port "
                f"{entry.out_port}"
            )
        return datalink, self._port_counters[entry.out_port]

    def _eject(self, packet: Packet) -> None:
        self._ctr_ejected.value += 1
        if self._local_sink is None:
            self.stats.counter("packets_dropped_no_sink").increment()
            return
        self._local_sink(packet)
