"""Venice interconnect fabric substrate.

The fabric is organised exactly as in Figure 7 of the paper, bottom-up:

* :mod:`repro.fabric.phy`      -- physical links (serialization +
  propagation delay, bandwidth caps, optional bit errors).
* :mod:`repro.fabric.datalink` -- point-to-point reliable transmission:
  credit-based flow control, CRC error detection on the receiver and a
  replay mechanism on the sender.
* :mod:`repro.fabric.network`  -- the low-radix on-chip switch with a
  routing table, plus "switchless" direct chip-to-chip operation.
* :mod:`repro.fabric.topology` -- topology builders (direct pair,
  3D mesh, star through an external router).
* :mod:`repro.fabric.router`   -- the external one-level router used in
  the Figure 6 experiment.

Transport-layer channels (CRMA, RDMA, QPair) live in
:mod:`repro.core.channels` and sit on top of this package.
"""

from repro.fabric.packet import Packet, PacketKind, FLIT_BYTES, HEADER_BYTES
from repro.fabric.phy import PhysicalLink, LinkConfig
from repro.fabric.datalink import DataLink, DataLinkConfig
from repro.fabric.network import Switch, RoutingTable
from repro.fabric.topology import Topology, build_direct_pair, build_mesh3d, build_star
from repro.fabric.router import ExternalRouter

__all__ = [
    "Packet",
    "PacketKind",
    "FLIT_BYTES",
    "HEADER_BYTES",
    "PhysicalLink",
    "LinkConfig",
    "DataLink",
    "DataLinkConfig",
    "Switch",
    "RoutingTable",
    "Topology",
    "build_direct_pair",
    "build_mesh3d",
    "build_star",
    "ExternalRouter",
]
