"""Cluster subsystem: N-node fleets over configurable fabric topologies.

* :mod:`repro.cluster.cluster`       -- :class:`Cluster` /
  :class:`ClusterConfig`: a fleet of Venice nodes over a point-to-point,
  star, multi-router fat-tree, or 3D-mesh fabric.
* :mod:`repro.cluster.matchmaker`    -- borrower/donor matchmaking for
  remote-memory, remote-accelerator and remote-NIC shares.
* :mod:`repro.cluster.latency_cache` -- shared memoization of the
  closed-form path latencies so N-node sweeps stay cheap.
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.latency_cache import ClusterLatencyCache
from repro.cluster.matchmaker import Matchmaker, ResourceShare

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterLatencyCache",
    "Matchmaker",
    "ResourceShare",
]
