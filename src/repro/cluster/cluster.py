"""N-node cluster over a configurable fabric topology.

The seed experiments hard-wire a requester/donor pair over a single
link or one external router.  :class:`Cluster` scales that setup to a
fleet: it instantiates a :class:`~repro.core.system.VeniceSystem` over
a configurable topology (point-to-point pair, single-external-router
star, multi-router fat-tree, or the prototype's 3D mesh), shares one
:class:`~repro.cluster.latency_cache.ClusterLatencyCache` across every
transport channel, and exposes a borrower/donor
:class:`~repro.cluster.matchmaker.Matchmaker` that assigns
remote-memory, remote-NIC and remote-accelerator shares across the
fleet through the Monitor-Node runtime.

Routes are described by :class:`~repro.core.channels.path.CachedFabricPath`
instances whose hop count and external-router crossings come from the
topology: a same-leaf fat-tree route crosses one router, a cross-leaf
route crosses three, and every crossing pays the external router's
forwarding latency plus its short-link traversal (the Figure 6 model,
generalised to multi-router paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.latency_cache import ClusterLatencyCache
from repro.cluster.matchmaker import Matchmaker
from repro.core.channels.backend import CrossTrafficDriver, EventTransport
from repro.core.channels.crma import CrmaChannel
from repro.core.channels.path import CachedFabricPath
from repro.core.channels.qpair import QPairChannel
from repro.core.channels.rdma import RdmaChannel
from repro.core.config import ChannelPlacement, VeniceConfig
from repro.core.node import VeniceNode
from repro.core.system import VeniceSystem
from repro.fabric.router import RouterConfig
from repro.fabric.topology import Topology
from repro.runtime.monitor import MonitorNode
from repro.runtime.policies import (
    ContentionAwarePolicy,
    FabricContentionTelemetry,
    make_policy,
)
from repro.runtime.shard import ShardedMonitor


@dataclass
class ClusterConfig:
    """Shape and policy of one cluster instance.

    Channel, fabric and per-node parameters stay at the Table 1
    defaults of :class:`~repro.core.config.VeniceConfig`; the cluster
    adds the fleet-level knobs.
    """

    num_nodes: int = 8
    #: "direct_pair" | "star" | "fat_tree" | "mesh3d"
    topology: str = "fat_tree"
    #: Compute nodes per leaf router (fat-tree only).
    leaf_radix: int = 4
    #: Spine routers joining the leaves (fat-tree only).
    num_spines: int = 2
    #: Mesh dimensions (mesh3d only); must multiply to ``num_nodes``.
    mesh_dims: Tuple[int, int, int] = (2, 2, 2)
    #: Transport-channel interface-logic placement for every route.
    placement: ChannelPlacement = ChannelPlacement.ON_CHIP
    #: Donor-selection policy name (see :data:`repro.runtime.policies.POLICIES`).
    policy: str = "distance-first"
    #: Run the Monitor Node sharded: partition the RRT/RAT/TST by
    #: fat-tree leaf into this many replicated shards behind a
    #: coordinator (see :mod:`repro.runtime.shard`).  ``None`` keeps
    #: the single-instance MonitorNode; values above the leaf count
    #: are clamped.
    monitor_shards: Optional[int] = None
    #: External-router model paid once per router crossed on a route.
    router: RouterConfig = field(default_factory=RouterConfig)
    #: How the cluster's channels cost operations: "closed_form" keeps
    #: the cached closed-form sweeps; "event" runs every operation as
    #: packets over the system's shared event fabric.
    transport_backend: str = "closed_form"
    #: Timer backend for the shared simulator (event backend only).
    scheduler: str = "auto"
    #: Runtime sanitizer for the shared simulator (event backend only):
    #: True/False force it, None defers to ``SIM_SANITIZE``.
    sanitize: Optional[bool] = None

    def venice(self) -> VeniceConfig:
        """The equivalent whole-system configuration."""
        return VeniceConfig(
            num_nodes=self.num_nodes,
            topology=self.topology,
            mesh_dims=self.mesh_dims,
            fat_tree_leaf_radix=self.leaf_radix,
            fat_tree_spines=self.num_spines,
        )


class Cluster:
    """A fleet of Venice nodes with shared-latency fast paths."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 latency_cache: Optional[ClusterLatencyCache] = None):
        self.config = config or ClusterConfig()
        self.venice = self.config.venice()
        self.system = VeniceSystem.build(
            self.venice,
            transport_backend=self.config.transport_backend,
            scheduler=self.config.scheduler,
            sanitize=self.config.sanitize)
        if self.config.monitor_shards is not None:
            # Swap the single-instance MN for the sharded, replicated
            # one before any allocation state exists; every runtime
            # caller goes through the same facade API.
            sharded = ShardedMonitor(self.system.topology,
                                     num_shards=self.config.monitor_shards)
            for node_id in self.system.node_ids:
                sharded.register_agent(self.system.node(node_id).agent)
            self.system.monitor = sharded
        self.system.monitor.policy = make_policy(self.config.policy)
        #: Shared by every path of this cluster; pass one cache to
        #: several clusters to share latencies across a sweep.  (An
        #: empty cache has len() == 0 and is falsy, so test for None.)
        self.latency_cache = (latency_cache if latency_cache is not None
                              else ClusterLatencyCache())
        #: (src, dst) -> CachedFabricPath.  Paths are immutable shape
        #: descriptors over a topology that is fixed once the cluster is
        #: built, and the sharded-MN hot path builds a channel (hence a
        #: path) per allocation -- memoizing skips the per-allocation
        #: route-shape query and dataclass rebuilds.
        self._paths: Dict[Tuple[int, int], CachedFabricPath] = {}  # simlint: disable=SIM006 -- bounded by node pairs, not traffic
        self.matchmaker = Matchmaker(self)

    # ------------------------------------------------------------------
    # Fleet-wide event transport (event backend only)
    # ------------------------------------------------------------------
    @property
    def event_backed(self) -> bool:
        """True when this cluster's channels measure ops as packets."""
        return self.config.transport_backend == "event"

    def event_transport(self, parallel: int = 1) -> EventTransport:
        """The fleet-wide event-fabric executor every channel shares.

        Built lazily over the cluster's *full* topology (leaves, spines,
        hubs and all): one simulator and one fabric serve every
        per-route :class:`~repro.core.channels.backend.EventBackend`
        this cluster hands out, so concurrent borrowers' measured
        packets genuinely queue behind each other on shared links.

        ``parallel > 1`` splits the fabric into per-leaf partitions
        synchronized by a conservative-lookahead barrier (see
        :mod:`repro.sim.partition`); merged stats are byte-identical to
        the single-simulator run.  The shape is fixed on first use.
        """
        if not self.event_backed:
            raise ValueError(
                "this cluster costs transport through the closed forms; "
                "build it with ClusterConfig(transport_backend='event') "
                "to get a fleet-wide event transport")
        return self.system.event_transport(parallel=parallel)

    def cross_traffic(self, flows: Optional[List[Tuple[int, int]]] = None,
                      **kwargs) -> CrossTrafficDriver:
        """Closed-loop background load over the fleet fabric.

        ``flows`` defaults to a ring over the compute nodes, which
        crosses every leaf/hub of the topology so all shared links see
        noise.  Remaining keyword arguments go to
        :class:`~repro.core.channels.backend.CrossTrafficDriver`.
        """
        if flows is None:
            ids = self.node_ids
            flows = [(ids[i], ids[(i + 1) % len(ids)])
                     for i in range(len(ids))]
        return CrossTrafficDriver(self.event_transport(), flows=flows,
                                  **kwargs)

    # ------------------------------------------------------------------
    # Topology / node access
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self.system.topology

    @property
    def monitor(self) -> MonitorNode:
        """The fleet's Monitor Node (a :class:`ShardedMonitor` facade
        when ``monitor_shards`` is configured -- same API)."""
        return self.system.monitor

    def enable_contention_telemetry(
            self, busy_weight: float = 8.0) -> ContentionAwarePolicy:
        """Steer donor selection by *measured* link busy fractions.

        Installs (or re-wires) a
        :class:`~repro.runtime.policies.ContentionAwarePolicy` fed by
        the live event fabric's per-link telemetry.  Event backend
        only: the closed forms have no measured busy fractions.
        """
        telemetry = FabricContentionTelemetry(self.event_transport().fabric)
        policy = self.monitor.policy
        if isinstance(policy, ContentionAwarePolicy):
            policy.telemetry = telemetry
        else:
            policy = ContentionAwarePolicy(telemetry=telemetry,
                                           busy_weight=busy_weight)
            self.monitor.policy = policy
        return policy

    @property
    def nodes(self) -> Dict[int, VeniceNode]:
        return self.system.nodes

    @property
    def node_ids(self) -> List[int]:
        return self.system.node_ids

    def node(self, node_id: int) -> VeniceNode:
        return self.system.node(node_id)

    @property
    def num_nodes(self) -> int:
        return len(self.system.nodes)

    # ------------------------------------------------------------------
    # Cached fabric paths and channels
    # ------------------------------------------------------------------
    def path_between(self, src: int, dst: int) -> CachedFabricPath:
        """Cached, router-aware fabric path between two compute nodes.

        Route shape (hops and router crossings) comes from
        :meth:`VeniceSystem.path_between`; the cluster swaps in its own
        router model and the shared latency cache.  Cached queries are
        answered at :func:`~repro.core.channels.path.size_class`
        granularity -- exact for power-of-two payloads (every channel's
        request/cacheline/chunk size), rounded up otherwise.

        The returned path is memoized per (src, dst) -- callers share
        one object and must treat it as read-only (every consumer in
        the tree does; paths are value descriptors).
        """
        path = self._paths.get((src, dst))
        if path is None:
            base = self.system.path_between(src, dst,
                                            placement=self.config.placement)
            path = self._paths[(src, dst)] = CachedFabricPath(
                fabric=base.fabric,
                hops=base.hops,
                placement=base.placement,
                external_router=(self.config.router
                                 if base.external_router is not None else None),
                external_router_count=base.external_router_count,
                cache=self.latency_cache,
            )
        return path

    def crma_channel(self, recipient: int, donor: int) -> CrmaChannel:
        """CRMA channel from ``recipient`` towards ``donor``'s memory."""
        return self.system.crma_channel(recipient, donor,
                                        path=self.path_between(recipient, donor))

    def rdma_channel(self, recipient: int, donor: int) -> RdmaChannel:
        """RDMA channel from ``recipient`` towards ``donor``'s memory."""
        return self.system.rdma_channel(recipient, donor,
                                        path=self.path_between(recipient, donor))

    def qpair_channel(self, local: int, remote: int) -> QPairChannel:
        """QPair channel between two nodes."""
        return self.system.qpair_channel(local, remote,
                                         path=self.path_between(local, remote))

    def remote_read_latency_ns(self, requester: int, donor: int,
                               size_bytes: int = 64) -> int:
        """Closed-form CRMA read latency between two nodes."""
        return self.crma_channel(requester, donor).read_latency_ns(size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Cluster(nodes={self.num_nodes}, "
                f"topology={self.topology.name!r}, "
                f"policy={self.config.policy!r})")
