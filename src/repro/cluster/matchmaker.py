"""Borrower/donor matchmaking across a cluster fleet.

The :class:`Matchmaker` is the fleet-level front door to the Monitor
Node: it turns "node R wants memory / an accelerator / a NIC" into a
donor allocation (ordered by the cluster's donor-selection policy), a
transport channel over the cluster's cached fabric paths, and the
matching sharing mechanism from :mod:`repro.core.sharing`.  Every
active relationship is tracked as a :class:`ResourceShare` so sweeps
can measure per-share latency and throughput and tear everything down
again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.sharing.remote_accelerator import RemoteAcceleratorTarget
from repro.core.sharing.remote_memory import RemoteMemoryGrant
from repro.core.sharing.remote_nic import VirtualNic
from repro.runtime.monitor import (
    Allocation,
    AllocationError,
    BatchPlanEntry,
    BatchPlanError,
)
from repro.runtime.shard import ShardUnavailableError
from repro.runtime.tables import ResourceKind


@dataclass(eq=False)
class ResourceShare:
    """One active borrower/donor relationship in the fleet.

    Identity equality (``eq=False``): shares are tracked and removed as
    live objects, and two field-identical shares must stay distinct.
    """

    kind: ResourceKind
    requester: int
    donor: int
    #: Bytes for memory shares, unit count otherwise.
    amount: int
    allocation: Allocation
    #: Fabric links on the route (including links into/out of routers).
    link_hops: int
    #: Router nodes crossed on the route.
    router_crossings: int
    #: The transport channel serving the share (CRMA for memory, RDMA
    #: for accelerator staging, QPair for NIC forwarding).
    channel: object
    grant: Optional[RemoteMemoryGrant] = None
    target: Optional[RemoteAcceleratorTarget] = None
    vnic: Optional[VirtualNic] = None
    released: bool = False


class Matchmaker:
    """Assigns resource shares across the fleet via the Monitor Node."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.shares: List[ResourceShare] = []

    # ------------------------------------------------------------------
    # Individual borrows
    # ------------------------------------------------------------------
    def _record(self, kind: ResourceKind, requester: int,
                allocation: Allocation, amount: int, channel,
                **mechanism) -> ResourceShare:
        # The channel's path already encodes the route shape; reuse it
        # instead of re-running shortest-path queries on the topology.
        path = channel.path
        crossings = (path.external_router_count
                     if path.external_router is not None else 0)
        share = ResourceShare(
            kind=kind, requester=requester, donor=allocation.donor,
            amount=amount, allocation=allocation,
            link_hops=path.hops + crossings,
            router_crossings=crossings,
            channel=channel, **mechanism,
        )
        self.shares.append(share)
        return share

    def _borrow_memory_from(self, requester: int, size_bytes: int,
                            donor: Optional[int] = None) -> ResourceShare:
        """One Figure 2 flow: MN allocation (optionally pinned) + hot-plug."""
        allocation, grant = self.cluster.system.request_remote_memory(
            requester, size_bytes, donor=donor,
            channel_factory=lambda chosen: self.cluster.crma_channel(requester,
                                                                     chosen))
        return self._record(ResourceKind.MEMORY, requester, allocation,
                            size_bytes, grant.channel, grant=grant)

    def borrow_memory(self, requester: int, size_bytes: int,
                      spill: bool = True) -> List[ResourceShare]:
        """Borrow ``size_bytes`` of remote memory for ``requester``.

        Full Figure 2 flow against the policy-chosen donor, delegated to
        :meth:`VeniceSystem.request_remote_memory` with the CRMA channel
        built over the cluster's cached path.  When no single donor can
        cover the request and ``spill`` is true, the request is split
        across donors in policy-preference order (draining each donor's
        idle memory before moving on -- across leaves on a fat-tree), so
        a fleet with enough aggregate memory never refuses; each chunk
        becomes its own share with its own channel and grant.  Returns
        the created shares in allocation order (one entry in the common
        single-donor case).
        """
        try:
            return [self._borrow_memory_from(requester, size_bytes)]
        except AllocationError:
            if not spill:
                raise
        # Plan against advertised idle memory, then run one pinned
        # Figure 2 flow per planned chunk.  A stale record makes the
        # pinned request raise; unwind the partial borrow and surface
        # the failure rather than leave a half-satisfied request.
        plan = self.cluster.monitor.memory_spill_plan(requester, size_bytes)
        shares: List[ResourceShare] = []
        try:
            for donor, take in plan:
                shares.append(self._borrow_memory_from(requester, take,
                                                       donor=donor))
        except AllocationError:
            for share in reversed(shares):
                self.release(share)
            raise
        return shares

    # ------------------------------------------------------------------
    # Batched, overlappable borrows
    # ------------------------------------------------------------------
    def queue_requests(self,
                       requests: Sequence[Tuple[int, int]]) -> List[int]:
        """Park a batch of ``(requester, size)`` pairs on the MN queue.

        The batch must have the request queue to itself: planning
        consumes the *whole* queue, so requests parked there by another
        caller would be planned -- and allocated -- under this batch's
        name, misaligning the executed share lists.  A non-empty queue
        is therefore rejected up front.  Returns the issued tickets.
        """
        monitor = self.cluster.monitor
        if monitor.queued_requests:
            raise AllocationError(
                f"the MN request queue already holds "
                f"{monitor.queued_requests} parked request(s); plan them "
                "first -- a batch needs the queue to itself to keep "
                "its results aligned with its requests")
        return [monitor.queue_memory_request(requester, size_bytes)
                for requester, size_bytes in requests]

    def plan_queued(self) -> List["BatchPlanEntry"]:
        """Plan the parked batch, keeping the atomic-batch contract.

        On a capacity shortfall the MN re-queues every untouched ticket
        (:class:`BatchPlanError`); since this batch is all-or-nothing,
        those re-queued tickets are retired before re-raising so the
        queue is left clean for the caller's retry.  A
        :class:`ShardUnavailableError` (sharded monitor mid-crash) is
        passed through untouched -- the queue keeps the tickets and the
        failover replay owns them.
        """
        monitor = self.cluster.monitor
        try:
            return monitor.plan_queued_requests()
        except BatchPlanError as error:
            monitor.dequeue_tickets(error.requeued_tickets)
            raise

    def execute_plan(self, entries: Sequence["BatchPlanEntry"],
                     spill: bool = True) -> List[List[ResourceShare]]:
        """Run the pinned Figure 2 flow for every planned chunk.

        Each completed ticket is confirmed to the MN
        (:meth:`~repro.runtime.monitor.MonitorNode.complete_ticket`) so
        a sharded monitor retires it from crash-replay tracking.  On
        any failure the whole batch is unwound; if the failure was a
        shard-primary crash (:class:`ShardUnavailableError`) the
        batch's unfinished tickets stay in-flight so the promotion
        replays them, otherwise they are retired with the batch.
        """
        monitor = self.cluster.monitor
        results: List[List[ResourceShare]] = []
        created: List[ResourceShare] = []
        try:
            for entry in entries:
                if not spill and len(entry.plan) > 1:
                    raise AllocationError(
                        f"request for node {entry.requester} needs "
                        f"{len(entry.plan)} donors but spill is disabled")
                shares: List[ResourceShare] = []
                for donor, take in entry.plan:
                    share = self._borrow_memory_from(entry.requester, take,
                                                     donor=donor)
                    shares.append(share)
                    created.append(share)
                results.append(shares)
                monitor.complete_ticket(entry.ticket)
        except ShardUnavailableError:
            for share in reversed(created):
                self.release(share)
            raise
        except AllocationError:
            for share in reversed(created):
                self.release(share)
            for entry in entries:
                monitor.complete_ticket(entry.ticket)
            raise
        return results

    def borrow_queued(self, spill: bool = True) -> List[List[ResourceShare]]:
        """Plan and execute whatever is parked on the MN request queue.

        The retry entry point after a shard-primary failover: the
        promotion re-queued the replayed tickets, so planning the queue
        again finishes the interrupted batch.
        """
        return self.execute_plan(self.plan_queued(), spill=spill)

    def borrow_many(self, requests: Sequence[Tuple[int, int]],
                    spill: bool = True) -> List[List[ResourceShare]]:
        """Borrow memory for a whole batch of ``(requester, size)`` pairs.

        All requests are parked on the Monitor Node's request queue
        first, then donors are planned for the *entire* batch at once
        (:meth:`~repro.runtime.monitor.MonitorNode.plan_queued_requests`),
        so one batch never double-books a donor's idle memory and a
        sweep of N borrowers resolves its shares together instead of
        first-come-first-served.  Each planned chunk then runs the
        pinned Figure 2 flow.  On any stale-record failure the whole
        batch is unwound.  Returns one share list per request, aligned
        with ``requests`` order; pair with :meth:`touch_shares` to
        drive every borrower's first remote access concurrently over
        the fleet's event fabric.
        """
        self.queue_requests(requests)
        return self.borrow_queued(spill=spill)

    def touch_shares(self, shares: Sequence[ResourceShare],
                     size_bytes: int = 64) -> Dict[ResourceShare, int]:
        """Drive one first access per share concurrently (event backend).

        Submits one measured operation on every share's channel -- a
        CRMA read for memory shares, an RDMA page stage-in for
        accelerator shares, a QPair round trip for NIC shares -- and
        advances the fleet's shared simulator once for all of them, so
        the first accesses genuinely overlap and queue behind each
        other on shared links.  Returns each share's measured latency.
        """
        transport = self.cluster.event_transport()
        ops = []
        for share in shares:
            if share.kind is ResourceKind.MEMORY:
                ops.append(share.channel.submit_read(size_bytes))
            elif share.kind is ResourceKind.ACCELERATOR:
                ops.append(share.channel.submit_transfer(max(size_bytes, 64)))
            else:
                ops.append(share.channel.submit_round_trip(16,
                                                           max(size_bytes, 64)))
        transport.drive_all(ops)
        return {share: op.latency_ns for share, op in zip(shares, ops)}

    def borrow_accelerator(self, requester: int,
                           exclusive_mapping: bool = True) -> ResourceShare:
        """Borrow one remote accelerator (mailbox dispatch target)."""
        allocation = self.cluster.monitor.request_accelerator(requester)
        donor_node = self.cluster.node(allocation.donor)
        rdma = self.cluster.rdma_channel(requester, allocation.donor)
        target = RemoteAcceleratorTarget(
            accelerator=donor_node.primary_accelerator(),
            mailbox=donor_node.mailboxes[0],
            rdma=rdma,
            crma=self.cluster.crma_channel(requester, allocation.donor),
            qpair=self.cluster.qpair_channel(requester, allocation.donor),
            exclusive_mapping=exclusive_mapping,
        )
        return self._record(ResourceKind.ACCELERATOR, requester, allocation,
                            1, rdma, target=target)

    def borrow_nic(self, requester: int) -> ResourceShare:
        """Borrow one remote NIC as an IP-over-QPair virtual NIC."""
        allocation = self.cluster.monitor.request_nic(requester)
        donor_node = self.cluster.node(allocation.donor)
        qpair = self.cluster.qpair_channel(requester, allocation.donor)
        vnic = VirtualNic(real_nic=donor_node.primary_nic(), qpair=qpair)
        return self._record(ResourceKind.NIC, requester, allocation,
                            1, qpair, vnic=vnic)

    # ------------------------------------------------------------------
    # Fleet-level provisioning
    # ------------------------------------------------------------------
    def provision_fleet(self, memory_bytes_per_node: int = 0,
                        accelerators_per_node: int = 0,
                        nics_per_node: int = 0) -> List[ResourceShare]:
        """Every compute node borrows the requested shares from the fleet.

        Requesters are served in node order; the Monitor Node's donor
        policy spreads the matching donors.  Returns the newly created
        shares (in request order).
        """
        created: List[ResourceShare] = []
        for requester in self.cluster.node_ids:
            if memory_bytes_per_node > 0:
                created.extend(self.borrow_memory(requester,
                                                  memory_bytes_per_node))
            for _ in range(accelerators_per_node):
                created.append(self.borrow_accelerator(requester))
            for _ in range(nics_per_node):
                created.append(self.borrow_nic(requester))
        return created

    # ------------------------------------------------------------------
    # Teardown / queries
    # ------------------------------------------------------------------
    def release(self, share: ResourceShare) -> None:
        """Tear one share down and return the resource to its donor."""
        if share.released:
            raise ValueError("share is already released")
        if share.kind is ResourceKind.MEMORY:
            self.cluster.system.release_remote_memory(share.allocation,
                                                      share.grant)
        else:
            self.cluster.monitor.release(share.allocation)
        share.released = True
        self.shares.remove(share)

    def release_all(self) -> None:
        """Tear down every active share (newest first)."""
        for share in list(reversed(self.shares)):
            self.release(share)

    def shares_of_kind(self, kind: ResourceKind) -> List[ResourceShare]:
        return [share for share in self.shares if share.kind is kind]

    def shares_for_donor(self, donor: int) -> List[ResourceShare]:
        return [share for share in self.shares if share.donor == donor]
