"""Shared memoization of closed-form fabric-path latencies.

An N-node sweep touches O(N^2) routes and performs many accesses per
route, but only a handful of distinct (route shape, size class)
combinations actually exist: a fat-tree has two route shapes (same-leaf
and cross-leaf) regardless of N, and channel traffic clusters into a
few payload size classes.  :class:`ClusterLatencyCache` memoizes the
:class:`~repro.core.channels.path.CachedFabricPath` closed forms under
those keys, so cluster sweeps pay for each latency computation once and
answer every further access from the cache.  Hit/miss counters make the
fast path measurable.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.channels.path import size_class

__all__ = ["ClusterLatencyCache", "size_class"]


class ClusterLatencyCache:
    """Keyed memo store with hit/miss instrumentation."""

    def __init__(self, name: str = "cluster-latency-cache"):
        self.name = name
        self._entries: Dict[Tuple, int] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple, compute: Callable[[], int]) -> int:
        """Return the cached value for ``key``, computing it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._entries[key] = value
            return value
        self.hits += 1
        return value

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, float]:
        """Snapshot of the cache counters for reports."""
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ClusterLatencyCache(name={self.name!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
