"""NIC substrate: physical NIC model, software bridge, and Linux-style
bonding used by the remote-NIC sharing mechanism (Section 5.2.3).
"""

from repro.nic.nic import Nic, NicConfig
from repro.nic.bridge import SoftwareBridge, BridgeConfig
from repro.nic.bonding import BondedInterface

__all__ = [
    "Nic",
    "NicConfig",
    "SoftwareBridge",
    "BridgeConfig",
    "BondedInterface",
]
