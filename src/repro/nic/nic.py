"""Physical NIC model.

A NIC is characterised by its line rate, a per-packet processing cost
(descriptor handling, DMA, header processing) and a per-packet
wire overhead (preamble, Ethernet/IP/UDP headers, inter-frame gap).
Throughput for a stream of fixed-size packets is limited by whichever
of the two is the bottleneck -- which is exactly the effect Figure 16b
measures: tiny 4 B payloads are packet-rate bound while 256 B payloads
approach line rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import StatsRegistry

#: Ethernet + IP + UDP header bytes added to every payload.
WIRE_HEADER_BYTES = 42
#: Preamble + FCS + inter-frame gap, accounted as extra wire bytes.
WIRE_FRAMING_BYTES = 24
#: Minimum Ethernet payload (frames are padded up to this).
MIN_PAYLOAD_BYTES = 46


@dataclass
class NicConfig:
    """Static parameters of a NIC port."""

    name: str = "nic"
    line_rate_gbps: float = 1.0
    #: Per-packet host-side processing cost (driver + descriptor + DMA), ns.
    per_packet_overhead_ns: int = 550
    #: Maximum packets per second the NIC/driver pair can sustain.
    max_packet_rate_pps: float = 1.6e6

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0 or self.max_packet_rate_pps <= 0:
            raise ValueError("line rate and packet rate must be positive")
        if self.per_packet_overhead_ns < 0:
            raise ValueError("per-packet overhead must be non-negative")


class Nic:
    """A single NIC port with rate- and packet-limited throughput."""

    def __init__(self, config: Optional[NicConfig] = None, node_id: int = 0):
        self.config = config or NicConfig()
        self.node_id = node_id
        self.stats = StatsRegistry(self.config.name)

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes occupied on the wire by one payload (padded + framed)."""
        padded = max(payload_bytes, MIN_PAYLOAD_BYTES)
        return padded + WIRE_HEADER_BYTES + WIRE_FRAMING_BYTES

    def packet_time_ns(self, payload_bytes: int) -> float:
        """Time one packet occupies this NIC (max of wire and host cost)."""
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        wire_ns = self.wire_bytes(payload_bytes) * 8 / self.config.line_rate_gbps
        rate_ns = 1e9 / self.config.max_packet_rate_pps
        host_ns = self.config.per_packet_overhead_ns
        return max(wire_ns, rate_ns, host_ns)

    def throughput_gbps(self, payload_bytes: int, extra_per_packet_ns: float = 0.0) -> float:
        """Sustained goodput (payload bits only) for a fixed-size stream.

        ``extra_per_packet_ns`` lets callers add costs incurred outside
        the NIC itself, e.g. the IP-over-QPair forwarding path when the
        NIC is accessed remotely.
        """
        per_packet = self.packet_time_ns(payload_bytes) + extra_per_packet_ns
        if per_packet <= 0:
            return 0.0
        packets_per_second = 1e9 / per_packet
        self.stats.counter("throughput_queries").increment()
        return packets_per_second * payload_bytes * 8 / 1e9

    def ideal_throughput_gbps(self, payload_bytes: int) -> float:
        """Goodput if the NIC ran at pure line rate with no host limits."""
        return self.config.line_rate_gbps * payload_bytes / self.wire_bytes(payload_bytes)

    def line_rate_utilization(self, payload_bytes: int,
                              extra_per_packet_ns: float = 0.0) -> float:
        """Fraction of the goodput achievable at pure line rate."""
        ideal = self.ideal_throughput_gbps(payload_bytes)
        if ideal <= 0:
            return 0.0
        return min(1.0, self.throughput_gbps(payload_bytes, extra_per_packet_ns) / ideal)
