"""Linux-bonding-style NIC aggregation.

Section 5.2.3: the recipient node combines its local NIC and one or
more emulated remote NICs (VNIC front-ends) into a single virtual
interface using the Linux network bonding mechanism.  Traffic is
distributed across the member interfaces, so aggregate throughput is
the sum of the members' sustainable throughputs -- each member paying
its own per-packet costs (which, for remote members, include the
IP-over-QPair forwarding path).
"""

from __future__ import annotations

from typing import List, Sequence


class BondingError(RuntimeError):
    """Raised when a bond is constructed without members."""


class BondedInterface:
    """Aggregate of one or more NIC-like members.

    Members must expose ``throughput_gbps(payload_bytes)`` and
    ``line_rate_utilization(payload_bytes)`` -- satisfied both by
    :class:`repro.nic.nic.Nic` (local NIC) and by
    :class:`repro.core.sharing.remote_nic.VirtualNic` (remote NIC via
    IP-over-QPair).
    """

    def __init__(self, members: Sequence) -> None:
        if not members:
            raise BondingError("a bonded interface needs at least one member")
        self.members: List = list(members)

    @property
    def member_count(self) -> int:
        return len(self.members)

    def throughput_gbps(self, payload_bytes: int) -> float:
        """Aggregate goodput for a fixed-size packet stream."""
        return sum(member.throughput_gbps(payload_bytes) for member in self.members)

    def per_member_throughput(self, payload_bytes: int) -> List[float]:
        return [member.throughput_gbps(payload_bytes) for member in self.members]

    def line_rate_utilization(self, payload_bytes: int) -> float:
        """Aggregate goodput as a fraction of the members' combined line rate."""
        achieved = sum(member.throughput_gbps(payload_bytes) for member in self.members)
        ideal_total = sum(member.ideal_throughput_gbps(payload_bytes)
                          for member in self.members)
        if ideal_total <= 0:
            return 0.0
        return min(1.0, achieved / ideal_total)

    def speedup_over(self, baseline, payload_bytes: int) -> float:
        """Throughput ratio of this bond over a single baseline interface."""
        base = baseline.throughput_gbps(payload_bytes)
        if base <= 0:
            return 0.0
        return self.throughput_gbps(payload_bytes) / base
