"""Software network bridge.

On the donor node the back-end VNIC driver forwards packets to the real
NIC through the Linux software bridge (Figure 12).  The bridge adds a
per-packet CPU cost (lookup, header rewrite, queueing) which becomes
significant for small packets -- one of the reasons remote-NIC
utilisation is only ~40 % for 4 B payloads in Figure 16b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import StatsRegistry


@dataclass
class BridgeConfig:
    """Per-packet costs of the software bridge."""

    #: Forwarding cost per packet (FDB lookup, queueing), ns.
    per_packet_forward_ns: int = 1_500
    #: Additional copy cost per byte (header rewrite / skb copy), ns.
    per_byte_copy_ns: float = 0.2

    def __post_init__(self) -> None:
        if self.per_packet_forward_ns < 0 or self.per_byte_copy_ns < 0:
            raise ValueError("bridge costs must be non-negative")


class SoftwareBridge:
    """Donor-side bridge between the back-end VNIC driver and the real NIC."""

    def __init__(self, config: Optional[BridgeConfig] = None, node_id: int = 0):
        self.config = config or BridgeConfig()
        self.node_id = node_id
        self.stats = StatsRegistry("bridge")

    def forward_cost_ns(self, payload_bytes: int) -> float:
        """CPU time consumed forwarding one packet through the bridge."""
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        self.stats.counter("packets_forwarded").increment()
        return (self.config.per_packet_forward_ns
                + self.config.per_byte_copy_ns * payload_bytes)
