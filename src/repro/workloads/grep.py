"""Hadoop-Grep-style streaming scan workload.

The paper's Hadoop Grep job scans a 9.7 GB dataset.  The essential
access pattern is a single sequential pass over the input with a small
amount of per-record matching work -- a purely streaming, prefetch- and
page-friendly pattern, which is why Figure 15 shows Grep tolerating
page-granularity remote memory (RDMA swap) almost as well as the ideal
all-local configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import TimingCore
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class GrepConfig:
    """Parameters of the streaming-scan workload."""

    dataset_bytes: int = 32 * 1024 * 1024
    #: Record (line) size scanned per match step.
    record_bytes: int = 128
    #: Instructions per record (pattern comparison).
    instructions_per_record: int = 60
    #: Stride with which records are sampled; the scan touches every
    #: ``stride``-th record so large datasets stay tractable while the
    #: sequential page/line access pattern is preserved.
    stride_records: int = 1

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0 or self.record_bytes <= 0:
            raise ValueError("dataset and record size must be positive")
        if self.stride_records <= 0:
            raise ValueError("stride must be positive")

    @property
    def num_records(self) -> int:
        return max(1, self.dataset_bytes // self.record_bytes)


class GrepWorkload(Workload):
    """Sequential scan with per-record matching compute."""

    name = "grep"

    def __init__(self, config: GrepConfig = None):
        self.config = config or GrepConfig()

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        line_bytes = core.hierarchy.line_bytes
        lines_per_record = max(1, config.record_bytes // line_bytes)
        records_scanned = 0
        for record_index in range(0, config.num_records, config.stride_records):
            base = record_index * config.record_bytes
            core.compute(config.instructions_per_record)
            for line_index in range(lines_per_record):
                core.read(base + line_index * line_bytes)
            records_scanned += 1
        return self._finish(core, records_scanned=records_scanned,
                            bytes_scanned=records_scanned * config.record_bytes)
