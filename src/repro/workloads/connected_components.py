"""Spark Connected Components (CC) workload.

CC is the paper's example of a *contiguous* access pattern (Figure 17,
"CC contiguous access"): label propagation repeatedly streams through
the edge list in order, reading the labels of both endpoints and
writing the smaller label back.  Because the dominant traffic is the
sequential edge-list scan, this workload favours bulk transfers
(RDMA/page swapping) over fine-grained cacheline access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import TimingCore
from repro.sim.rng import DeterministicRNG
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class ConnectedComponentsConfig:
    """Parameters of the CC workload (paper: 8192 nodes, 21461 edges)."""

    num_vertices: int = 8_192
    num_edges: int = 21_461
    iterations: int = 4
    label_entry_bytes: int = 8
    edge_entry_bytes: int = 8
    instructions_per_edge: int = 10
    seed: int = 5

    def __post_init__(self) -> None:
        if self.num_vertices <= 0 or self.num_edges <= 0 or self.iterations <= 0:
            raise ValueError("vertices, edges and iterations must be positive")

    @property
    def edge_array_bytes(self) -> int:
        return self.num_edges * self.edge_entry_bytes

    @property
    def label_array_bytes(self) -> int:
        return self.num_vertices * self.label_entry_bytes

    @property
    def dataset_bytes(self) -> int:
        return self.edge_array_bytes + self.label_array_bytes


class ConnectedComponentsWorkload(Workload):
    """Label-propagation connected components with sequential scans."""

    name = "connected-components"

    def __init__(self, config: ConnectedComponentsConfig = None):
        self.config = config or ConnectedComponentsConfig()
        self.rng = DeterministicRNG(self.config.seed)
        # Pre-draw endpoints so every iteration streams the same edges.
        self._edges = [
            (self.rng.uniform_int(0, self.config.num_vertices - 1),
             self.rng.uniform_int(0, self.config.num_vertices - 1))
            for _ in range(self.config.num_edges)
        ]

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        edge_base = 0
        label_base = config.edge_array_bytes
        edges_processed = 0
        for _ in range(config.iterations):
            for edge_index, (src, dst) in enumerate(self._edges):
                edge_address = edge_base + edge_index * config.edge_entry_bytes
                src_label = label_base + src * config.label_entry_bytes
                dst_label = label_base + dst * config.label_entry_bytes
                core.compute(config.instructions_per_edge)
                core.read(edge_address)          # sequential scan
                core.read(src_label)
                core.read(dst_label)
                core.write(dst_label)            # propagate the smaller label
                edges_processed += 1
        return self._finish(core, edges_processed=edges_processed,
                            iterations=config.iterations)
