"""iPerf-style packet-stream workload.

iPerf measures sustainable network throughput for a stream of
fixed-size packets.  The paper uses it twice:

* Figure 16b -- throughput of a bonded interface combining the local
  NIC with one to three remote NICs, for tiny (4 B) and "normal"
  (256 B) payloads.
* Figure 17 -- message-passing over the three Venice transport
  channels, where QPair wins.

The workload measures throughput against any *interface-like* object
exposing ``throughput_gbps(payload_bytes)`` -- a single NIC, a bonded
interface, or a channel adapter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass
class IperfConfig:
    """Parameters of the packet-stream measurement."""

    #: Payload sizes to measure, bytes (paper: 4 B to 256 B).
    payload_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)
    #: Nominal measurement interval (documentation only -- throughput is
    #: computed in closed form from the per-packet costs).
    duration_s: float = 10.0

    def __post_init__(self) -> None:
        if not self.payload_sizes:
            raise ValueError("at least one payload size is required")
        if any(size <= 0 for size in self.payload_sizes):
            raise ValueError("payload sizes must be positive")


class IperfWorkload:
    """Throughput sweep over payload sizes for one interface."""

    name = "iperf"

    def __init__(self, config: IperfConfig = None):
        self.config = config or IperfConfig()

    def measure(self, interface) -> Dict[int, float]:
        """Goodput (Gbps) per payload size for ``interface``."""
        return {
            size: interface.throughput_gbps(size)
            for size in self.config.payload_sizes
        }

    def measure_utilization(self, interface) -> Dict[int, float]:
        """Line-rate utilisation per payload size for ``interface``."""
        return {
            size: interface.line_rate_utilization(size)
            for size in self.config.payload_sizes
        }

    def speedup_over(self, interface, baseline) -> Dict[int, float]:
        """Throughput of ``interface`` normalised to ``baseline``."""
        result = {}
        for size in self.config.payload_sizes:
            base = baseline.throughput_gbps(size)
            result[size] = interface.throughput_gbps(size) / base if base > 0 else 0.0
        return result
