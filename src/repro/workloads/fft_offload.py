"""SPLASH2-FFT accelerator-offload workload.

The Figure 16a experiment implements SPLASH2 FFT on Xilinx FFT
accelerators ("XFFT") and compares running with only the local
accelerator against adding one to three remote accelerators reached
through Venice.  The workload splits the input dataset into blocks and
dispatches each block to an accelerator; the per-task cost is the
accelerator's compute time plus the cost of moving the input and output
buffers to/from that accelerator (zero-ish for local, a channel
transfer for remote).

Accelerators are represented by *dispatch targets*: objects exposing
``task_latency_ns(input_bytes, output_bytes, elements)``.  The sharing
layer (:mod:`repro.core.sharing.remote_accelerator`) provides such
targets for both local and remote accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cpu.core import TimingCore
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class FftOffloadConfig:
    """Parameters of the FFT offload workload."""

    #: Total input dataset size (the paper uses 8 MB and 512 MB).
    dataset_bytes: int = 8 * 1024 * 1024
    #: Block size offloaded per accelerator task.
    block_bytes: int = 512 * 1024
    #: Bytes per complex element (two doubles).
    element_bytes: int = 16
    #: Host instructions per dispatched task (blocking, marshalling).
    instructions_per_task: int = 2_000

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0 or self.block_bytes <= 0 or self.element_bytes <= 0:
            raise ValueError("dataset, block and element sizes must be positive")
        if self.block_bytes > self.dataset_bytes:
            raise ValueError("block size cannot exceed the dataset size")

    @property
    def num_blocks(self) -> int:
        return max(1, self.dataset_bytes // self.block_bytes)

    @property
    def elements_per_block(self) -> int:
        return max(1, self.block_bytes // self.element_bytes)


class FftOffloadWorkload(Workload):
    """Dispatches FFT blocks round-robin over a pool of accelerators."""

    name = "fft-offload"

    def __init__(self, config: FftOffloadConfig = None,
                 targets: Sequence = ()):  # targets expose task_latency_ns(...)
        self.config = config or FftOffloadConfig()
        self.targets = list(targets)
        if not self.targets:
            raise ValueError("FFT offload needs at least one accelerator target")

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        # Busy-until time per accelerator target (they work in parallel).
        # Blocks are dispatched greedily to the target that will finish
        # soonest, as the user-level library load-balances across
        # accelerators of different effective speed (remote ones pay the
        # fabric transfer on top of compute).
        busy_until: List[float] = [0.0] * len(self.targets)
        dispatched = 0
        for _block_index in range(config.num_blocks):
            core.compute(config.instructions_per_task)
            target_index = min(range(len(self.targets)),
                               key=lambda index: busy_until[index])
            target = self.targets[target_index]
            task_ns = target.task_latency_ns(
                input_bytes=config.block_bytes,
                output_bytes=config.block_bytes,
                elements=config.elements_per_block,
            )
            start = max(core.now_ns, busy_until[target_index])
            busy_until[target_index] = start + task_ns
            dispatched += 1
        # The host waits for the last accelerator to finish.
        makespan = max(busy_until) if busy_until else core.now_ns
        if makespan > core.now_ns:
            core.stall(makespan - core.now_ns)
        return self._finish(core, blocks_dispatched=dispatched,
                            accelerators=len(self.targets))
