"""R-MAT synthetic graph generator.

Graph500 specifies R-MAT (recursive matrix) graphs; the paper runs
Graph500 at scale 22 with edge factor 14 and PageRank on a ~1.5 M
vertex / 8.7 M edge graph.  The generator here produces edge lists with
the same skewed degree distribution at configurable (scaled-down)
sizes, used by the Graph500 BFS and PageRank workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim.rng import DeterministicRNG


@dataclass
class RmatConfig:
    """R-MAT parameters (Graph500 defaults: a=0.57, b=c=0.19, d=0.05)."""

    scale: int = 12
    edge_factor: int = 14
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    seed: int = 7

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.edge_factor <= 0:
            raise ValueError("scale and edge_factor must be positive")
        if not 0 < self.a + self.b + self.c < 1.0 + 1e-9:
            raise ValueError("R-MAT quadrant probabilities must sum to less than 1")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.num_vertices * self.edge_factor

    @property
    def d(self) -> float:
        return 1.0 - self.a - self.b - self.c


class RmatGenerator:
    """Generates R-MAT edge lists deterministically from a seed."""

    def __init__(self, config: RmatConfig = None):
        self.config = config or RmatConfig()
        self.rng = DeterministicRNG(self.config.seed)

    def generate_edge(self) -> Tuple[int, int]:
        """Sample one (src, dst) edge with the R-MAT recursion."""
        config = self.config
        src = 0
        dst = 0
        for _ in range(config.scale):
            r = self.rng.uniform()
            src <<= 1
            dst <<= 1
            if r < config.a:
                pass                      # top-left quadrant
            elif r < config.a + config.b:
                dst |= 1                  # top-right
            elif r < config.a + config.b + config.c:
                src |= 1                  # bottom-left
            else:
                src |= 1
                dst |= 1                  # bottom-right
        return src, dst

    def generate(self, num_edges: int = None) -> List[Tuple[int, int]]:
        """Generate the full edge list (``num_edges`` overrides the config)."""
        count = num_edges if num_edges is not None else self.config.num_edges
        if count < 0:
            raise ValueError("edge count must be non-negative")
        return [self.generate_edge() for _ in range(count)]

    def degree_histogram(self, edges: List[Tuple[int, int]]) -> List[int]:
        """Out-degree per vertex (index = vertex id)."""
        degrees = [0] * self.config.num_vertices
        for src, _ in edges:
            degrees[src] += 1
        return degrees
