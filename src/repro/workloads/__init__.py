"""Workload generators.

Each workload reproduces the *access pattern* of one of the paper's
applications (Table 1) against the simulated memory hierarchy / fabric,
scaled down so experiments complete in seconds:

* :mod:`repro.workloads.kvstore` -- BerkeleyDB-style key/value store:
  random record accesses, 80/20 read/write OLTP mix, dependent queries.
* :mod:`repro.workloads.pagerank` -- PageRank: massively parallel,
  latency-tolerant vertex/edge traversal.
* :mod:`repro.workloads.connected_components` -- Spark CC: contiguous
  edge-list scans (bulk-transfer friendly).
* :mod:`repro.workloads.grep` -- Hadoop Grep: streaming scan.
* :mod:`repro.workloads.graph500` -- Graph500 BFS over an R-MAT graph.
* :mod:`repro.workloads.rediscache` -- Redis cache in front of a MySQL
  backing store (the Figure 13 mini data-center service).
* :mod:`repro.workloads.fft_offload` -- SPLASH2-FFT offload to (remote)
  accelerators.
* :mod:`repro.workloads.iperf` -- iPerf-style fixed-size packet streams.
* :mod:`repro.workloads.rmat` -- R-MAT synthetic graph generator.
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.kvstore import KeyValueWorkload, KeyValueConfig
from repro.workloads.pagerank import PageRankWorkload, PageRankConfig
from repro.workloads.connected_components import (
    ConnectedComponentsWorkload,
    ConnectedComponentsConfig,
)
from repro.workloads.grep import GrepWorkload, GrepConfig
from repro.workloads.graph500 import Graph500Workload, Graph500Config
from repro.workloads.rediscache import RedisCacheWorkload, RedisCacheConfig, MysqlBackingStore
from repro.workloads.fft_offload import FftOffloadWorkload, FftOffloadConfig
from repro.workloads.iperf import IperfWorkload, IperfConfig
from repro.workloads.rmat import RmatGenerator, RmatConfig

__all__ = [
    "Workload",
    "WorkloadResult",
    "KeyValueWorkload",
    "KeyValueConfig",
    "PageRankWorkload",
    "PageRankConfig",
    "ConnectedComponentsWorkload",
    "ConnectedComponentsConfig",
    "GrepWorkload",
    "GrepConfig",
    "Graph500Workload",
    "Graph500Config",
    "RedisCacheWorkload",
    "RedisCacheConfig",
    "MysqlBackingStore",
    "FftOffloadWorkload",
    "FftOffloadConfig",
    "IperfWorkload",
    "IperfConfig",
    "RmatGenerator",
    "RmatConfig",
]
