"""PageRank workload.

PageRank is the paper's example of a latency-*tolerant* application
(Section 4.2.1): its per-edge work items are independent, so a
sophisticated software implementation can keep many remote accesses in
flight (the "Async On-Chip QPair" configuration), while the naive
implementation issues them one at a time.

The access pattern per iteration is a sequential scan of the edge list
combined with random accesses into the source-rank array and
accumulating writes into the destination-contribution array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import TimingCore
from repro.sim.rng import DeterministicRNG
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class PageRankConfig:
    """Parameters of the PageRank workload."""

    num_vertices: int = 16_384
    num_edges: int = 95_000
    iterations: int = 1
    #: Bytes per rank entry (double) and per edge (two 32-bit ids).
    rank_entry_bytes: int = 8
    edge_entry_bytes: int = 8
    #: Instructions per processed edge (multiply-accumulate, bounds).
    instructions_per_edge: int = 12
    #: Issue remote/memory reads asynchronously (latency-tolerant code).
    asynchronous: bool = False
    #: Extra software overhead per edge for explicit-messaging versions
    #: (QPair library calls); 0 for load/store access.
    per_access_overhead_ns: int = 0
    seed: int = 3

    def __post_init__(self) -> None:
        if self.num_vertices <= 0 or self.num_edges <= 0 or self.iterations <= 0:
            raise ValueError("vertices, edges and iterations must be positive")

    @property
    def edge_array_bytes(self) -> int:
        return self.num_edges * self.edge_entry_bytes

    @property
    def rank_array_bytes(self) -> int:
        return self.num_vertices * self.rank_entry_bytes

    @property
    def dataset_bytes(self) -> int:
        """Total bytes of the edge list plus the two rank arrays."""
        return self.edge_array_bytes + 2 * self.rank_array_bytes


class PageRankWorkload(Workload):
    """Edge-centric PageRank with optional asynchronous issue."""

    name = "pagerank"

    def __init__(self, config: PageRankConfig = None):
        self.config = config or PageRankConfig()
        self.rng = DeterministicRNG(self.config.seed)

    def _addresses(self):
        """Base addresses of the edge list and the two rank arrays."""
        config = self.config
        edge_base = 0
        src_rank_base = config.edge_array_bytes
        dst_rank_base = src_rank_base + config.rank_array_bytes
        return edge_base, src_rank_base, dst_rank_base

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        edge_base, src_rank_base, dst_rank_base = self._addresses()
        edges_processed = 0
        for _ in range(config.iterations):
            for edge_index in range(config.num_edges):
                src = self.rng.uniform_int(0, config.num_vertices - 1)
                dst = self.rng.uniform_int(0, config.num_vertices - 1)
                edge_address = edge_base + edge_index * config.edge_entry_bytes
                src_address = src_rank_base + src * config.rank_entry_bytes
                dst_address = dst_rank_base + dst * config.rank_entry_bytes
                if config.per_access_overhead_ns:
                    core.stall(config.per_access_overhead_ns)
                core.compute(config.instructions_per_edge)
                if config.asynchronous:
                    core.read_async(edge_address)
                    core.read_async(src_address)
                    core.write_async(dst_address)
                else:
                    core.read(edge_address)
                    core.read(src_address)
                    core.write(dst_address)
                edges_processed += 1
            core.drain()
        return self._finish(core, edges_processed=edges_processed,
                            iterations=config.iterations)
