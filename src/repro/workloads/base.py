"""Common workload interface.

A workload drives a :class:`repro.cpu.TimingCore` by calling its
execution primitives (compute / read / write / stall) and returns a
:class:`WorkloadResult` with the elapsed simulated time plus
workload-specific metrics (e.g. cache-hit rate of the Redis service).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.core import ExecutionResult, TimingCore


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    execution: ExecutionResult
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time_ns(self) -> int:
        return self.execution.total_time_ns

    @property
    def total_time_s(self) -> float:
        return self.execution.total_time_s

    def metric(self, key: str, default: float = 0.0) -> float:
        return self.metrics.get(key, default)


class Workload:
    """Base class for all workload generators."""

    name = "workload"

    def run(self, core: TimingCore) -> WorkloadResult:
        """Execute the workload on ``core`` and return the result."""
        raise NotImplementedError

    def _finish(self, core: TimingCore, **metrics: float) -> WorkloadResult:
        """Helper: drain the core and package the result."""
        execution = core.result()
        return WorkloadResult(name=self.name, execution=execution, metrics=dict(metrics))


def record_address(index: int, record_bytes: int) -> int:
    """Byte address of record ``index`` in a densely packed array."""
    if index < 0 or record_bytes <= 0:
        raise ValueError("record index must be non-negative and record size positive")
    return index * record_bytes


def touch_record(core: TimingCore, address: int, record_bytes: int, line_bytes: int,
                 is_write: bool = False, asynchronous: bool = False) -> None:
    """Access every cache line of a record starting at ``address``."""
    lines = max(1, -(-record_bytes // line_bytes))
    for line_index in range(lines):
        line_address = address + line_index * line_bytes
        if asynchronous:
            if is_write:
                core.write_async(line_address)
            else:
                core.read_async(line_address)
        else:
            if is_write:
                core.write(line_address)
            else:
                core.read(line_address)
