"""BerkeleyDB-style key/value workload.

Reproduces the access pattern of the paper's in-memory database
experiments: a large record array accessed at random with an OLTP-like
80/20 read/write mix (Section 4.1), or grouped into client transactions
of five queries (four gets, one put -- Section 4.2.1, footnote 3).

The defining property for the Figure 5 comparison is that queries are
*dependent*: the client must check the return status of each query
before issuing the next, so asynchronous issue cannot hide remote
latency -- unlike PageRank.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import TimingCore
from repro.sim.rng import DeterministicRNG
from repro.workloads.base import Workload, WorkloadResult, record_address, touch_record


@dataclass
class KeyValueConfig:
    """Parameters of the key/value workload."""

    #: Total dataset size in bytes (the paper uses 1-6 GB; scaled down
    #: in experiments together with local-memory capacity).
    dataset_bytes: int = 64 * 1024 * 1024
    #: Size of one record (key + value + index overhead).
    record_bytes: int = 64
    #: Number of queries to execute.
    num_queries: int = 20_000
    #: Fraction of queries that are reads (0.8 = the paper's OLTP mix).
    read_fraction: float = 0.8
    #: CPU instructions per query (hashing, comparison, bookkeeping).
    instructions_per_query: int = 400
    #: Zipf skew of key popularity; 0 gives uniform random access.
    zipf_skew: float = 0.0
    #: Extra per-query software overhead in ns (e.g. explicit QPair
    #: messaging library costs); 0 for direct load/store access.
    per_query_overhead_ns: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0 or self.record_bytes <= 0 or self.num_queries <= 0:
            raise ValueError("dataset, record size and query count must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")

    @property
    def num_records(self) -> int:
        return max(1, self.dataset_bytes // self.record_bytes)


class KeyValueWorkload(Workload):
    """Random-access key/value store (BerkeleyDB / MySQL-style)."""

    name = "kvstore"

    def __init__(self, config: KeyValueConfig = None):
        self.config = config or KeyValueConfig()
        self.rng = DeterministicRNG(self.config.seed)

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        line_bytes = core.hierarchy.line_bytes
        reads = 0
        writes = 0
        for _ in range(config.num_queries):
            if config.zipf_skew > 0:
                index = self.rng.zipf_index(config.num_records, config.zipf_skew)
            else:
                index = self.rng.uniform_int(0, config.num_records - 1)
            address = record_address(index, config.record_bytes)
            is_write = not self.rng.bernoulli(config.read_fraction)
            if config.per_query_overhead_ns:
                core.stall(config.per_query_overhead_ns)
            core.compute(config.instructions_per_query)
            touch_record(core, address, config.record_bytes, line_bytes,
                         is_write=is_write)
            if is_write:
                writes += 1
            else:
                reads += 1
        return self._finish(
            core,
            queries=config.num_queries,
            reads=reads,
            writes=writes,
            read_fraction=reads / config.num_queries,
        )


class TransactionalKeyValueWorkload(Workload):
    """Client transactions of five queries: four gets and one put.

    Matches the BerkeleyDB setup of Section 4.2.1 (footnote 3); the
    response of each query is consumed before the next query is issued,
    so there is no exploitable intra-transaction parallelism.
    """

    name = "kvstore-txn"

    def __init__(self, config: KeyValueConfig = None, queries_per_transaction: int = 5):
        if queries_per_transaction <= 0:
            raise ValueError("queries_per_transaction must be positive")
        self.config = config or KeyValueConfig()
        self.queries_per_transaction = queries_per_transaction
        self.rng = DeterministicRNG(self.config.seed)

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        line_bytes = core.hierarchy.line_bytes
        transactions = max(1, config.num_queries // self.queries_per_transaction)
        for _ in range(transactions):
            for query_index in range(self.queries_per_transaction):
                index = self.rng.uniform_int(0, config.num_records - 1)
                address = record_address(index, config.record_bytes)
                # Last query of the transaction is the put.
                is_write = query_index == self.queries_per_transaction - 1
                if config.per_query_overhead_ns:
                    core.stall(config.per_query_overhead_ns)
                core.compute(config.instructions_per_query)
                touch_record(core, address, config.record_bytes, line_bytes,
                             is_write=is_write)
        return self._finish(core, transactions=transactions,
                            queries=transactions * self.queries_per_transaction)
