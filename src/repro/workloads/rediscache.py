"""Redis-cache-in-front-of-MySQL service (the Figure 13 mini data center).

One Venice node runs a Redis-style in-memory key/value cache whose
capacity is the memory available to it (local plus borrowed remote
memory).  Query misses fall through to a MySQL server modelled as a
disk-bound backing store on a separate x86 node.  The Figure 14
experiment sweeps the cache memory from 70 MB to 350 MB and shows that
(a) execution time is dominated by the miss penalty, so more memory --
local or remote -- buys a ~15x improvement, and (b) the local-vs-remote
difference only becomes visible (~7 %) once the miss rate is low.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cpu.core import TimingCore
from repro.sim.rng import DeterministicRNG
from repro.workloads.base import Workload, WorkloadResult, touch_record


@dataclass
class MysqlBackingStore:
    """Disk-bound MySQL query service reached over the data-center network.

    The paper's MySQL server holds 400 M x 64 B entries on an x86 node;
    a cache miss costs a network round trip plus a mostly-random disk
    access and query execution.
    """

    #: Average latency of one missed query served by MySQL, ns.
    miss_latency_ns: int = 18_000_000
    #: Network round-trip between the application server and MySQL, ns.
    network_rtt_ns: int = 250_000

    def query_latency_ns(self) -> int:
        return self.miss_latency_ns + self.network_rtt_ns


@dataclass
class RedisCacheConfig:
    """Parameters of the Redis cache service."""

    #: Memory available to the cache (local + borrowed), bytes.
    cache_capacity_bytes: int = 70 * 1024 * 1024
    #: Total number of distinct keys the clients query.
    key_space: int = 1_500_000
    #: Value size per record.
    record_bytes: int = 256
    #: Number of client queries to serve.
    num_queries: int = 10_000
    #: Instructions per query (hash lookup, protocol handling).
    instructions_per_query: int = 800
    #: Fraction of queries that are writes (cache refreshes).
    write_fraction: float = 0.0
    seed: int = 13

    def __post_init__(self) -> None:
        if self.cache_capacity_bytes <= 0 or self.key_space <= 0 or self.num_queries <= 0:
            raise ValueError("capacity, key space and query count must be positive")
        if self.record_bytes <= 0:
            raise ValueError("record size must be positive")

    @property
    def cache_capacity_records(self) -> int:
        return max(1, self.cache_capacity_bytes // self.record_bytes)

    @property
    def working_set_bytes(self) -> int:
        return self.key_space * self.record_bytes


class RedisCacheWorkload(Workload):
    """LRU key/value cache backed by a MySQL store."""

    name = "redis-cache"

    def __init__(self, config: RedisCacheConfig = None,
                 backing_store: MysqlBackingStore = None,
                 warm: bool = True):
        self.config = config or RedisCacheConfig()
        self.backing_store = backing_store or MysqlBackingStore()
        self.warm = warm
        self.rng = DeterministicRNG(self.config.seed)

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        line_bytes = core.hierarchy.line_bytes
        capacity = config.cache_capacity_records
        # key -> slot index in the cache memory region, LRU ordered.
        cache: OrderedDict = OrderedDict()
        free_slots = list(range(capacity))
        if self.warm:
            # Pre-populate with an arbitrary prefix of the key space, as
            # the paper measures after "proper initialization and warmup".
            for key in range(min(capacity, config.key_space)):
                cache[key] = free_slots.pop()
        hits = 0
        misses = 0
        for _ in range(config.num_queries):
            key = self.rng.uniform_int(0, config.key_space - 1)
            is_write = self.rng.bernoulli(config.write_fraction)
            core.compute(config.instructions_per_query)
            if key in cache:
                hits += 1
                cache.move_to_end(key)
                slot = cache[key]
                address = slot * config.record_bytes
                touch_record(core, address, config.record_bytes, line_bytes,
                             is_write=is_write)
            else:
                misses += 1
                core.stall(self.backing_store.query_latency_ns())
                if free_slots:
                    slot = free_slots.pop()
                else:
                    _, slot = cache.popitem(last=False)
                cache[key] = slot
                address = slot * config.record_bytes
                # Install the fetched record into cache memory.
                touch_record(core, address, config.record_bytes, line_bytes,
                             is_write=True)
        total = hits + misses
        return self._finish(
            core,
            queries=total,
            hits=hits,
            misses=misses,
            miss_rate=misses / total if total else 0.0,
        )
