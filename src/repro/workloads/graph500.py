"""Graph500 BFS workload over an R-MAT graph.

The paper runs Graph500 at R-MAT scale 22, edge factor 14.  The
reproduction builds a (scaled-down) R-MAT graph in CSR form and walks
it breadth-first: the traversal mixes a sequential scan of the frontier
with random accesses into the adjacency arrays and the visited map --
an irregular pattern that sits between the fully random key/value
workload and the fully streaming Grep scan, which is where Figure 15
places it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

from repro.cpu.core import TimingCore
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.rmat import RmatConfig, RmatGenerator


@dataclass
class Graph500Config:
    """Parameters of the BFS workload."""

    scale: int = 11
    edge_factor: int = 14
    #: Number of BFS roots traversed (Graph500 uses 64; scaled down).
    num_roots: int = 2
    vertex_entry_bytes: int = 8
    edge_entry_bytes: int = 8
    instructions_per_edge: int = 8
    seed: int = 11

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.edge_factor <= 0 or self.num_roots <= 0:
            raise ValueError("scale, edge factor and root count must be positive")

    @property
    def rmat(self) -> RmatConfig:
        return RmatConfig(scale=self.scale, edge_factor=self.edge_factor, seed=self.seed)

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.num_vertices * self.edge_factor

    @property
    def dataset_bytes(self) -> int:
        """CSR offsets + edge targets + visited/parent arrays."""
        return (self.num_vertices * self.vertex_entry_bytes * 2
                + self.num_edges * self.edge_entry_bytes)


class Graph500Workload(Workload):
    """Breadth-first search over a CSR-encoded R-MAT graph."""

    name = "graph500"

    def __init__(self, config: Graph500Config = None):
        self.config = config or Graph500Config()
        self._offsets, self._targets = self._build_csr()

    def _build_csr(self):
        generator = RmatGenerator(self.config.rmat)
        edges = generator.generate()
        adjacency: List[List[int]] = [[] for _ in range(self.config.num_vertices)]
        for src, dst in edges:
            adjacency[src].append(dst)
        offsets = [0]
        targets: List[int] = []
        for neighbors in adjacency:
            targets.extend(neighbors)
            offsets.append(len(targets))
        return offsets, targets

    def run(self, core: TimingCore) -> WorkloadResult:
        config = self.config
        offsets_base = 0
        targets_base = config.num_vertices * config.vertex_entry_bytes
        visited_base = targets_base + len(self._targets) * config.edge_entry_bytes
        edges_traversed = 0
        vertices_visited = 0
        for root_index in range(config.num_roots):
            root = (root_index * 7919) % config.num_vertices
            visited = bytearray(config.num_vertices)
            frontier = deque([root])
            visited[root] = 1
            while frontier:
                vertex = frontier.popleft()
                vertices_visited += 1
                core.read(offsets_base + vertex * config.vertex_entry_bytes)
                start, end = self._offsets[vertex], self._offsets[vertex + 1]
                for edge_index in range(start, end):
                    neighbor = self._targets[edge_index]
                    core.compute(config.instructions_per_edge)
                    core.read(targets_base + edge_index * config.edge_entry_bytes)
                    core.read(visited_base + neighbor * config.vertex_entry_bytes)
                    edges_traversed += 1
                    if not visited[neighbor]:
                        visited[neighbor] = 1
                        core.write(visited_base + neighbor * config.vertex_entry_bytes)
                        frontier.append(neighbor)
        return self._finish(core, edges_traversed=edges_traversed,
                            vertices_visited=vertices_visited)
