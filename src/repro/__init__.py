"""repro: a reproduction of "Venice: Exploring Server Architectures for
Effective Resource Sharing" (Dong et al., HPCA 2016) as a
cycle-approximate simulation library.

The package is organised in three tiers:

* **Substrates** -- :mod:`repro.sim` (discrete-event engine),
  :mod:`repro.fabric` (interconnect), :mod:`repro.mem`,
  :mod:`repro.cpu`, :mod:`repro.interconnects` (commodity baselines),
  :mod:`repro.accel`, :mod:`repro.nic`, :mod:`repro.workloads`.
* **The Venice architecture** -- :mod:`repro.core` (transport channels,
  resource-sharing mechanisms, node and system composition) and
  :mod:`repro.runtime` (the Monitor-Node resource-management runtime).
* **Evaluation** -- :mod:`repro.analysis` and :mod:`repro.experiments`,
  one driver per table/figure of the paper's evaluation section.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
