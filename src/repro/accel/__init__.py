"""Accelerator substrate.

The paper's accelerator case study (Section 5.2.2 / Figure 16a) offloads
SPLASH2 FFT to Xilinx-implemented FFT accelerators ("XFFT") and mentions
crypto accelerators in its mailbox example.  This package models the
accelerator devices themselves and the mailbox abstraction Venice uses
to expose a (possibly remote) accelerator to applications.
"""

from repro.accel.device import (
    Accelerator,
    AcceleratorConfig,
    FftAccelerator,
    CryptoAccelerator,
)
from repro.accel.mailbox import Mailbox, MailboxTask, MailboxState

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "FftAccelerator",
    "CryptoAccelerator",
    "Mailbox",
    "MailboxTask",
    "MailboxState",
]
