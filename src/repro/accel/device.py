"""Accelerator device models (XFFT, crypto).

An accelerator consumes an input buffer, computes for a data-dependent
amount of time, and produces an output buffer.  The timing model is a
fixed launch overhead plus a throughput term; for the FFT accelerator
the compute term scales as ``n log n`` over the element count, matching
the blocked SPLASH2 FFT kernel the paper offloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.sim.stats import StatsRegistry


@dataclass
class AcceleratorConfig:
    """Timing parameters of an accelerator device."""

    name: str = "accel"
    #: Fixed per-task launch overhead (configuration, DMA kick), ns.
    launch_overhead_ns: int = 5_000
    #: Input/output streaming bandwidth between memory and the device, GB/s.
    io_bandwidth_gbps: float = 12.8
    #: Processing throughput in elements (or bytes) per microsecond.
    elements_per_us: float = 2000.0

    def __post_init__(self) -> None:
        if self.io_bandwidth_gbps <= 0 or self.elements_per_us <= 0:
            raise ValueError("bandwidth and throughput must be positive")
        if self.launch_overhead_ns < 0:
            raise ValueError("launch overhead must be non-negative")


class Accelerator:
    """Base accelerator: launch overhead + IO streaming + compute."""

    def __init__(self, config: Optional[AcceleratorConfig] = None, node_id: int = 0):
        self.config = config or AcceleratorConfig()
        self.node_id = node_id
        self.stats = StatsRegistry(self.config.name)
        self.busy_until_ns = 0

    def io_time_ns(self, data_bytes: int) -> int:
        """Time to stream ``data_bytes`` between node memory and the device."""
        if data_bytes < 0:
            raise ValueError("data size must be non-negative")
        return int(data_bytes * 8 / self.config.io_bandwidth_gbps)

    def compute_time_ns(self, elements: int) -> int:
        """Pure computation time for ``elements`` input elements."""
        if elements < 0:
            raise ValueError("element count must be non-negative")
        return int(elements / self.config.elements_per_us * 1000)

    def task_time_ns(self, input_bytes: int, output_bytes: int, elements: int) -> int:
        """Total occupancy of the device for one offloaded task."""
        total = (self.config.launch_overhead_ns
                 + self.io_time_ns(input_bytes)
                 + self.compute_time_ns(elements)
                 + self.io_time_ns(output_bytes))
        self.stats.counter("tasks").increment()
        self.stats.counter("busy_ns").increment(total)
        return total


class FftAccelerator(Accelerator):
    """XFFT-style accelerator: compute scales as n log2 n."""

    def __init__(self, config: Optional[AcceleratorConfig] = None, node_id: int = 0):
        super().__init__(config or AcceleratorConfig(name="xfft", elements_per_us=150.0),
                         node_id=node_id)

    def compute_time_ns(self, elements: int) -> int:
        if elements < 0:
            raise ValueError("element count must be non-negative")
        if elements <= 1:
            return 0
        work = elements * math.log2(elements)
        return int(work / self.config.elements_per_us * 1000)


class CryptoAccelerator(Accelerator):
    """Block-cipher style accelerator: compute scales linearly with bytes."""

    def __init__(self, config: Optional[AcceleratorConfig] = None, node_id: int = 0):
        super().__init__(config or AcceleratorConfig(name="crypto", elements_per_us=8000.0),
                         node_id=node_id)
