"""Mailbox abstraction for (remote) accelerator access.

Section 5.2.2: Venice abstracts accelerators as message-passing
mailboxes pinned in memory.  A mailbox contains a request buffer (the
executable / command), an input-data buffer, a return-data buffer, a
task-start flag and a completion flag.  A kernel thread on the donor
node polls the mailbox and launches tasks on the physical accelerator
on behalf of recipient nodes.

The mailbox here is a functional state machine with explicit buffer
sizes so the sharing layer can charge the correct data-movement costs
for filling/draining the buffers over a transport channel.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class MailboxState(enum.Enum):
    """Lifecycle of a mailbox slot."""

    IDLE = "idle"
    REQUEST_POSTED = "request_posted"
    RUNNING = "running"
    COMPLETE = "complete"


_task_ids = itertools.count()


@dataclass
class MailboxTask:
    """One offloaded task posted into a mailbox."""

    kernel: str
    input_bytes: int
    output_bytes: int
    elements: int
    task_id: int = field(default_factory=lambda: next(_task_ids))
    posted_at_ns: int = 0
    completed_at_ns: int = 0

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.output_bytes < 0 or self.elements < 0:
            raise ValueError("task sizes must be non-negative")


class MailboxError(RuntimeError):
    """Raised on protocol violations (e.g. posting to a busy mailbox)."""


class Mailbox:
    """Request/input/output buffers plus start and completion flags."""

    def __init__(self, owner_node: int, request_buffer_bytes: int = 4096,
                 data_buffer_bytes: int = 4 * 1024 * 1024):
        if request_buffer_bytes <= 0 or data_buffer_bytes <= 0:
            raise ValueError("buffer sizes must be positive")
        self.owner_node = owner_node
        self.request_buffer_bytes = request_buffer_bytes
        self.data_buffer_bytes = data_buffer_bytes
        self.state = MailboxState.IDLE
        self.current_task: Optional[MailboxTask] = None
        self.tasks_completed = 0

    def post(self, task: MailboxTask, now_ns: int = 0) -> None:
        """Write the request/input buffers and raise the start flag."""
        if self.state not in (MailboxState.IDLE, MailboxState.COMPLETE):
            raise MailboxError(
                f"mailbox on node {self.owner_node} is busy ({self.state.value})"
            )
        if task.input_bytes > self.data_buffer_bytes:
            raise MailboxError(
                f"input of {task.input_bytes} bytes exceeds the mailbox data buffer "
                f"({self.data_buffer_bytes} bytes)"
            )
        task.posted_at_ns = now_ns
        self.current_task = task
        self.state = MailboxState.REQUEST_POSTED

    def launch(self) -> MailboxTask:
        """Donor-side kernel thread picks up the posted task."""
        if self.state != MailboxState.REQUEST_POSTED or self.current_task is None:
            raise MailboxError("no task posted to launch")
        self.state = MailboxState.RUNNING
        return self.current_task

    def complete(self, now_ns: int = 0) -> MailboxTask:
        """Mark the running task finished and raise the completion flag."""
        if self.state != MailboxState.RUNNING or self.current_task is None:
            raise MailboxError("no running task to complete")
        self.current_task.completed_at_ns = now_ns
        self.state = MailboxState.COMPLETE
        self.tasks_completed += 1
        return self.current_task

    def collect(self) -> MailboxTask:
        """Recipient reads the return buffer and frees the mailbox."""
        if self.state != MailboxState.COMPLETE or self.current_task is None:
            raise MailboxError("no completed task to collect")
        task, self.current_task = self.current_task, None
        self.state = MailboxState.IDLE
        return task

    @property
    def is_idle(self) -> bool:
        return self.state == MailboxState.IDLE
