"""simlint rules: AST checks for the event engine's correctness contracts.

Each rule encodes one bug class this codebase has actually hit (or is
structurally exposed to):

========  ==============================================================
SIM001    Iteration over unordered ``dict``/``set`` views in modules
          that schedule events or plan donor batches.  Dict iteration
          order is insertion order, i.e. construction *history*; when it
          feeds event scheduling or donor selection, two runs that build
          the same logical state along different paths diverge.
SIM002    ``random`` / ``time.time()`` / ``datetime.now()`` outside
          ``sim/rng.py``.  All stochastic behaviour must flow through
          :class:`~repro.sim.rng.DeterministicRNG`; wall-clock reads are
          nondeterminism by definition.
SIM003    Loop-variable capture in scheduled callbacks.  A ``lambda``
          (or nested ``def``) handed to the scheduler from inside a loop
          closes over the loop *variable*, not its current value; every
          callback fires with the final iteration's value.
SIM004    Missing ``__slots__`` on hot-path classes in ``sim/`` /
          ``fabric/``.  Per-instance ``__dict__`` costs memory and
          attribute-lookup time on the per-packet path, and open
          instance dicts invite monkeypatched state the engine cannot
          replay.
SIM005    Float arithmetic on ns-time values.  Simulated time is an
          integer nanosecond count; float intermediates introduce
          platform-dependent rounding, which is nondeterminism.
SIM006    Add-only registry heuristic: an instance dict that gains keys
          but never loses them -- the shape of the PR 2
          ``replay_attempts_{seq}`` counter leak.
SIM007    Direct access to ``Simulator`` dispatch internals
          (``_queue``, ``_ready``, the lane/calendar state) outside
          ``sim/``.  Those structures are an implementation detail of
          the *Python* engine; the compiled core keeps its timers in C
          storage, so outside pokes silently see an empty queue or
          corrupt only one of the two engines.  Go through the public
          API (``schedule``/``cancel``/``peek``/``step``/``len``).
========  ==============================================================

All rules are heuristics tuned to this tree; per-line suppressions
(``# simlint: disable=SIMnnn -- reason``) and the committed baseline
handle the deliberate exceptions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Call names whose presence marks a module as *order-sensitive*: it
#: schedules events or plans donor batches, so any unordered iteration
#: can leak construction history into event order (SIM001 scope).
ORDER_SENSITIVE_CALLS = frozenset({
    "schedule", "schedule_at", "call_soon", "call_after", "_call_after",
    "_call_soon", "schedule_replenish", "inject", "send_and_forget",
    "offer", "spawn",
})

#: Function-name fragments that mark a module as order-sensitive even
#: without direct scheduling calls (the Monitor Node's batch planners).
ORDER_SENSITIVE_DEF_FRAGMENTS = ("plan", "donor")

#: Reducers whose result does not depend on iteration order; dict-view
#: comprehensions feeding these are exempt from SIM001.
ORDER_INSENSITIVE_SINKS = frozenset({
    "sum", "len", "any", "all", "min", "max", "set", "sorted", "frozenset",
})

#: Dict/set view methods whose iteration order is insertion history.
UNORDERED_VIEW_METHODS = frozenset({"values", "keys", "items"})

#: Callback-accepting entry points: scheduling calls plus the local
#: callback registration points of the fabric/transport layers (SIM003
#: scope -- anywhere a closure outlives the loop iteration).
CALLBACK_SINKS = ORDER_SENSITIVE_CALLS | frozenset({"add_waiter", "expect"})

#: Modules whose import anywhere outside ``sim/rng.py`` is a
#: determinism hazard (SIM002).
NONDETERMINISTIC_MODULES = frozenset({"random", "time", "datetime"})

#: ``Simulator`` dispatch-state attributes (timer heap, ready deque,
#: FIFO-lane and calendar bookkeeping, and the C-core shadow).  Touching
#: these from outside ``sim/`` couples callers to one engine's layout
#: (SIM007 scope); names are specific enough that collisions with other
#: classes' private state are unlikely.
ENGINE_INTERNAL_ATTRS = frozenset({
    "_queue", "_ready", "_lane_map", "_lane_seen", "_lane_count",
    "_cal_buckets", "_cal_count", "_eng",
})

#: Base-class names that exempt a class from SIM004 (not hot-path
#: instance state: enums, exceptions, typing constructs).
SLOTS_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Exception",
    "BaseException", "RuntimeError", "ValueError", "TypeError",
    "NamedTuple", "Protocol", "TypedDict", "ABC",
})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    line_text: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Location-stable identity used by the baseline.

        Line *text* rather than line *number*: edits above a finding
        must not make it read as new, and a genuinely new copy of an
        already-baselined line shows up as an increased count.
        """
        return (self.path, self.rule, self.line_text)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _call_name(node: ast.Call) -> Optional[str]:
    """Callee name of a call: ``foo(...)`` or ``obj.foo(...)`` -> ``foo``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_unordered_view_call(node: ast.AST) -> Optional[str]:
    """Return the view method name when ``node`` is ``<expr>.values()`` etc."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr in UNORDERED_VIEW_METHODS
            and not node.args and not node.keywords):
        return node.func.attr
    return None


def _free_names(node: ast.AST, bound: Set[str]) -> Set[str]:
    """Names loaded inside ``node`` that are not locally ``bound``."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            if child.id not in bound:
                names.add(child.id)
    return names


def _lambda_params(node: ast.Lambda) -> Set[str]:
    args = node.args
    params = [a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return set(params)


def _target_names(target: ast.AST) -> Set[str]:
    """All plain names bound by a loop/assignment target."""
    names: Set[str] = set()
    for child in ast.walk(target):
        if isinstance(child, ast.Name):
            names.add(child.id)
    return names


class ModuleLinter(ast.NodeVisitor):
    """One linting pass over one module's AST."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 is_rng_module: bool, hot_path_module: bool,
                 time_value_module: bool, sim_module: bool = False):
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self.is_rng_module = is_rng_module
        self.hot_path_module = hot_path_module
        self.time_value_module = time_value_module
        self.sim_module = sim_module
        self.findings: List[Finding] = []
        self.order_sensitive = self._module_is_order_sensitive(tree)
        #: Stack of loop-target name sets for SIM003.
        self._loop_targets: List[Set[str]] = []
        #: Parents of every node, for sink-context queries.
        self._parent: Dict[ast.AST, ast.AST] = {}  # simlint: disable=SIM006 -- bounded by the module AST, one pass per module
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parent[child] = parent

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _module_is_order_sensitive(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ORDER_SENSITIVE_CALLS:
                    return True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if any(fragment in lowered
                       for fragment in ORDER_SENSITIVE_DEF_FRAGMENTS):
                    return True
        return False

    def _line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            path=self.path, line=lineno,
            col=getattr(node, "col_offset", 0) + 1, rule=rule,
            message=message, line_text=self._line_text(lineno)))

    # ------------------------------------------------------------------
    # SIM001 -- unordered iteration in order-sensitive modules
    # ------------------------------------------------------------------
    def _feeds_order_insensitive_sink(self, node: ast.AST) -> bool:
        """True when a comprehension's result is reduced order-insensitively."""
        parent = self._parent.get(node)
        # GeneratorExp passed bare: sum(x for ...) -- the genexp's parent
        # IS the call.  Comprehensions: sum([...]) / sum({...}).
        if isinstance(parent, ast.Call):
            name = _call_name(parent)
            if name in ORDER_INSENSITIVE_SINKS:
                return True
        return False

    def _check_unordered_iter(self, iter_node: ast.AST,
                              context: ast.AST) -> None:
        if not self.order_sensitive:
            return
        view = _is_unordered_view_call(iter_node)
        if view is None:
            return
        if self._feeds_order_insensitive_sink(context):
            return
        self._report(
            iter_node, "SIM001",
            f"iteration over dict .{view}() in an event-scheduling/"
            "donor-planning module depends on insertion history; iterate "
            "a sorted() or explicitly ordered sequence")

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter, node)
        self._loop_targets.append(_target_names(node.target))
        self._check_loop_captures(node)
        self.generic_visit(node)
        self._loop_targets.pop()

    def visit_While(self, node: ast.While) -> None:
        self._loop_targets.append(set())
        self.generic_visit(node)
        self._loop_targets.pop()

    def _visit_comprehension_node(self, node) -> None:
        for comp in node.generators:
            self._check_unordered_iter(comp.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    # ------------------------------------------------------------------
    # SIM002 -- wall-clock / unseeded randomness
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if not self.is_rng_module:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in NONDETERMINISTIC_MODULES:
                    self._report(
                        node, "SIM002",
                        f"import of {root!r} outside sim/rng.py: draw from "
                        "DeterministicRNG / simulated time instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.is_rng_module and node.module:
            root = node.module.split(".")[0]
            if root in NONDETERMINISTIC_MODULES:
                self._report(
                    node, "SIM002",
                    f"import from {root!r} outside sim/rng.py: draw from "
                    "DeterministicRNG / simulated time instead")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # SIM003 -- loop-variable capture in scheduled callbacks
    # ------------------------------------------------------------------
    def _check_loop_captures(self, loop: ast.For) -> None:
        loop_vars = self._loop_targets[-1]
        if not loop_vars:
            return
        nested_defs: Dict[str, ast.FunctionDef] = {}
        for child in ast.walk(loop):
            if isinstance(child, ast.FunctionDef):
                nested_defs[child.name] = child
        for child in ast.walk(loop):
            if not isinstance(child, ast.Call):
                continue
            if _call_name(child) not in CALLBACK_SINKS:
                continue
            for arg in list(child.args) + [kw.value for kw in child.keywords]:
                captured = self._captured_loop_vars(arg, loop_vars,
                                                   nested_defs)
                if captured:
                    names = ", ".join(sorted(captured))
                    self._report(
                        arg, "SIM003",
                        f"callback captures loop variable(s) {names} by "
                        "reference; every firing sees the last iteration's "
                        "value -- bind with a default argument "
                        "(lambda v=v: ...) or pass via scheduler args")

    @staticmethod
    def _captured_loop_vars(arg: ast.AST, loop_vars: Set[str],
                            nested_defs: Dict[str, ast.FunctionDef]
                            ) -> Set[str]:
        if isinstance(arg, ast.Lambda):
            # Params with defaults (lambda v=v: ...) bind at definition
            # time -- the safe idiom -- and params are excluded from the
            # free set either way.
            return _free_names(arg.body, _lambda_params(arg)) & loop_vars
        if isinstance(arg, ast.Name) and arg.id in nested_defs:
            fdef = nested_defs[arg.id]
            args = fdef.args
            bound = {a.arg for a in
                     (args.posonlyargs + args.args + args.kwonlyargs)}
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
            free = set()
            for stmt in fdef.body:
                free |= _free_names(stmt, bound)
            return free & loop_vars
        return set()

    # ------------------------------------------------------------------
    # SIM004 -- missing __slots__ on hot-path classes
    # ------------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot_path_module and not self._slots_exempt(node):
            has_slots = any(
                isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets)
                for stmt in node.body)
            if not has_slots:
                self._report(
                    node, "SIM004",
                    f"hot-path class {node.name!r} has no __slots__; "
                    "per-instance __dict__ costs memory and lookup time "
                    "on the per-packet path")
        self.generic_visit(node)

    @staticmethod
    def _slots_exempt(node: ast.ClassDef) -> bool:
        name = node.name
        if name.endswith(("Config", "Error", "Exception", "Warning")):
            return True
        for base in node.bases:
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None)
            if base_name in SLOTS_EXEMPT_BASES:
                return True
            if base_name and base_name.endswith(("Error", "Exception",
                                                 "Warning")):
                return True
        for decorator in node.decorator_list:
            if (isinstance(decorator, ast.Call)
                    and _call_name(decorator) == "dataclass"):
                for kw in decorator.keywords:
                    if (kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True):
                        return True
        return False

    # ------------------------------------------------------------------
    # SIM005 -- float arithmetic on ns-time values
    # ------------------------------------------------------------------
    @staticmethod
    def _is_ns_target(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name) and target.id.endswith("_ns"):
            return target.id
        if isinstance(target, ast.Attribute) and target.attr.endswith("_ns"):
            return target.attr
        return None

    @classmethod
    def _float_taint(cls, node: ast.AST) -> bool:
        """True when the expression can produce a float.

        ``int(...)`` / ``round(...)`` conversions launder the taint: the
        rule is about float values *escaping into* time arithmetic, not
        about using division to derive a duration.
        """
        if isinstance(node, ast.Call):
            if _call_name(node) in ("int", "round"):
                return False
            return any(cls._float_taint(arg) for arg in node.args)
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return cls._float_taint(node.left) or cls._float_taint(node.right)
        return any(cls._float_taint(child)
                   for child in ast.iter_child_nodes(node))

    def _check_ns_assignment(self, node, targets: Sequence[ast.AST],
                             value: Optional[ast.AST]) -> None:
        if not self.time_value_module or value is None:
            return
        for target in targets:
            name = self._is_ns_target(target)
            if name and self._float_taint(value):
                self._report(
                    node, "SIM005",
                    f"float arithmetic assigned to ns-time value "
                    f"{name!r}; simulated time must stay integral "
                    "(use //, or wrap in int(round(...)))")
                return

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_ns_assignment(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        taints = self._float_taint(node.value) or isinstance(node.op, ast.Div)
        if (self.time_value_module and self._is_ns_target(node.target)
                and taints):
            self._report(
                node, "SIM005",
                "float arithmetic folded into an ns-time value; simulated "
                "time must stay integral (use //, or wrap in int(round(...)))")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_ns_assignment(node, [node.target], node.value)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # SIM007 -- engine dispatch internals touched outside sim/
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        # ``self._queue`` is a class's own private state (any class may
        # name an attribute that way); the hazard is reaching *into*
        # another object's dispatch structures from outside sim/.
        if (not self.sim_module
                and node.attr in ENGINE_INTERNAL_ATTRS
                and self._self_attr(node) is None):
            self._report(
                node, "SIM007",
                f"direct access to engine internal .{node.attr} outside "
                "sim/; the compiled core does not share the Python "
                "engine's dispatch structures -- use the public API "
                "(schedule/cancel/peek/step/len)")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # SIM006 -- add-only registry heuristic
    # ------------------------------------------------------------------
    def check_add_only_registries(self) -> None:
        """Flag instance dicts that gain keys but never lose them.

        Scans each class: an attribute initialised to ``{}``/``dict()``
        in ``__init__`` that is written through subscript/``setdefault``
        somewhere in the class, with no ``del``/``pop``/``popitem``/
        ``clear``/reassignment anywhere, is the replay-counter-leak
        shape -- unbounded growth proportional to traffic, not to
        configuration.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class_registries(node)

    def _check_class_registries(self, cls_node: ast.ClassDef) -> None:
        init = next((stmt for stmt in cls_node.body
                     if isinstance(stmt, ast.FunctionDef)
                     and stmt.name == "__init__"), None)
        if init is None:
            return
        candidates: Dict[str, ast.AST] = {}
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            if value is None or not self._is_empty_dict(value):
                continue
            for target in targets:
                attr = self._self_attr(target)
                if attr is not None:
                    candidates[attr] = stmt
        if not candidates:
            return
        inserted: Set[str] = set()
        removed: Set[str] = set()
        for node in ast.walk(cls_node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr:
                            inserted.add(attr)
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr:
                            removed.add(attr)
            if isinstance(node, ast.Call) and isinstance(node.func,
                                                         ast.Attribute):
                if node.func.attr in ("pop", "popitem", "clear"):
                    attr = self._self_attr(node.func.value)
                    if attr:
                        removed.add(attr)
                if node.func.attr == "setdefault":
                    attr = self._self_attr(node.func.value)
                    if attr:
                        inserted.add(attr)
        for attr in sorted((inserted - removed) & set(candidates)):
            self._report(
                candidates[attr], "SIM006",
                f"registry self.{attr} only ever gains keys (no del/pop/"
                "clear anywhere in the class); if growth tracks traffic "
                "rather than configuration this is the replay-counter "
                "leak shape")

    @staticmethod
    def _is_empty_dict(node: ast.AST) -> bool:
        if isinstance(node, ast.Dict) and not node.keys:
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "dict" and not node.args
                and not node.keywords)

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        self.visit(self.tree)
        self.check_add_only_registries()
        self.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return self.findings
