"""CLI entry point: ``python -m repro.analysis.simlint src/``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.simlint import (
    diff_against_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "simlint_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simlint",
        description="Static analysis for the event engine's correctness "
                    "contracts (determinism, leaks, hot-path hygiene).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of accepted findings "
                             f"(default: ./{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline; report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings as the new "
                             "baseline and write it")
    args = parser.parse_args(argv)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = Path(DEFAULT_BASELINE)
        if candidate.exists():
            baseline_path = candidate
    if args.write_baseline and baseline_path is None:
        baseline_path = Path(DEFAULT_BASELINE)

    findings = lint_paths([Path(p) for p in args.paths])

    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    if baseline_path is not None and not args.no_baseline:
        baseline = load_baseline(baseline_path)
        new, fixed = diff_against_baseline(findings, baseline)
        for finding in new:
            print(finding.render())
        suffix = f"; {fixed} baselined finding(s) fixed" if fixed else ""
        if new:
            print(f"simlint: {len(new)} new finding(s) "
                  f"({len(findings)} total, "
                  f"{len(findings) - len(new)} baselined{suffix})")
            return 1
        print(f"simlint: clean ({len(findings)} baselined finding(s)"
              f"{suffix})")
        return 0

    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simlint: {len(findings)} finding(s)")
        return 1
    print("simlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
