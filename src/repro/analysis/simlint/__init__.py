"""simlint: static analysis for the event engine's correctness contracts.

Usage::

    python -m repro.analysis.simlint src/ [--baseline simlint_baseline.json]

The linter walks Python files, applies the SIM001..SIM007 rules (see
:mod:`repro.analysis.simlint.rules`), drops findings suppressed in-line,
and compares the rest against a committed baseline so pre-existing debt
does not block CI while any *new* finding does.

Suppression syntax (on the offending line)::

    self._downlinks = {}  # simlint: disable=SIM006 -- bounded by fleet size

Multiple rules: ``# simlint: disable=SIM001,SIM004``.  The text after
``--`` is a human-readable justification and is ignored by the parser.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.simlint.rules import Finding, ModuleLinter

BASELINE_VERSION = 1

#: ``# simlint: disable=SIM001,SIM004 -- reason`` anywhere in a line.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=([A-Z0-9,\s]+?)(?:\s*--.*)?$")


def _suppressed_rules(line: str) -> frozenset:
    match = _SUPPRESS_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(rule.strip() for rule in match.group(1).split(",")
                     if rule.strip())


def _module_scopes(rel_posix: str) -> Tuple[bool, bool, bool, bool]:
    """(is_rng, hot_path, time_value, sim_module) scopes for a path."""
    parts = rel_posix.split("/")
    is_rng = rel_posix.endswith("sim/rng.py")
    hot = "sim" in parts or "fabric" in parts
    time_scoped = hot or "channels" in parts
    # Engine internals (SIM007) are fair game only for the engine's own
    # package -- src/repro/sim/ and its mirror test tree tests/sim/.
    sim_module = "sim" in parts
    return is_rng, hot, time_scoped, sim_module


def lint_source(source: str, path: str,
                rel_posix: Optional[str] = None) -> List[Finding]:
    """Lint one module's source text; ``path`` is used for reporting."""
    rel = rel_posix if rel_posix is not None else path
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1, col=1,
                        rule="SIM000",
                        message=f"syntax error: {exc.msg}", line_text="")]
    is_rng, hot, time_scoped, sim_module = _module_scopes(rel)
    linter = ModuleLinter(path=path, source=source, tree=tree,
                          is_rng_module=is_rng, hot_path_module=hot,
                          time_value_module=time_scoped,
                          sim_module=sim_module)
    findings = linter.run()
    lines = source.splitlines()
    kept = []
    for finding in findings:
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if finding.rule in _suppressed_rules(line):
            continue
        kept.append(finding)
    return kept


def lint_file(file_path: Path, root: Path) -> List[Finding]:
    """Lint one file, reporting paths relative to ``root``."""
    try:
        rel = file_path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = file_path.as_posix()
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, path=rel, rel_posix=rel)


def lint_paths(paths: Sequence[Path],
               root: Optional[Path] = None) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    root = root or Path.cwd()
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path, root=root))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _fingerprint_counts(findings: Iterable[Finding]) -> Counter:
    return Counter(finding.fingerprint for finding in findings)


def write_baseline(findings: Sequence[Finding], baseline_path: Path) -> None:
    """Persist the current findings as the accepted debt."""
    counts = _fingerprint_counts(findings)
    entries = [
        {"path": path, "rule": rule, "line_text": line_text, "count": count}
        for (path, rule, line_text), count in sorted(counts.items())
    ]
    baseline_path.write_text(
        json.dumps({"version": BASELINE_VERSION, "findings": entries},
                   indent=2) + "\n",
        encoding="utf-8")


def load_baseline(baseline_path: Path) -> Dict[Tuple[str, str, str], int]:
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"in {baseline_path}")
    return {(e["path"], e["rule"], e["line_text"]): e["count"]
            for e in data["findings"]}


def diff_against_baseline(
        findings: Sequence[Finding],
        baseline: Dict[Tuple[str, str, str], int],
) -> Tuple[List[Finding], int]:
    """Split findings into (new findings, count of fixed baseline entries).

    Per fingerprint, the first ``baseline[fp]`` occurrences are accepted
    debt; any excess is new.  Baseline entries with fewer live findings
    than recorded count as fixed (informational -- the baseline can be
    regenerated to shrink).
    """
    counts = _fingerprint_counts(findings)
    seen: Counter = Counter()
    new: List[Finding] = []
    for finding in findings:
        seen[finding.fingerprint] += 1
        if seen[finding.fingerprint] > baseline.get(finding.fingerprint, 0):
            new.append(finding)
    fixed = sum(max(0, allowed - counts.get(fp, 0))
                for fp, allowed in baseline.items())
    return new, fixed


__all__ = [
    "Finding",
    "ModuleLinter",
    "lint_source",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
]
