"""Report formatting for experiment drivers.

Every experiment returns a :class:`FigureReport`: a named set of series
(configuration -> value, or x -> y) plus the paper's reference values
where the paper states them, so the bench harness can print
paper-versus-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


def format_table(rows: List[List[str]], header: Optional[List[str]] = None) -> str:
    """Render rows as a fixed-width text table."""
    all_rows = ([header] if header else []) + rows
    if not all_rows:
        return ""
    widths = [max(len(str(row[col])) for row in all_rows)
              for col in range(len(all_rows[0]))]

    def render(row: List[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    lines = []
    if header:
        lines.append(render(header))
        lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


@dataclass
class FigureReport:
    """Reproduction output for one paper table/figure."""

    figure_id: str
    title: str
    #: series name -> {label -> measured value}
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: series name -> {label -> value reported in the paper}, where known.
    paper_reference: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: str = ""

    def add_series(self, name: str, values: Mapping[str, float],
                   reference: Optional[Mapping[str, float]] = None) -> None:
        """Record one measured series (and optionally the paper's numbers)."""
        self.series[name] = dict(values)
        if reference is not None:
            self.paper_reference[name] = dict(reference)

    def labels(self, series_name: str) -> List[str]:
        return list(self.series[series_name].keys())

    def value(self, series_name: str, label: str) -> float:
        return self.series[series_name][label]

    def to_text(self) -> str:
        """Human-readable report: one block per series."""
        blocks = [f"{self.figure_id}: {self.title}"]
        for name, values in self.series.items():
            reference = self.paper_reference.get(name, {})
            rows = []
            for label, measured in values.items():
                paper_value = reference.get(label)
                rows.append([
                    label,
                    f"{measured:.3g}",
                    f"{paper_value:.3g}" if paper_value is not None else "-",
                ])
            blocks.append(f"[{name}]")
            blocks.append(format_table(rows, header=["config", "measured", "paper"]))
        if self.notes:
            blocks.append(f"notes: {self.notes}")
        return "\n".join(blocks)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
