"""Analysis helpers: metric math, report formatting, and the hardware
cost model of Section 7.3.
"""

from repro.analysis.metrics import (
    normalize_to,
    slowdown_versus,
    speedup_versus,
    percent_overhead,
    geometric_mean,
)
from repro.analysis.report import FigureReport, format_table
from repro.analysis.hardware_cost import (
    ChannelCost,
    VeniceHardwareCostModel,
    TechnologyParameters,
)

__all__ = [
    "normalize_to",
    "slowdown_versus",
    "speedup_versus",
    "percent_overhead",
    "geometric_mean",
    "FigureReport",
    "format_table",
    "ChannelCost",
    "VeniceHardwareCostModel",
    "TechnologyParameters",
]
