"""Analysis helpers: metric math, report formatting, the hardware cost
model of Section 7.3, and the correctness tooling (simlint static
analysis and the lockstep scheduler cross-check).
"""

from repro.analysis.lockstep import (
    CrossCheckResult,
    Divergence,
    lockstep_cross_check,
)
from repro.analysis.metrics import (
    normalize_to,
    slowdown_versus,
    speedup_versus,
    percent_overhead,
    geometric_mean,
)
from repro.analysis.report import FigureReport, format_table
from repro.analysis.hardware_cost import (
    ChannelCost,
    VeniceHardwareCostModel,
    TechnologyParameters,
)

__all__ = [
    "CrossCheckResult",
    "Divergence",
    "lockstep_cross_check",
    "normalize_to",
    "slowdown_versus",
    "speedup_versus",
    "percent_overhead",
    "geometric_mean",
    "FigureReport",
    "format_table",
    "ChannelCost",
    "VeniceHardwareCostModel",
    "TechnologyParameters",
]
