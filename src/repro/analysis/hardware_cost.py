"""Hardware and programming cost model (Section 7.3).

The paper synthesises the Venice substrate (a radix-7 switch plus the
three transport channels) in GlobalFoundries 28 nm and reports:

* 2.73 mm^2 total logic layout area and 32 KB of SRAM;
* about 0.5 mm^2 per PCIe-Gen4-x1-class PHY, ~3.5 mm^2 of PHYs total;
* roughly 2 % of a Haswell-EP-class server die (300-600 mm^2 at 22 nm);
* QPair logic about twice the LUT count of CRMA and tens of kilobytes
  more SRAM (hundreds of queue pairs, each needing around a dozen
  registers), supporting the claim that CRMA support "need not be
  complex".

The model here reproduces that arithmetic from per-component LUT/SRAM
counts and technology density parameters, so the conclusions can be
re-derived and perturbed (e.g. more queue pairs, different radix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TechnologyParameters:
    """Area densities for the target process (28 nm logic)."""

    #: Logic area per thousand LUT-equivalents, mm^2.
    mm2_per_klut: float = 0.009
    #: SRAM area per kilobyte, mm^2.
    mm2_per_kb_sram: float = 0.011
    #: Area of one serial PHY lane, mm^2 (PCIe Gen4 x1 class).
    phy_mm2: float = 0.5
    #: Reference host die area, mm^2 (Haswell-EP ranges 300-600).
    host_die_mm2: float = 400.0

    def __post_init__(self) -> None:
        if min(self.mm2_per_klut, self.mm2_per_kb_sram, self.phy_mm2,
               self.host_die_mm2) <= 0:
            raise ValueError("all technology parameters must be positive")


@dataclass
class ChannelCost:
    """LUT and SRAM cost of one hardware component."""

    name: str
    kluts: float
    sram_kb: float

    def __post_init__(self) -> None:
        if self.kluts < 0 or self.sram_kb < 0:
            raise ValueError("component costs must be non-negative")

    def logic_area_mm2(self, tech: TechnologyParameters) -> float:
        return self.kluts * tech.mm2_per_klut

    def sram_area_mm2(self, tech: TechnologyParameters) -> float:
        return self.sram_kb * tech.mm2_per_kb_sram

    def total_area_mm2(self, tech: TechnologyParameters) -> float:
        return self.logic_area_mm2(tech) + self.sram_area_mm2(tech)


def default_components(num_queue_pairs: int = 256,
                       registers_per_queue_pair: int = 12,
                       switch_radix: int = 7) -> Dict[str, ChannelCost]:
    """Per-component costs matching the prototype's relative proportions.

    A QPair implementation supporting hundreds of queue pairs needs a
    dozen or so registers per pair (~tens of KB of SRAM) and roughly
    twice the control logic of CRMA, whose job is only address
    translation and packetisation.
    """
    qpair_sram_kb = num_queue_pairs * registers_per_queue_pair * 8 / 1024.0
    return {
        "switch": ChannelCost("switch", kluts=60.0 * switch_radix / 7.0, sram_kb=6.0),
        "datalink_phy_ctrl": ChannelCost("datalink_phy_ctrl", kluts=40.0, sram_kb=2.0),
        "crma": ChannelCost("crma", kluts=45.0, sram_kb=1.0),
        "rdma": ChannelCost("rdma", kluts=55.0, sram_kb=2.0),
        "qpair": ChannelCost("qpair", kluts=90.0, sram_kb=qpair_sram_kb),
        "control_center": ChannelCost("control_center", kluts=20.0, sram_kb=0.5),
    }


class VeniceHardwareCostModel:
    """Aggregate area model of the Venice on-chip support."""

    def __init__(self, tech: TechnologyParameters = None,
                 components: Dict[str, ChannelCost] = None,
                 num_phy_lanes: int = 7):
        if num_phy_lanes <= 0:
            raise ValueError("PHY lane count must be positive")
        self.tech = tech or TechnologyParameters()
        self.components = components or default_components()
        self.num_phy_lanes = num_phy_lanes

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_sram_kb(self) -> float:
        return sum(component.sram_kb for component in self.components.values())

    def logic_area_mm2(self) -> float:
        """Synthesisable logic + SRAM layout area (the paper's 2.73 mm^2)."""
        return sum(component.total_area_mm2(self.tech)
                   for component in self.components.values())

    def phy_area_mm2(self) -> float:
        """Area of the (non-synthesisable) PHY lanes (~3.5 mm^2)."""
        return self.num_phy_lanes * self.tech.phy_mm2

    def total_area_mm2(self) -> float:
        return self.logic_area_mm2() + self.phy_area_mm2()

    def fraction_of_host_die(self) -> float:
        """Venice support as a fraction of the host processor die."""
        return self.total_area_mm2() / self.tech.host_die_mm2

    # ------------------------------------------------------------------
    # Channel comparisons (Section 4.2.1's cost argument)
    # ------------------------------------------------------------------
    def qpair_to_crma_logic_ratio(self) -> float:
        """QPair control-logic complexity relative to CRMA (paper: ~2x)."""
        return self.components["qpair"].kluts / self.components["crma"].kluts

    def qpair_extra_sram_kb(self) -> float:
        """Extra SRAM QPair needs over CRMA (paper: tens of kilobytes)."""
        return self.components["qpair"].sram_kb - self.components["crma"].sram_kb

    def breakdown(self) -> Dict[str, float]:
        """Per-component total area in mm^2."""
        return {name: component.total_area_mm2(self.tech)
                for name, component in self.components.items()}
