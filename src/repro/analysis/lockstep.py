"""Lockstep heap-vs-calendar cross-check.

The engine's two scheduler backends must dispatch byte-identical
(time, seq) streams for the same workload; the determinism suite checks
end states, but when the backends *do* diverge an end-state diff says
nothing about where.  :func:`lockstep_cross_check` runs the same
workload builder once per backend with the sanitizer's dispatch trace
enabled and reports the first dispatch where the two streams disagree
-- the earliest observable point of divergence, which is where the bug
is, not where its consequences surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Simulator

#: One dispatch-trace record: (time, seq, callback qualname).
TraceEntry = Tuple[int, int, str]


@dataclass(frozen=True)
class Divergence:
    """First dispatch where the heap and calendar traces disagree."""

    index: int
    heap_entry: Optional[TraceEntry]
    calendar_entry: Optional[TraceEntry]

    def render(self) -> str:
        def fmt(entry: Optional[TraceEntry]) -> str:
            if entry is None:
                return "<stream ended>"
            time, seq, name = entry
            return f"t={time} seq={seq} {name}"
        return (f"dispatch #{self.index}: "
                f"heap {fmt(self.heap_entry)} != "
                f"calendar {fmt(self.calendar_entry)}")


@dataclass
class CrossCheckResult:
    """Outcome of one lockstep run."""

    events_heap: int
    events_calendar: int
    divergence: Optional[Divergence]

    @property
    def ok(self) -> bool:
        return self.divergence is None


def lockstep_cross_check(build: Callable[[Simulator], None],
                         until: Optional[int] = None,
                         max_events: Optional[int] = None
                         ) -> CrossCheckResult:
    """Run ``build``'s workload on both backends and diff dispatch order.

    ``build`` receives a fresh sanitizing :class:`Simulator` and must
    set up the workload (schedule events, build a fabric, spawn
    processes); it is called twice, once per backend, so it must be a
    pure constructor -- any state it closes over is shared between the
    two runs.  Both simulators then run to idleness (or ``until`` /
    ``max_events``) with dispatch tracing on, and the traces are
    compared entry by entry.

    Traces record callback *qualnames*, not reprs, so logically
    identical callbacks from the two independently built workloads
    compare equal even though they are different objects.
    """
    traces: List[List[TraceEntry]] = []
    counts: List[int] = []
    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler, sanitize=True)
        trace = sim.enable_dispatch_trace()
        build(sim)
        sim.run(until=until, max_events=max_events)
        traces.append(trace)
        counts.append(sim.events_processed)
    heap_trace, calendar_trace = traces
    divergence = None
    length = max(len(heap_trace), len(calendar_trace))
    for index in range(length):
        heap_entry = heap_trace[index] if index < len(heap_trace) else None
        cal_entry = (calendar_trace[index]
                     if index < len(calendar_trace) else None)
        if heap_entry != cal_entry:
            divergence = Divergence(index=index, heap_entry=heap_entry,
                                    calendar_entry=cal_entry)
            break
    return CrossCheckResult(events_heap=counts[0], events_calendar=counts[1],
                            divergence=divergence)
