"""Metric arithmetic used by every experiment driver."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping


def slowdown_versus(time_ns: float, baseline_time_ns: float) -> float:
    """Execution-time ratio of a configuration versus a baseline (>1 = slower)."""
    if baseline_time_ns <= 0:
        raise ValueError("baseline time must be positive")
    return time_ns / baseline_time_ns


def speedup_versus(time_ns: float, baseline_time_ns: float) -> float:
    """Inverse of :func:`slowdown_versus` (>1 = faster)."""
    if time_ns <= 0:
        raise ValueError("time must be positive")
    return baseline_time_ns / time_ns


def percent_overhead(time_ns: float, baseline_time_ns: float) -> float:
    """Extra time relative to the baseline, as a percentage."""
    return (slowdown_versus(time_ns, baseline_time_ns) - 1.0) * 100.0


def normalize_to(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalise every value in ``values`` to the entry named ``baseline_key``."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} not in values")
    baseline = values[baseline_key]
    if baseline <= 0:
        raise ValueError("baseline value must be positive")
    return {key: value / baseline for key, value in values.items()}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 for an empty sequence)."""
    items = list(values)
    if not items:
        return 0.0
    if any(value <= 0 for value in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in items) / len(items))
