"""Measurement collection for simulation runs.

The statistics objects are intentionally simple: experiments read them
after a run to compute execution times, bandwidth utilisation, miss
rates, and latency distributions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative, got {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Time-weighted gauge (e.g. queue occupancy, credits in flight)."""

    __slots__ = ("name", "_value", "_last_time", "_weighted_sum", "_max",
                 "_min")

    def __init__(self, name: str = "gauge", initial: float = 0.0):
        self.name = name
        self._value = initial
        self._last_time = 0
        self._weighted_sum = 0.0
        self._max = initial
        self._min = initial

    @property
    def value(self) -> float:
        return self._value

    def update(self, value: float, now: int) -> None:
        """Record a new value at simulated time ``now``."""
        if now < self._last_time:
            raise ValueError("gauge updated with a time in the past")
        self._weighted_sum += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        self._max = max(self._max, value)
        self._min = min(self._min, value)

    def time_average(self, now: Optional[int] = None) -> float:
        """Time-weighted mean of the gauge up to ``now``."""
        end = self._last_time if now is None else now
        if end <= 0:
            return self._value
        weighted = self._weighted_sum + self._value * max(0, end - self._last_time)
        return weighted / end

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min


class Histogram:
    """Sample accumulator with summary statistics (for latencies)."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str = "histogram"):
        self.name = name
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        self._samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self.total / len(self._samples)

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile (``pct`` in [0, 100])."""
        if not self._samples:
            return 0.0
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self._samples) / (n - 1)
        return math.sqrt(variance)


class StatsRegistry:
    """Named collection of statistics owned by a component.

    Components create their counters/gauges/histograms through a
    registry so experiments can discover and report them uniformly.
    """

    __slots__ = ("name", "counters", "gauges", "histograms")

    def __init__(self, name: str = "stats"):
        self.name = name
        # Instruments live for the whole run by design: experiments read
        # them after the simulation quiesces.
        self.counters: Dict[str, Counter] = {}  # simlint: disable=SIM006 -- instruments are read post-run, never retired
        self.gauges: Dict[str, Gauge] = {}  # simlint: disable=SIM006 -- instruments are read post-run, never retired
        self.histograms: Dict[str, Histogram] = {}  # simlint: disable=SIM006 -- instruments are read post-run, never retired

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            counter = self.counters[name] = Counter(name)
            return counter

    def bind_counters(self, *names: str):
        """Counter handles for ``names``, created on first use.

        Hot-path components bind their counters once in ``__init__`` and
        increment through the returned handles, instead of paying a
        string-keyed registry lookup per packet::

            self._sent, self._dropped = stats.bind_counters("sent", "dropped")
        """
        return tuple(self.counter(name) for name in names)

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name, initial)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten all statistics into a ``{name: value}`` mapping."""
        result: Dict[str, float] = {}
        for name, counter in self.counters.items():
            result[f"{name}"] = counter.value
        for name, gauge in self.gauges.items():
            result[f"{name}.current"] = gauge.value
        for name, hist in self.histograms.items():
            result[f"{name}.count"] = hist.count
            result[f"{name}.mean"] = hist.mean
        return result
