"""On-demand gcc build of the compiled dispatch core.

``repro.sim._ccore`` is a single-file CPython extension.  Two build
paths exist:

* ``python setup.py build_ext --inplace`` -- the conventional
  setuptools route (CI uses it), or equivalently
  ``python -m repro.sim._ccore_build`` which shells out to the C
  compiler directly with no setuptools involvement.
* On demand: ``Simulator(core="c")`` (or ``SIM_CORE=c``) calls
  :func:`ensure_built` before importing, so an explicit request for the
  compiled core works on a fresh checkout with nothing but ``gcc``.

``core="auto"`` deliberately does *not* trigger a build -- it only
imports an already-built extension, so the default path never grows a
compiler dependency (tier-1 must pass on compiler-less hosts).

Everything degrades gracefully: no compiler, a failed compile, or a
stale ABI all surface as :class:`CCoreBuildError` / an import failure,
which the engine wrapper turns into the pure-Python fallback (silent
for ``auto``, a clear typed error for an explicit ``core="c"``).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sysconfig
from pathlib import Path
from typing import List, Optional

SOURCE = Path(__file__).resolve().with_name("_ccore.c")

#: Flags beyond the bare minimum: -O2 is the measured sweet spot (-O3
#: gains nothing on the dispatch loop), -fno-plt shaves the callback
#: call indirection on ELF hosts.
CFLAGS = ["-O2", "-fPIC", "-shared", "-fno-plt", "-fvisibility=hidden"]


class CCoreBuildError(RuntimeError):
    """The compiled dispatch core could not be built on this host."""


def extension_path() -> Path:
    """Where the built extension lives (importable next to engine.py)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.with_name("_ccore" + suffix)


def find_compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when the host has none."""
    for candidate in (os.environ.get("CC"), "gcc", "cc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def needs_build(target: Optional[Path] = None) -> bool:
    """True when the extension is missing or older than its source."""
    target = target or extension_path()
    if not target.exists():
        return True
    try:
        return target.stat().st_mtime < SOURCE.stat().st_mtime
    except OSError:
        return True


def build_command(target: Path) -> List[str]:
    compiler = find_compiler()
    if compiler is None:
        raise CCoreBuildError(
            "no C compiler found (tried $CC, gcc, cc, clang); "
            "the pure-Python engine remains fully supported")
    include = sysconfig.get_paths()["include"]
    return [compiler, *CFLAGS, f"-I{include}", str(SOURCE), "-o", str(target)]


def build(verbose: bool = False) -> Path:
    """Compile the extension in place; returns the built path.

    The compile writes to a temporary name and renames atomically, so a
    concurrent import never sees a half-written shared object.
    """
    if not SOURCE.exists():
        raise CCoreBuildError(f"extension source missing: {SOURCE}")
    target = extension_path()
    tmp = target.with_name(target.name + ".tmp")
    cmd = build_command(tmp)
    if verbose:
        print("+", " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
    except (OSError, subprocess.TimeoutExpired) as error:
        raise CCoreBuildError(f"C compiler failed to run: {error}") from error
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise CCoreBuildError(
            f"compiling {SOURCE.name} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}")
    os.replace(tmp, target)
    return target


def ensure_built(verbose: bool = False) -> Path:
    """Build if missing/stale; raises :class:`CCoreBuildError` on failure."""
    target = extension_path()
    if needs_build(target):
        return build(verbose=verbose)
    return target


def main() -> int:
    try:
        target = ensure_built(verbose=True)
    except CCoreBuildError as error:
        print(f"ccore build failed: {error}")
        return 1
    print(f"compiled dispatch core ready: {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
