"""Generator-based processes for the simulation engine.

A *process* is a Python generator that yields commands telling the
scheduler what to wait for:

* ``Delay(ns)`` or a bare ``int``  -- resume after that many nanoseconds.
* ``SimEvent`` / ``WaitEvent``  -- resume when the event is triggered;
  the value passed to :meth:`SimEvent.succeed` becomes the result of
  the ``yield`` expression.
* another ``Process``           -- resume when that process finishes;
  its return value becomes the result of the ``yield``.
* ``AllOf([...])`` / ``AnyOf([...])`` -- composite waits.

Processes may also ``return`` a value which is delivered to any process
waiting on them.

Hot-path design notes
---------------------
A yield must not allocate beyond its queue entry: hot loops yield bare
``int`` delays (or a :class:`Delay` hoisted out of the loop -- ``Delay``
is immutable, so one instance can be yielded repeatedly), the resume
callback is bound once per process instead of per dispatch, and delays
validated at ``Delay`` construction go through the engine's
``call_after`` fast path without re-validation.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List

from repro.sim.engine import SimulationError, Simulator


class Delay:
    """Command: suspend the issuing process for ``duration`` ns.

    Immutable after construction; hot paths hoist one instance out of
    their loop (or yield a bare non-negative ``int``) so that waiting
    does not allocate.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Delay({self.duration})"


class SimEvent:
    """One-shot event that processes can wait on.

    The event succeeds at most once; its value is delivered to every
    waiter.  Waiting on an already-succeeded event resumes immediately.
    """

    __slots__ = ("sim", "name", "_value", "_succeeded", "_waiters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._succeeded = False
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._succeeded

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self._succeeded:
            raise SimulationError(f"event {self.name!r} already succeeded")
        self._succeeded = True
        self._value = value
        waiters = self._waiters
        if waiters:
            call_soon = self.sim.call_soon
            for waiter in waiters:
                call_soon(waiter, value)
            self._waiters = []

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register a callback invoked (via the scheduler) on success."""
        if self._succeeded:
            self.sim.call_soon(callback, self._value)
        else:
            self._waiters.append(callback)


# Waiting on an event is expressed by yielding the event itself; the
# WaitEvent alias exists for readability at call sites.
WaitEvent = SimEvent


class AllOf:
    """Composite command: resume when every child event has triggered."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Any]):
        self.events = list(events)


class AnyOf:
    """Composite command: resume when any child event has triggered."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Any]):
        self.events = list(events)


class Process:
    """A running generator coroutine inside the simulation.

    Processes are created through :func:`spawn` (or directly) and are
    themselves waitable: yielding a process suspends the caller until
    the process finishes and delivers its return value.
    """

    __slots__ = ("sim", "generator", "name", "finished", "result",
                 "_completion", "_send", "_resume_cb", "_call_soon",
                 "_call_after")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        try:
            send = generator.send
        except AttributeError:
            raise TypeError(
                "Process requires a generator (did you forget to call the function?)"
            ) from None
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._completion = SimEvent(sim, name=self.name)
        self._send = send
        # Bind the resume callback and scheduler entry points once;
        # every dispatch reuses them instead of re-binding per yield.
        self._resume_cb = self._resume
        self._call_soon = sim.call_soon
        self._call_after = sim.call_after
        sim.call_soon(self._resume_cb, None)

    @property
    def completion(self) -> SimEvent:
        """Event triggered with the process return value when it ends."""
        return self._completion

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            command = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        # Inline the two dominant dispatch cases (event waits and
        # delays); everything else takes the generic path.
        cls = command.__class__
        if cls is SimEvent:
            if command._succeeded:
                self._call_soon(self._resume_cb, command._value)
            else:
                command._waiters.append(self._resume_cb)
        elif cls is Delay:
            self._call_after(command.duration, self._resume_cb)
        elif cls is int:
            if command >= 0:
                self._call_after(command, self._resume_cb)
            else:
                self._throw(SimulationError(
                    f"process {self.name!r} yielded a negative delay {command}"))
        else:
            self._dispatch(command)

    def _throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            command = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.result = value
        self._completion.succeed(value)

    def _dispatch(self, command: Any) -> None:
        # Generic command dispatch; _resume inlines the hot cases.
        cls = command.__class__
        if cls is SimEvent:
            command.add_waiter(self._resume_cb)
        elif cls is Delay:
            self.sim.call_after(command.duration, self._resume_cb)
        elif cls is int:
            if command < 0:
                self._throw(SimulationError(
                    f"process {self.name!r} yielded a negative delay {command}"))
                return
            self.sim.call_after(command, self._resume_cb)
        elif cls is Process:
            command._completion.add_waiter(self._resume_cb)
        elif cls is AllOf:
            self._wait_all(command.events)
        elif cls is AnyOf:
            self._wait_any(command.events)
        elif command is None:
            # Bare ``yield`` -- resume on the next scheduler pass.
            self.sim.call_soon(self._resume_cb)
        elif isinstance(command, (SimEvent, Delay, Process)):
            # Subclasses of the command types take the generic paths.
            if isinstance(command, SimEvent):
                command.add_waiter(self._resume_cb)
            elif isinstance(command, Delay):
                self.sim.call_after(command.duration, self._resume_cb)
            else:
                command.completion.add_waiter(self._resume_cb)
        else:
            self._throw(
                SimulationError(f"process {self.name!r} yielded unsupported {command!r}")
            )

    @staticmethod
    def _as_event(item: Any) -> SimEvent:
        if isinstance(item, Process):
            return item.completion
        if isinstance(item, SimEvent):
            return item
        raise SimulationError(f"cannot wait on {item!r}")

    def _wait_all(self, items: List[Any]) -> None:
        events = [self._as_event(item) for item in items]
        if not events:
            self.sim.call_soon(self._resume_cb, [])
            return
        remaining = {"count": len(events)}
        results: List[Any] = [None] * len(events)

        def make_cb(index: int) -> Callable[[Any], None]:
            def callback(value: Any) -> None:
                results[index] = value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    self._resume(results)

            return callback

        for index, event in enumerate(events):
            event.add_waiter(make_cb(index))

    def _wait_any(self, items: List[Any]) -> None:
        events = [self._as_event(item) for item in items]
        if not events:
            self.sim.call_soon(self._resume_cb)
            return
        done = {"fired": False}

        def callback(value: Any) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            self._resume(value)

        for event in events:
            event.add_waiter(callback)


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Convenience wrapper to start a new process."""
    return Process(sim, generator, name=name)
