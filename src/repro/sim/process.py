"""Generator-based processes for the simulation engine.

A *process* is a Python generator that yields commands telling the
scheduler what to wait for:

* ``Delay(ns)``                 -- resume after ``ns`` nanoseconds.
* ``SimEvent`` / ``WaitEvent``  -- resume when the event is triggered;
  the value passed to :meth:`SimEvent.succeed` becomes the result of
  the ``yield`` expression.
* another ``Process``           -- resume when that process finishes;
  its return value becomes the result of the ``yield``.
* ``AllOf([...])`` / ``AnyOf([...])`` -- composite waits.

Processes may also ``return`` a value which is delivered to any process
waiting on them.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.engine import SimulationError, Simulator


class Delay:
    """Command: suspend the issuing process for ``duration`` ns."""

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Delay({self.duration})"


class SimEvent:
    """One-shot event that processes can wait on.

    The event succeeds at most once; its value is delivered to every
    waiter.  Waiting on an already-succeeded event resumes immediately.
    """

    __slots__ = ("sim", "name", "_value", "_succeeded", "_waiters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._succeeded = False
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._succeeded

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self._succeeded:
            raise SimulationError(f"event {self.name!r} already succeeded")
        self._succeeded = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.schedule(0, waiter, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register a callback invoked (via the scheduler) on success."""
        if self._succeeded:
            self.sim.schedule(0, callback, self._value)
        else:
            self._waiters.append(callback)


# Waiting on an event is expressed by yielding the event itself; the
# WaitEvent alias exists for readability at call sites.
WaitEvent = SimEvent


class AllOf:
    """Composite command: resume when every child event has triggered."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Any]):
        self.events = list(events)


class AnyOf:
    """Composite command: resume when any child event has triggered."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Any]):
        self.events = list(events)


class Process:
    """A running generator coroutine inside the simulation.

    Processes are created through :func:`spawn` (or directly) and are
    themselves waitable: yielding a process suspends the caller until
    the process finishes and delivers its return value.
    """

    __slots__ = ("sim", "generator", "name", "finished", "result", "_completion")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "Process requires a generator (did you forget to call the function?)"
            )
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._completion = SimEvent(sim, name=f"{self.name}.done")
        sim.schedule(0, self._resume, None)

    @property
    def completion(self) -> SimEvent:
        """Event triggered with the process return value when it ends."""
        return self._completion

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            command = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            command = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.result = value
        self._completion.succeed(value)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            self.sim.schedule(command.duration, self._resume, None)
        elif isinstance(command, SimEvent):
            command.add_waiter(self._resume)
        elif isinstance(command, Process):
            command.completion.add_waiter(self._resume)
        elif isinstance(command, AllOf):
            self._wait_all(command.events)
        elif isinstance(command, AnyOf):
            self._wait_any(command.events)
        elif command is None:
            # Bare ``yield`` -- resume on the next scheduler pass.
            self.sim.schedule(0, self._resume, None)
        else:
            self._throw(
                SimulationError(f"process {self.name!r} yielded unsupported {command!r}")
            )

    @staticmethod
    def _as_event(item: Any) -> SimEvent:
        if isinstance(item, Process):
            return item.completion
        if isinstance(item, SimEvent):
            return item
        raise SimulationError(f"cannot wait on {item!r}")

    def _wait_all(self, items: List[Any]) -> None:
        events = [self._as_event(item) for item in items]
        if not events:
            self.sim.schedule(0, self._resume, [])
            return
        remaining = {"count": len(events)}
        results: List[Any] = [None] * len(events)

        def make_cb(index: int) -> Callable[[Any], None]:
            def callback(value: Any) -> None:
                results[index] = value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    self._resume(results)

            return callback

        for index, event in enumerate(events):
            event.add_waiter(make_cb(index))

    def _wait_any(self, items: List[Any]) -> None:
        events = [self._as_event(item) for item in items]
        if not events:
            self.sim.schedule(0, self._resume, None)
            return
        done = {"fired": False}

        def callback(value: Any) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            self._resume(value)

        for event in events:
            event.add_waiter(callback)


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Convenience wrapper to start a new process."""
    return Process(sim, generator, name=name)
