/* Compiled dispatch core for repro.sim.engine.Simulator.
 *
 * One CPython type, ``Engine``, owns the hot dispatch state that the
 * pure-Python engine keeps in Python objects:
 *
 *   - the pending timer population as a packed binary min-heap of
 *     ``{time, seq, slot}`` C structs ordered by (time, seq) -- no
 *     per-entry Python list, no PyLong boxing on the comparison path;
 *   - the zero-delay *ready* FIFO as a ring buffer of the same packed
 *     items (the timer-before-ready rule of the Python engine is
 *     preserved: timers due at the current time predate every ready
 *     entry by construction, see engine.py module notes);
 *   - a slot table holding the only per-event Python state (callback,
 *     argument, single-arg flag) plus the occupant's sequence number,
 *     recycled through a free list.
 *
 * Cancellation hands out integer handles encoding ``(slot, seq)``;
 * cancelling frees the slot immediately and the stale heap/ring item
 * is purged lazily when it surfaces (or eagerly by drain_cancelled),
 * exactly mirroring the Python engine's lazy ``entry[2] = None``
 * discipline -- including the ``_cancelled`` accounting the automatic
 * drain threshold reads.
 *
 * Backend parity: the Python engine's two timer backends (heap and
 * calendar queue) and its per-delay FIFO lanes are *performance*
 * structures -- both dispatch in the identical total (time, seq)
 * order.  The compiled core therefore keeps a single packed heap: a
 * sift over 24-byte structs is allocation-free and cache-resident, so
 * the calendar's O(1)-append and the lanes' small-heap advantages have
 * nothing left to buy.  ``scheduler=`` selection semantics (including
 * the deterministic auto-adoption density scan) are mirrored so the
 * reported backend matches the Python engine; dispatch order is
 * byte-identical on either backend of either core by construction.
 *
 * Error-message parity: every SimulationError raised here formats the
 * same text as engine.py, so tests asserting on messages pass on both
 * cores.  The SimulationError class itself is injected by the Python
 * wrapper at construction (this file deliberately does not import
 * repro.sim.engine, which would recurse).
 *
 * Divergence (documented, loud): delays/times must be Python ints
 * (anything accepting ``__index__``).  The Python engine's generic
 * ``schedule()`` would silently truncate a float delay; the compiled
 * core raises TypeError instead of risking a silent timing divergence
 * between cores.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

/* Handle layout: (slot << HANDLE_SEQ_BITS) | (seq & HANDLE_SEQ_MASK).
 * 44 bits of sequence number (~1.7e13 events) and 20 bits of slot
 * index (~1M concurrently pending events); both are checked. */
#define HANDLE_SEQ_BITS 44
#define HANDLE_SEQ_MASK (((uint64_t)1 << HANDLE_SEQ_BITS) - 1)
#define MAX_SLOTS ((Py_ssize_t)1 << 20)

/* Mirrors of engine.py tuning constants (names kept in sync). */
#define AUTO_DRAIN_MIN_CANCELLED 512
#define AUTO_CALENDAR_MIN_PENDING 16
#define AUTO_CALENDAR_MAX_GAP_BUCKETS 4

typedef struct {
    long long time;
    long long seq;
    int32_t slot;
} Item;

typedef struct {
    PyObject_HEAD
    PyObject *sim_error;        /* SimulationError class (strong ref) */
    long long now_ns;
    long long next_seq;
    long long event_count;
    long long cancelled;        /* cancelled-but-not-yet-purged entries */
    int running;
    int policy;                 /* 0 heap, 1 calendar, 2 auto */
    int cal_active;             /* reported backend flag (see header) */
    long long cal_bucket_ns;
    long long auto_checked_pending;
    /* timer heap */
    Item *heap;
    Py_ssize_t heap_len, heap_cap;
    /* ready ring buffer */
    Item *ready;
    Py_ssize_t ready_head, ready_len, ready_cap;
    /* slot table */
    PyObject **s_cb;
    PyObject **s_arg;
    long long *s_seq;           /* occupant's seq, -1 when free */
    uint8_t *s_single;
    Py_ssize_t slot_cap;
    int32_t *free_slots;
    Py_ssize_t free_len;
} Engine;

/* ------------------------------------------------------------------ */
/* Small helpers                                                       */
/* ------------------------------------------------------------------ */

static inline int
item_lt(const Item *a, const Item *b)
{
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
}

/* A heap/ring item is live while the slot it points at still holds the
 * same occupant; cancel() frees the slot, so a mismatch marks the item
 * stale (the compiled equivalent of entry[_CALLBACK] is None). */
static inline int
item_live(Engine *self, const Item *it)
{
    return self->s_seq[it->slot] == it->seq;
}

static int
grow_slots(Engine *self)
{
    Py_ssize_t new_cap = self->slot_cap ? self->slot_cap * 2 : 1024;
    if (new_cap > MAX_SLOTS) {
        if (self->slot_cap >= MAX_SLOTS) {
            PyErr_SetString(self->sim_error,
                            "compiled core slot table exhausted "
                            "(more than 2**20 events pending)");
            return -1;
        }
        new_cap = MAX_SLOTS;
    }
    PyObject **cb = PyMem_Realloc(self->s_cb, new_cap * sizeof(PyObject *));
    if (!cb) { PyErr_NoMemory(); return -1; }
    self->s_cb = cb;
    PyObject **arg = PyMem_Realloc(self->s_arg, new_cap * sizeof(PyObject *));
    if (!arg) { PyErr_NoMemory(); return -1; }
    self->s_arg = arg;
    long long *seq = PyMem_Realloc(self->s_seq, new_cap * sizeof(long long));
    if (!seq) { PyErr_NoMemory(); return -1; }
    self->s_seq = seq;
    uint8_t *single = PyMem_Realloc(self->s_single, new_cap * sizeof(uint8_t));
    if (!single) { PyErr_NoMemory(); return -1; }
    self->s_single = single;
    int32_t *fs = PyMem_Realloc(self->free_slots, new_cap * sizeof(int32_t));
    if (!fs) { PyErr_NoMemory(); return -1; }
    self->free_slots = fs;
    /* Push the fresh slots in descending order so they are handed out
     * ascending -- keeps handles compact, nothing depends on it. */
    for (Py_ssize_t i = new_cap - 1; i >= self->slot_cap; i--) {
        self->s_cb[i] = NULL;
        self->s_arg[i] = NULL;
        self->s_seq[i] = -1;
        self->s_single[i] = 0;
        self->free_slots[self->free_len++] = (int32_t)i;
    }
    self->slot_cap = new_cap;
    return 0;
}

/* Claim a slot for (callback, arg); steals no references (incref here). */
static Py_ssize_t
slot_alloc(Engine *self, long long seq, PyObject *cb, PyObject *arg,
           int single)
{
    if (self->free_len == 0 && grow_slots(self) < 0)
        return -1;
    Py_ssize_t slot = self->free_slots[--self->free_len];
    Py_INCREF(cb);
    Py_XINCREF(arg);
    self->s_cb[slot] = cb;
    self->s_arg[slot] = arg;
    self->s_seq[slot] = seq;
    self->s_single[slot] = (uint8_t)single;
    return slot;
}

/* Release a slot's Python state and recycle it.  The caller must have
 * taken out any references it still needs (the dispatch path moves the
 * callback/arg into locals first). */
static inline void
slot_free(Engine *self, Py_ssize_t slot)
{
    Py_CLEAR(self->s_cb[slot]);
    Py_CLEAR(self->s_arg[slot]);
    self->s_seq[slot] = -1;
    self->free_slots[self->free_len++] = (int32_t)slot;
}

static int
heap_reserve(Engine *self, Py_ssize_t need)
{
    if (need <= self->heap_cap)
        return 0;
    Py_ssize_t new_cap = self->heap_cap ? self->heap_cap * 2 : 1024;
    while (new_cap < need)
        new_cap *= 2;
    Item *heap = PyMem_Realloc(self->heap, new_cap * sizeof(Item));
    if (!heap) { PyErr_NoMemory(); return -1; }
    self->heap = heap;
    self->heap_cap = new_cap;
    return 0;
}

static int
heap_push(Engine *self, Item it)
{
    if (heap_reserve(self, self->heap_len + 1) < 0)
        return -1;
    Item *heap = self->heap;
    Py_ssize_t pos = self->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!item_lt(&it, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = it;
    return 0;
}

/* Pop the minimum; the heap must be non-empty. */
static Item
heap_pop(Engine *self)
{
    Item *heap = self->heap;
    Item top = heap[0];
    Py_ssize_t n = --self->heap_len;
    if (n > 0) {
        Item last = heap[n];
        Py_ssize_t pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= n)
                break;
            if (child + 1 < n && item_lt(&heap[child + 1], &heap[child]))
                child += 1;
            if (!item_lt(&heap[child], &last))
                break;
            heap[pos] = heap[child];
            pos = child;
        }
        heap[pos] = last;
    }
    return top;
}

static void
heap_siftdown(Item *heap, Py_ssize_t n, Py_ssize_t pos)
{
    Item it = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && item_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!item_lt(&heap[child], &it))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = it;
}

static int
ready_push(Engine *self, Item it)
{
    if (self->ready_len == self->ready_cap) {
        Py_ssize_t new_cap = self->ready_cap ? self->ready_cap * 2 : 256;
        Item *ring = PyMem_Malloc(new_cap * sizeof(Item));
        if (!ring) { PyErr_NoMemory(); return -1; }
        for (Py_ssize_t i = 0; i < self->ready_len; i++)
            ring[i] = self->ready[(self->ready_head + i) & (self->ready_cap - 1)];
        PyMem_Free(self->ready);
        self->ready = ring;
        self->ready_cap = new_cap;
        self->ready_head = 0;
    }
    self->ready[(self->ready_head + self->ready_len) & (self->ready_cap - 1)] = it;
    self->ready_len++;
    return 0;
}

static inline Item *
ready_front(Engine *self)
{
    return &self->ready[self->ready_head & (self->ready_cap - 1)];
}

static inline void
ready_popfront(Engine *self)
{
    self->ready_head = (self->ready_head + 1) & (self->ready_cap - 1);
    self->ready_len--;
}

/* Drop stale (cancelled) items from the front of the ready ring --
 * engine.py's _purge_ready. */
static void
purge_ready_front(Engine *self)
{
    while (self->ready_len && !item_live(self, ready_front(self))) {
        ready_popfront(self);
        self->cancelled--;
    }
}

/* Drop stale items from the top of the timer heap. */
static void
purge_heap_top(Engine *self)
{
    while (self->heap_len && !item_live(self, &self->heap[0])) {
        heap_pop(self);
        self->cancelled--;
    }
}

static inline PyObject *
make_handle(Py_ssize_t slot, long long seq)
{
    uint64_t handle = ((uint64_t)slot << HANDLE_SEQ_BITS)
                      | ((uint64_t)seq & HANDLE_SEQ_MASK);
    return PyLong_FromUnsignedLongLong(handle);
}

/* Decode a handle and return the slot if it is still the live occupant
 * it was issued for; -1 otherwise (spent: executed or cancelled). */
static Py_ssize_t
live_slot_of_handle(Engine *self, PyObject *handle_obj)
{
    uint64_t handle = PyLong_AsUnsignedLongLong(handle_obj);
    if (handle == (uint64_t)-1 && PyErr_Occurred())
        return -2;
    Py_ssize_t slot = (Py_ssize_t)(handle >> HANDLE_SEQ_BITS);
    uint64_t seq_bits = handle & HANDLE_SEQ_MASK;
    if (slot >= self->slot_cap || self->s_seq[slot] < 0)
        return -1;
    if (((uint64_t)self->s_seq[slot] & HANDLE_SEQ_MASK) != seq_bits)
        return -1;
    return slot;
}

static int
parse_ll(PyObject *obj, long long *out, const char *what)
{
    if (PyLong_Check(obj)) {
        long long value = PyLong_AsLongLong(obj);
        if (value == -1 && PyErr_Occurred())
            return -1;
        *out = value;
        return 0;
    }
    PyObject *index = PyNumber_Index(obj);
    if (!index) {
        PyErr_Clear();
        PyErr_Format(PyExc_TypeError,
                     "%s must be an integer on the compiled core (got %.80s); "
                     "use core='py' for non-int times", what,
                     Py_TYPE(obj)->tp_name);
        return -1;
    }
    long long value = PyLong_AsLongLong(index);
    Py_DECREF(index);
    if (value == -1 && PyErr_Occurred())
        return -1;
    *out = value;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Engine lifecycle                                                    */
/* ------------------------------------------------------------------ */

static PyObject *
engine_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"sim_error", "policy", "calendar_bucket_ns",
                             "calendar_active", NULL};
    PyObject *sim_error;
    int policy;
    long long bucket_ns;
    int cal_active;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OiLi", kwlist, &sim_error,
                                     &policy, &bucket_ns, &cal_active))
        return NULL;
    Engine *self = (Engine *)type->tp_alloc(type, 0);
    if (!self)
        return NULL;
    Py_INCREF(sim_error);
    self->sim_error = sim_error;
    self->policy = policy;
    self->cal_bucket_ns = bucket_ns;
    self->cal_active = cal_active;
    self->now_ns = 0;
    self->next_seq = 0;
    self->event_count = 0;
    self->cancelled = 0;
    self->running = 0;
    self->auto_checked_pending = 0;
    return (PyObject *)self;
}

static int
engine_traverse(Engine *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim_error);
    for (Py_ssize_t i = 0; i < self->slot_cap; i++) {
        Py_VISIT(self->s_cb[i]);
        Py_VISIT(self->s_arg[i]);
    }
    return 0;
}

static int
engine_clear_slots(Engine *self)
{
    for (Py_ssize_t i = 0; i < self->slot_cap; i++) {
        Py_CLEAR(self->s_cb[i]);
        Py_CLEAR(self->s_arg[i]);
        self->s_seq[i] = -1;
    }
    return 0;
}

static int
engine_clear(Engine *self)
{
    Py_CLEAR(self->sim_error);
    engine_clear_slots(self);
    return 0;
}

static void
engine_dealloc(Engine *self)
{
    PyObject_GC_UnTrack(self);
    engine_clear(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->ready);
    PyMem_Free(self->s_cb);
    PyMem_Free(self->s_arg);
    PyMem_Free(self->s_seq);
    PyMem_Free(self->s_single);
    PyMem_Free(self->free_slots);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ------------------------------------------------------------------ */
/* Scheduling entry points                                             */
/* ------------------------------------------------------------------ */

/* Shared tail: allocate a slot, build the handle, park the item. */
static PyObject *
schedule_item(Engine *self, long long time, PyObject *cb, PyObject *arg,
              int single, int to_ready)
{
    long long seq = self->next_seq;
    if ((uint64_t)seq >= ((uint64_t)1 << HANDLE_SEQ_BITS)) {
        PyErr_SetString(self->sim_error,
                        "compiled core sequence space exhausted");
        return NULL;
    }
    Py_ssize_t slot = slot_alloc(self, seq, cb, arg, single);
    if (slot < 0)
        return NULL;
    self->next_seq = seq + 1;
    Item it = {time, seq, (int32_t)slot};
    int rc = to_ready ? ready_push(self, it) : heap_push(self, it);
    if (rc < 0) {
        slot_free(self, slot);
        self->next_seq = seq;
        return NULL;
    }
    return make_handle(slot, seq);
}

static PyObject *
engine_call_after(Engine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "call_after expects (delay, callback[, value])");
        return NULL;
    }
    long long delay;
    if (parse_ll(args[0], &delay, "delay") < 0)
        return NULL;
    if (delay < 0)
        return PyErr_Format(self->sim_error,
                            "cannot schedule into the past (delay=%lld)",
                            delay);
    PyObject *value = nargs == 3 ? args[2] : Py_None;
    return schedule_item(self, self->now_ns + delay, args[1], value, 1,
                         delay == 0);
}

static PyObject *
engine_call_soon(Engine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon expects (callback[, value])");
        return NULL;
    }
    PyObject *value = nargs == 2 ? args[1] : Py_None;
    return schedule_item(self, self->now_ns, args[0], value, 1, 1);
}

static PyObject *
engine_schedule(Engine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule expects (delay, callback, *args)");
        return NULL;
    }
    long long delay;
    if (parse_ll(args[0], &delay, "delay") < 0)
        return NULL;
    if (delay < 0)
        return PyErr_Format(self->sim_error,
                            "cannot schedule into the past (delay=%lld)",
                            delay);
    PyObject *tuple = PyTuple_New(nargs - 2);
    if (!tuple)
        return NULL;
    for (Py_ssize_t i = 2; i < nargs; i++) {
        Py_INCREF(args[i]);
        PyTuple_SET_ITEM(tuple, i - 2, args[i]);
    }
    PyObject *handle = schedule_item(self, self->now_ns + delay, args[1],
                                     tuple, 0, delay == 0);
    Py_DECREF(tuple);
    return handle;
}

static PyObject *
engine_schedule_at(Engine *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at expects (time, callback, *args)");
        return NULL;
    }
    long long time;
    if (parse_ll(args[0], &time, "time") < 0)
        return NULL;
    if (time < self->now_ns)
        return PyErr_Format(self->sim_error,
                            "cannot schedule at t=%lld before current time "
                            "t=%lld", time, self->now_ns);
    PyObject *tuple = PyTuple_New(nargs - 2);
    if (!tuple)
        return NULL;
    for (Py_ssize_t i = 2; i < nargs; i++) {
        Py_INCREF(args[i]);
        PyTuple_SET_ITEM(tuple, i - 2, args[i]);
    }
    PyObject *handle = schedule_item(self, time, args[1], tuple, 0,
                                     time == self->now_ns);
    Py_DECREF(tuple);
    return handle;
}

/* ------------------------------------------------------------------ */
/* Cancellation                                                        */
/* ------------------------------------------------------------------ */

static PyObject *engine_drain_cancelled(Engine *self, PyObject *ignored);

static PyObject *
engine_cancel(Engine *self, PyObject *handle_obj)
{
    Py_ssize_t slot = live_slot_of_handle(self, handle_obj);
    if (slot == -2)
        return NULL;
    if (slot >= 0) {
        slot_free(self, slot);
        self->cancelled++;
        if (self->cancelled >= AUTO_DRAIN_MIN_CANCELLED
            && self->cancelled * 2 >= self->heap_len + self->ready_len) {
            PyObject *res = engine_drain_cancelled(self, NULL);
            if (!res)
                return NULL;
            Py_DECREF(res);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
engine_is_cancelled(Engine *self, PyObject *handle_obj)
{
    Py_ssize_t slot = live_slot_of_handle(self, handle_obj);
    if (slot == -2)
        return NULL;
    return PyBool_FromLong(slot < 0);
}

static PyObject *
engine_drain_cancelled(Engine *self, PyObject *Py_UNUSED(ignored))
{
    long long removed = self->cancelled;
    /* Compact the heap in place, then restore the heap invariant
     * bottom-up (same complexity as Python's heapify). */
    Py_ssize_t kept = 0;
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        if (item_live(self, &self->heap[i]))
            self->heap[kept++] = self->heap[i];
    }
    if (kept != self->heap_len) {
        self->heap_len = kept;
        for (Py_ssize_t i = kept / 2 - 1; i >= 0; i--)
            heap_siftdown(self->heap, kept, i);
    }
    /* Compact the ready ring preserving FIFO order.  Through a scratch
     * buffer: a wrapped ring's tail lives at low indices, so writing
     * live entries from index 0 while still reading would clobber
     * not-yet-read items. */
    if (self->ready_len) {
        Item *scratch = PyMem_Malloc(self->ready_len * sizeof(Item));
        if (!scratch)
            return PyErr_NoMemory();
        Py_ssize_t live = 0;
        for (Py_ssize_t i = 0; i < self->ready_len; i++) {
            Item it = self->ready[(self->ready_head + i) & (self->ready_cap - 1)];
            if (item_live(self, &it))
                scratch[live++] = it;
        }
        memcpy(self->ready, scratch, live * sizeof(Item));
        PyMem_Free(scratch);
        self->ready_head = 0;
        self->ready_len = live;
    }
    self->cancelled = 0;
    return PyLong_FromLongLong(removed);
}

/* ------------------------------------------------------------------ */
/* Execution                                                           */
/* ------------------------------------------------------------------ */

/* Invoke one dispatched item's callback.  The slot is freed before the
 * call (the Python engine marks entries spent first, so a late cancel
 * is a no-op) and references are moved into locals -- the callback may
 * reschedule and realloc every engine array. */
static int
dispatch_slot(Engine *self, Py_ssize_t slot)
{
    PyObject *cb = self->s_cb[slot];
    PyObject *arg = self->s_arg[slot];
    int single = self->s_single[slot];
    self->s_cb[slot] = NULL;
    self->s_arg[slot] = NULL;
    self->s_seq[slot] = -1;
    self->free_slots[self->free_len++] = (int32_t)slot;
    PyObject *res;
    if (single)
        res = PyObject_CallOneArg(cb, arg ? arg : Py_None);
    else
        res = PyObject_CallObject(cb, arg);
    Py_DECREF(cb);
    Py_XDECREF(arg);
    if (!res)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* ``auto`` backend adoption, mirroring engine._maybe_adopt_calendar:
 * O(pending) density scan, re-attempted only after the population has
 * doubled since the last failed check.  Only the reported backend flag
 * changes -- the packed heap serves both (see file header). */
static void
maybe_adopt_calendar(Engine *self)
{
    Py_ssize_t pending = self->heap_len;
    if (pending < AUTO_CALENDAR_MIN_PENDING
        || pending < 2 * self->auto_checked_pending)
        return;
    long long max_time = self->heap[0].time;
    for (Py_ssize_t i = 1; i < pending; i++) {
        if (self->heap[i].time > max_time)
            max_time = self->heap[i].time;
    }
    long long span = max_time - self->now_ns;
    if (span / pending <= self->cal_bucket_ns * AUTO_CALENDAR_MAX_GAP_BUCKETS)
        self->cal_active = 1;
    else
        self->auto_checked_pending = pending;
}

static PyObject *
engine_run(Engine *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    PyObject *until_obj = Py_None;
    PyObject *max_events_obj = Py_None;
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (total > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "run expects (until=None, max_events=None)");
        return NULL;
    }
    if (nargs >= 1)
        until_obj = args[0];
    if (nargs >= 2)
        max_events_obj = args[1];
    if (kwnames) {
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            const char *text = PyUnicode_AsUTF8(name);
            if (!text)
                return NULL;
            if (strcmp(text, "until") == 0)
                until_obj = value;
            else if (strcmp(text, "max_events") == 0)
                max_events_obj = value;
            else {
                PyErr_Format(PyExc_TypeError,
                             "run got an unexpected keyword argument '%s'",
                             text);
                return NULL;
            }
        }
    }
    int has_deadline = until_obj != Py_None;
    long long deadline = 0;
    if (has_deadline && parse_ll(until_obj, &deadline, "until") < 0)
        return NULL;
    long long budget = -1;
    if (max_events_obj != Py_None
        && parse_ll(max_events_obj, &budget, "max_events") < 0)
        return NULL;

    if (self->running) {
        PyErr_SetString(self->sim_error,
                        "simulator is already running (re-entrant run())");
        return NULL;
    }
    if (!self->cal_active && self->policy == 2)
        maybe_adopt_calendar(self);
    self->running = 1;
    long long executed = 0;
    long long now = self->now_ns;
    int failed = 0;

    while (!has_deadline || now <= deadline) {
        if (self->ready_len) {
            /* Timer entries due now predate every ready entry. */
            if (self->heap_len && self->heap[0].time <= now) {
                Item top = self->heap[0];
                if (!item_live(self, &top)) {
                    heap_pop(self);
                    self->cancelled--;
                    continue;
                }
                if (executed == budget)
                    goto livelock;
                heap_pop(self);
                executed++;
                if (dispatch_slot(self, top.slot) < 0) { failed = 1; break; }
            }
            else {
                Item *front = ready_front(self);
                if (!item_live(self, front)) {
                    ready_popfront(self);
                    self->cancelled--;
                    continue;
                }
                /* Budget check before the pop: the over-budget entry
                 * stays queued (engine.py appendlefts it back). */
                if (executed == budget)
                    goto livelock;
                Py_ssize_t slot = front->slot;
                ready_popfront(self);
                executed++;
                if (dispatch_slot(self, slot) < 0) { failed = 1; break; }
            }
        }
        else if (self->heap_len) {
            Item top = self->heap[0];
            if (!item_live(self, &top)) {
                heap_pop(self);
                self->cancelled--;
                continue;
            }
            if (has_deadline && top.time > deadline)
                break;
            if (executed == budget)
                goto livelock;
            heap_pop(self);
            now = self->now_ns = top.time;
            executed++;
            if (dispatch_slot(self, top.slot) < 0) { failed = 1; break; }
        }
        else {
            break;
        }
    }
    self->event_count += executed;
    self->running = 0;
    if (failed)
        return NULL;
    if (has_deadline && deadline > self->now_ns)
        self->now_ns = deadline;
    return PyLong_FromLongLong(self->now_ns);

livelock:
    self->event_count += executed;
    self->running = 0;
    return PyErr_Format(self->sim_error,
                        "exceeded max_events=%lld; possible livelock",
                        budget);
}

static PyObject *
engine_peek(Engine *self, PyObject *Py_UNUSED(ignored))
{
    purge_ready_front(self);
    purge_heap_top(self);
    if (self->ready_len)
        return PyLong_FromLongLong(self->now_ns);
    if (self->heap_len)
        return PyLong_FromLongLong(self->heap[0].time);
    Py_RETURN_NONE;
}

static PyObject *
engine_step(Engine *self, PyObject *Py_UNUSED(ignored))
{
    purge_ready_front(self);
    purge_heap_top(self);
    Py_ssize_t slot;
    if (self->ready_len) {
        if (self->heap_len && self->heap[0].time <= self->now_ns) {
            Item top = heap_pop(self);
            self->now_ns = top.time;
            slot = top.slot;
        }
        else {
            slot = ready_front(self)->slot;
            ready_popfront(self);
        }
    }
    else if (self->heap_len) {
        Item top = heap_pop(self);
        self->now_ns = top.time;
        slot = top.slot;
    }
    else {
        Py_RETURN_FALSE;
    }
    self->event_count++;
    if (dispatch_slot(self, slot) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

/* ------------------------------------------------------------------ */
/* Introspection                                                       */
/* ------------------------------------------------------------------ */

static Py_ssize_t
engine_len(Engine *self)
{
    return self->heap_len + self->ready_len;
}

static PyObject *
engine_get_now(Engine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->now_ns);
}

static PyObject *
engine_get_events(Engine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->event_count);
}

static PyObject *
engine_get_cal_active(Engine *self, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(self->cal_active);
}

static PyObject *
engine_get_cancelled(Engine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->cancelled);
}

static PyMethodDef engine_methods[] = {
    {"schedule", (PyCFunction)engine_schedule, METH_FASTCALL, NULL},
    {"schedule_at", (PyCFunction)engine_schedule_at, METH_FASTCALL, NULL},
    {"call_soon", (PyCFunction)engine_call_soon, METH_FASTCALL, NULL},
    {"call_after", (PyCFunction)engine_call_after, METH_FASTCALL, NULL},
    {"cancel", (PyCFunction)engine_cancel, METH_O, NULL},
    {"is_cancelled", (PyCFunction)engine_is_cancelled, METH_O, NULL},
    {"drain_cancelled", (PyCFunction)engine_drain_cancelled, METH_NOARGS, NULL},
    {"run", (PyCFunction)engine_run, METH_FASTCALL | METH_KEYWORDS, NULL},
    {"peek", (PyCFunction)engine_peek, METH_NOARGS, NULL},
    {"step", (PyCFunction)engine_step, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef engine_getset[] = {
    {"now", (getter)engine_get_now, NULL, NULL, NULL},
    {"events_processed", (getter)engine_get_events, NULL, NULL, NULL},
    {"calendar_active", (getter)engine_get_cal_active, NULL, NULL, NULL},
    {"cancelled", (getter)engine_get_cancelled, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods engine_as_sequence = {
    .sq_length = (lenfunc)engine_len,
};

static PyTypeObject EngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Engine",
    .tp_basicsize = sizeof(Engine),
    .tp_dealloc = (destructor)engine_dealloc,
    .tp_as_sequence = &engine_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Packed-heap dispatch engine behind repro.sim.engine.Simulator",
    .tp_traverse = (traverseproc)engine_traverse,
    .tp_clear = (inquiry)engine_clear,
    .tp_methods = engine_methods,
    .tp_getset = engine_getset,
    .tp_new = engine_new,
};

static struct PyModuleDef ccore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ccore",
    .m_doc = "C-accelerated timer/event dispatch core (see engine.py).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ccore(void)
{
    if (PyType_Ready(&EngineType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&ccore_module);
    if (!module)
        return NULL;
    Py_INCREF(&EngineType);
    if (PyModule_AddObject(module, "Engine", (PyObject *)&EngineType) < 0) {
        Py_DECREF(&EngineType);
        Py_DECREF(module);
        return NULL;
    }
    /* Bumped whenever the Engine ABI the wrapper relies on changes; the
     * wrapper refuses (and falls back) on mismatch rather than crash. */
    if (PyModule_AddIntConstant(module, "CCORE_API_VERSION", 1) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
